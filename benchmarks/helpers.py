"""Shared helpers for the figure/table benchmarks.

Each bench regenerates one table or figure of the paper: it times the core
computation through pytest-benchmark (single round — these are experiment
harnesses, not micro-benchmarks) and writes the figure's series both to
stdout and to ``benchmarks/results/<name>.txt`` so the output survives
pytest's capture.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a figure's series and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def emit_json(name: str, payload: dict[str, Any]) -> Path:
    """Persist machine-readable results under benchmarks/results/<name>.json
    (the perf-trajectory files CI's regression gate reads)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer and return its
    result (experiment harness semantics)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
