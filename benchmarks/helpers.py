"""Shared helpers for the figure/table benchmarks.

Each bench regenerates one table or figure of the paper: it times the core
computation through pytest-benchmark (single round — these are experiment
harnesses, not micro-benchmarks) and writes the figure's series both to
stdout and to ``benchmarks/results/<name>.txt`` so the output survives
pytest's capture.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print a figure's series and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    banner = f"\n=== {name} ===\n{text}\n"
    print(banner)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer and return its
    result (experiment harness semantics)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
