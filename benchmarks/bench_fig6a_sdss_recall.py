"""Figure 6a: recall vs training size for single-client SDSS logs.

Paper shape: ~10 training queries express the hold-outs for the majority
of clients, 50 pushes recall to 100 %, and one client (C5) climbs slowly
because its literal pool is revealed gradually.
"""

from repro.evaluation import format_series, recall_curve
from repro.logs import SDSSLogGenerator

from helpers import emit, run_once

TRAINING_SIZES = [2, 5, 10, 25, 50, 100]
CLIENT_PROFILES = [
    ("C1", "object_lookup"),
    ("C2", "top_nearby"),
    ("C3", "rect_photometry"),
    ("C4", "color_cut"),
    ("C5", "slow_pool"),
    ("C6", "redshift_range"),
    ("C7", "spectro_lines"),
    ("C8", "neighbours"),
    ("C9", "object_lookup"),
]


def test_fig6a_sdss_single_client_recall(benchmark):
    generator = SDSSLogGenerator(seed=0)

    def run():
        curves = {}
        for client, profile in CLIENT_PROFILES:
            log = generator.client_log(client=client, profile=profile, n=200)
            curves[client] = recall_curve(
                log, TRAINING_SIZES, holdout_size=100, window_size=200,
                label=f"{client} ({profile})",
            )
        return curves

    curves = run_once(benchmark, run)

    lines = ["Figure 6a: recall vs #training queries (SDSS clients)"]
    for client, curve in curves.items():
        lines.append(
            format_series(curve.label, TRAINING_SIZES, [p.recall for p in curve.points])
        )
    emit("fig6a_sdss_recall", "\n".join(lines))

    finals = {client: curve.final_recall() for client, curve in curves.items()}
    # majority of clients reach 1.0 within 10 training queries
    at_10 = sum(
        1 for curve in curves.values()
        if dict(curve.as_rows()).get(10, 0) >= 1.0
    )
    assert at_10 >= 5
    # all non-C5 clients reach 1.0 by 50
    assert all(
        recall >= 0.99 for client, recall in finals.items() if client != "C5"
    )
    # C5 is the slow climber: low at 10, rising steadily, high by 100
    c5 = dict(curves["C5"].as_rows())
    assert c5[10] < 0.5
    assert c5[25] <= c5[50] <= c5[100]
    assert c5[100] > 0.6
