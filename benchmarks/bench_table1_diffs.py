"""Table 1: the diffs records for the Figure 3 AST pair."""

from repro.evaluation import format_table
from repro.sqlparser import parse_sql
from repro.treediff import extract_diffs

from helpers import emit, run_once

Q1 = "SELECT year, sales FROM T WHERE cty = 'USA' AND amount > 10"
Q2 = "SELECT year, costs FROM T WHERE cty = 'EUR' AND amount > 10"


def test_table1_diff_records(benchmark):
    a, b = parse_sql(Q1), parse_sql(Q2)
    diffs = run_once(benchmark, lambda: extract_diffs(a, b, prune=False))

    rows = []
    for index, d in enumerate(diffs, start=1):
        rows.append(
            [
                f"d{index}",
                d.q1 + 1,
                d.q2 + 1,
                str(d.path),
                d.t1.label() if d.t1 is not None else "null",
                d.t2.label() if d.t2 is not None else "null",
                d.kind,
            ]
        )
    emit(
        "table1_diffs",
        format_table(
            ["d", "q1", "q2", "p", "t1", "t2", "type"],
            rows,
            title="Table 1: diffs records (Figure 3 ASTs; paper lists d1-d4)",
        ),
    )
    paths = {str(d.path) for d in diffs}
    # the four records the paper prints
    assert {"0/1/0", "0/1", "2/0/0/1", "2/0/0"} <= paths
