"""Figures 7a/7b: recall on interleaved multi-client SDSS logs.

7a varies the *total* training budget: recall rises slowly because each
client contributes few examples.  7b varies training *per client*: recall
rises quickly, like the single-client experiments.

``multi_client_recall`` drives the sweep through the staged API's
``generate_many`` batch entry point — one batched call per curve.
"""

from repro.evaluation import format_series, multi_client_recall
from repro.logs import SDSSLogGenerator

from helpers import emit, run_once

CLIENT_COUNTS = [1, 3, 5, 8]
TOTAL_SIZES = [5, 10, 25, 50, 100]
PER_CLIENT_SIZES = [2, 5, 10, 25]


def test_fig7ab_multiclient_recall(benchmark):
    generator = SDSSLogGenerator(seed=0)

    def run():
        total_curves = {}
        per_client_curves = {}
        for m in CLIENT_COUNTS:
            logs = list(generator.clients(m, n_queries=200).values())
            total_curves[m] = multi_client_recall(
                logs, TOTAL_SIZES, holdout_size=50, per_client=False
            )
            per_client_curves[m] = multi_client_recall(
                logs, PER_CLIENT_SIZES, holdout_size=50, per_client=True
            )
        return total_curves, per_client_curves

    total_curves, per_client_curves = run_once(benchmark, run)

    lines = ["Figure 7a: vary TOTAL training queries (interleaved clients)"]
    for m, curve in total_curves.items():
        lines.append(
            format_series(f"M={m}", TOTAL_SIZES, [p.recall for p in curve.points])
        )
    lines.append("")
    lines.append("Figure 7b: vary PER-CLIENT training queries")
    for m, curve in per_client_curves.items():
        lines.append(
            format_series(
                f"M={m}", PER_CLIENT_SIZES, [p.recall for p in curve.points]
            )
        )
    emit("fig7ab_multiclient", "\n".join(lines))

    # 7a: with many clients, a small total budget yields low recall
    assert dict(total_curves[8].as_rows())[10] < 0.5
    # heterogeneity hurts: more interleaved clients → lower recall at the
    # same budget (the Section 7.2.3 takeaway)
    assert dict(total_curves[8].as_rows())[100] <= dict(total_curves[1].as_rows())[100]
    # single-client case is the Figure 6a behaviour
    assert dict(total_curves[1].as_rows())[100] >= 0.9
    assert dict(per_client_curves[1].as_rows())[25] >= 0.9
    # NOTE (EXPERIMENTS.md): the paper's 7b shows per-client budgets
    # recovering high recall for all M; our merge heuristic collapses
    # highly mixed logs more aggressively, so the recovery only shows for
    # small M.  We assert the partial shape we do reproduce.
    assert dict(per_client_curves[3].as_rows())[10] > \
        dict(total_curves[3].as_rows())[10] - 1e-9
