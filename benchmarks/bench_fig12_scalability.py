"""Figure 12 + Section 7.3: scalability with log size (window=2, LCA on).

Paper shape: edges and runtime grow with the log; 10,000 queries complete
within 10 seconds and ~2,000 within 3 seconds.
"""

from repro.evaluation import format_table, scalability_sweep
from repro.logs import SDSSLogGenerator

from helpers import emit, run_once

SIZES = [100, 500, 1000, 2000, 5000, 10000]


def test_fig12_scalability(benchmark):
    generator = SDSSLogGenerator(seed=0)
    logs = {size: generator.full_log(size).asts() for size in SIZES}

    measurements = run_once(benchmark, lambda: scalability_sweep(logs))

    rows = [
        [
            m.n_queries,
            m.n_edges,
            m.n_diffs,
            f"{m.mining_seconds:.2f}",
            f"{m.mapping_seconds:.2f}",
            f"{m.total_seconds:.2f}",
            m.n_widgets,
        ]
        for m in measurements
    ]
    emit(
        "fig12_scalability",
        format_table(
            ["queries", "edges", "diffs", "mine s", "map s", "total s", "widgets"],
            rows,
            title="Figure 12: scalability (window=2, LCA pruning on)",
        ),
    )

    by_size = {m.n_queries: m for m in measurements}
    # the paper's headline numbers
    assert by_size[10000].total_seconds < 10.0
    assert by_size[2000].total_seconds < 3.0
    # edge count grows with the log
    assert by_size[10000].n_edges > by_size[100].n_edges
