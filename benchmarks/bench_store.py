"""Packed block-compressed store vs the per-key JSON file layout.

Not a paper figure — this benchmarks the storage layer the packed
:class:`~repro.cache.store.GraphStore` format rests on, at the byte
level both layouts share (one serialised mined graph per key):

* **populate** — N single-key saves.  JSON writes one file per key; the
  packed segment appends one RECORD frame per save (the L0 path).
* **compact** — one :meth:`GraphStore.compact` pass re-packs the append
  tail into BLOCK frames (~64 records per zlib stream), the steady-state
  layout maintenance produces on its own over time.
* **cold / warm load** — a full byte sweep of every key.  JSON is
  ``iterdir()`` + ``read_bytes()`` per file; packed is one
  :meth:`SegmentReader.items` pass over the compacted segment.  *Cold*
  constructs a fresh reader (footer decode included); *warm* goes
  through the segment's cached reader, exactly as a long-lived
  ``GraphStore`` serves repeated loads (the JSON layout's only warm
  state is the OS page cache, which both layouts enjoy).  The
  acceptance gate is the warm ratio: packed must beat JSON by >= 3x at
  the full 10k-key budget.
* **prune** — evict half the keys by LRU.  JSON must ``stat`` every
  file to rank recency; packed ranks from the in-footer index and
  evicts with tombstone appends, so prune is no longer O(files).

Writes ``results/BENCH_store.json`` — the machine-readable record CI's
regression gate compares against
``benchmarks/baselines/bench_store_baseline.json`` (dimensionless
``speedup_*`` ratios only; absolute seconds differ across hardware).

Set ``REPRO_BENCH_BUDGET=tiny`` to shrink the key counts (CI smoke);
the absolute 3x assertion is skipped there because a tiny segment's
footer decode is not amortised, but the JSON is still produced for the
ratio gate.
"""

import hashlib
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.cache.blockstore import SegmentReader
from repro.cache.serialize import graph_to_jsonl_bytes
from repro.cache.store import GraphStore
from repro.graph.build import build_interaction_graph
from repro.logs import SDSSLogGenerator

from helpers import emit, emit_json, run_once

TINY = os.environ.get("REPRO_BENCH_BUDGET") == "tiny"

N_KEYS = 1_000 if TINY else 10_000
#: evict down to half the keys in the prune phase
PRUNE_KEEP = N_KEYS // 2
OPTS_FP = "0123456789abcdef"
WARM_TRIALS = 3


def _log_fp(i: int) -> str:
    # unique leading bytes: fingerprints are hex digests, never
    # zero-padded numbers, and prune/eviction sorts by them
    return f"{i:016x}" + "0" * 48


def _payloads() -> list[bytes]:
    """One real short-log mined graph (~2 KB) serialised exactly as
    ``GraphStore.save`` stores it, with a unique incompressible tail per
    key so cross-record zlib redundancy stays realistic.  Small records
    at high key counts are the regime the packed format targets: per-file
    metadata and syscall overhead dominate the per-key layout there."""
    asts = SDSSLogGenerator(seed=7).client_log("C1", "object_lookup", 3).asts()
    graph = build_interaction_graph(asts, window=2)
    base = graph_to_jsonl_bytes(graph)
    return [
        base + hashlib.sha256(f"tag-{i}".encode()).hexdigest().encode()
        for i in range(N_KEYS)
    ]


def _sweep_json(root: Path) -> int:
    total = 0
    for path in sorted(root.iterdir()):
        if path.name.endswith(".graph.jsonl"):
            total += len(path.read_bytes())
    return total


def _sweep_packed(segment_path: Path) -> int:
    reader = SegmentReader(segment_path)
    return sum(len(payload) for _key, payload in reader.items())


def test_store_format_speedups(benchmark):
    payloads = _payloads()
    workdir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    json_dir = workdir / "json"
    packed_dir = workdir / "packed"

    def run():
        out: dict[str, float] = {}

        json_store = GraphStore(json_dir, format="json")
        t0 = time.perf_counter()
        for i in range(N_KEYS):
            json_store.path_for(_log_fp(i), OPTS_FP).write_bytes(payloads[i])
        out["populate_json_seconds"] = time.perf_counter() - t0

        packed_store = GraphStore(packed_dir, format="packed")
        segment = packed_store._segment("graphs")
        t0 = time.perf_counter()
        for i in range(N_KEYS):
            segment.append_records(
                [(f"{_log_fp(i)}-{OPTS_FP}", payloads[i], None)]
            )
        out["populate_packed_seconds"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        packed_store.compact()
        out["compact_seconds"] = time.perf_counter() - t0

        segment_path = packed_dir / "graphs.seg"
        out["bytes_json"] = sum(len(p) for p in payloads)
        out["bytes_packed"] = segment_path.stat().st_size

        # first sweep pays reader construction + footer decode (and, on
        # a cold page cache, the file reads); later sweeps are the warm
        # steady state a long-lived session sees
        t0 = time.perf_counter()
        swept_json = _sweep_json(json_dir)
        out["cold_load_json_seconds"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        swept_packed = _sweep_packed(segment_path)
        out["cold_load_packed_seconds"] = time.perf_counter() - t0
        assert swept_json == swept_packed, "layouts must sweep identical bytes"

        warm_json = []
        warm_packed = []
        for _ in range(WARM_TRIALS):
            t0 = time.perf_counter()
            _sweep_json(json_dir)
            warm_json.append(time.perf_counter() - t0)
            # the store's cached reader, as GraphStore serves warm loads
            t0 = time.perf_counter()
            sum(len(payload) for _key, payload in segment.reader().items())
            warm_packed.append(time.perf_counter() - t0)
        out["warm_load_json_seconds"] = min(warm_json)
        out["warm_load_packed_seconds"] = min(warm_packed)

        t0 = time.perf_counter()
        removed_json = GraphStore(json_dir, format="json").prune(
            max_entries=PRUNE_KEEP
        )
        out["prune_json_seconds"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        removed_packed = GraphStore(packed_dir, format="packed").prune(
            max_entries=PRUNE_KEEP
        )
        out["prune_packed_seconds"] = time.perf_counter() - t0
        assert removed_json == removed_packed == N_KEYS - PRUNE_KEEP
        return out

    try:
        out = run_once(benchmark, run)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    speedup_warm = out["warm_load_json_seconds"] / out["warm_load_packed_seconds"]
    speedup_prune = out["prune_json_seconds"] / out["prune_packed_seconds"]
    compression = out["bytes_json"] / out["bytes_packed"]

    lines = [
        f"keys: {N_KEYS}  (tiny budget: {TINY})",
        f"populate   json {out['populate_json_seconds']:.3f}s   "
        f"packed {out['populate_packed_seconds']:.3f}s   "
        f"(+ compact {out['compact_seconds']:.3f}s)",
        f"cold load  json {out['cold_load_json_seconds']:.3f}s   "
        f"packed {out['cold_load_packed_seconds']:.3f}s",
        f"warm load  json {out['warm_load_json_seconds']:.3f}s   "
        f"packed {out['warm_load_packed_seconds']:.3f}s   "
        f"speedup x{speedup_warm:.2f}",
        f"prune      json {out['prune_json_seconds']:.3f}s   "
        f"packed {out['prune_packed_seconds']:.3f}s   "
        f"speedup x{speedup_prune:.2f}",
        f"on-disk    json {out['bytes_json']} B   "
        f"packed {out['bytes_packed']} B   ratio x{compression:.2f}",
    ]
    emit("BENCH_store", "\n".join(lines))
    emit_json(
        "BENCH_store",
        {
            "workload": {
                "n_keys": N_KEYS,
                "prune_keep": PRUNE_KEEP,
                "warm_trials": WARM_TRIALS,
                "tiny_budget": TINY,
            },
            **{k: round(v, 4) for k, v in out.items()},
            "speedup_warm_load": round(speedup_warm, 3),
            "speedup_prune": round(speedup_prune, 3),
            "compression_ratio": round(compression, 3),
        },
    )

    # the acceptance gate: block decode must beat per-file reads by 3x
    # at the full budget (a tiny segment can't amortise footer decode)
    if not TINY:
        assert speedup_warm >= 3.0, (
            f"packed warm load only x{speedup_warm:.2f} vs JSON "
            f"(expected >= x3 at {N_KEYS} keys)"
        )
