"""Ablation: the merging phase (Algorithm 3) on/off.

DESIGN.md calls out merging as the design choice that trades widget count
against widget complexity.  Expectation: merging never increases interface
cost and never loses log expressiveness.
"""

from repro import PipelineOptions, generate
from repro.evaluation import format_table
from repro.logs import OLAPLogGenerator, SDSSLogGenerator, listing_4_log

from helpers import emit, run_once


def test_ablation_merge(benchmark):
    workloads = {
        "listing4": listing_4_log(20).asts(),
        "sdss C1": SDSSLogGenerator(seed=0)
        .client_log("C1", "object_lookup", 100)
        .asts(),
        "olap": OLAPLogGenerator(seed=1).generate(100).asts(),
    }

    def run():
        out = []
        for name, queries in workloads.items():
            merged = generate(queries, options=PipelineOptions(merge=True)).interface
            unmerged = generate(queries, options=PipelineOptions(merge=False)).interface
            out.append(
                (
                    name,
                    merged.n_widgets,
                    merged.cost,
                    merged.expressiveness(queries),
                    unmerged.n_widgets,
                    unmerged.cost,
                    unmerged.expressiveness(queries),
                )
            )
        return out

    results = run_once(benchmark, run)

    rows = [
        [name, mw, f"{mc:.0f}", f"{me:.2f}", uw, f"{uc:.0f}", f"{ue:.2f}"]
        for name, mw, mc, me, uw, uc, ue in results
    ]
    emit(
        "ablation_merge",
        format_table(
            ["workload", "widgets", "cost", "expr", "widgets (no merge)",
             "cost (no merge)", "expr (no merge)"],
            rows,
            title="Ablation: Algorithm 3 merging on/off",
        ),
    )

    for _name, mw, mc, me, uw, uc, ue in results:
        assert mc <= uc           # merging reduces (or keeps) cost
        assert mw <= uw           # and widget count
        # the log stays (almost entirely) expressible: the membership test
        # reasons from q0, so a handful of distant OLAP states may need
        # compositions beyond its search horizon
        assert me >= 0.9
        assert ue >= 0.9
