"""Figure 15 (Appendix D): closure precision for mixed-client logs.

Paper shape: as heterogeneity rises from M=1 to M=8 interleaved clients,
the fraction of the closure that the schema accepts drops from ≈30 % toward
≈1 %; the column↔table consistency filter restores precision to 100 %.
"""

from repro import generate
from repro.evaluation import format_table
from repro.logs import SDSSLogGenerator
from repro.schema import SDSS_CATALOG, closure_precision

from helpers import emit, run_once

CLIENT_COUNTS = [1, 3, 5, 8]
QUERIES_PER_CLIENT = 40
CLOSURE_LIMIT = 4000


def test_fig15_closure_precision(benchmark):
    generator = SDSSLogGenerator(seed=0)

    def run():
        out = []
        for m in CLIENT_COUNTS:
            mixed = generator.interleaved(m, n_queries=QUERIES_PER_CLIENT)
            interface = generate(mixed.asts()).interface
            unfiltered, n_unfiltered = closure_precision(
                interface, SDSS_CATALOG, limit=CLOSURE_LIMIT, filtered=False
            )
            filtered, n_filtered = closure_precision(
                interface, SDSS_CATALOG, limit=CLOSURE_LIMIT, filtered=True
            )
            out.append((m, unfiltered, n_unfiltered, filtered, n_filtered))
        return out

    results = run_once(benchmark, run)

    rows = [
        [m, f"{unf:.3f}", n_unf, f"{fil:.3f}", n_fil]
        for m, unf, n_unf, fil, n_fil in results
    ]
    emit(
        "fig15_precision",
        format_table(
            ["M clients", "precision", "closure size", "filtered precision",
             "filtered size"],
            rows,
            title="Figure 15: closure precision vs log heterogeneity",
        ),
    )

    by_m = {m: (unf, fil) for m, unf, _n1, fil, _n2 in results}
    # precision degrades with heterogeneity (paper: ~30% at M=1 down to
    # ~1% at M=8; our single-client logs are schema-coherent by
    # construction, so the M=1 point sits at 1.0 and the decline is
    # milder — see EXPERIMENTS.md)
    assert by_m[8][0] < by_m[3][0] < by_m[1][0]
    assert by_m[8][0] < 0.7
    # the filter restores 100% for every mix
    for m in CLIENT_COUNTS:
        assert by_m[m][1] == 1.0
