"""Incremental interface compilation: steady-state re-render cost.

Not a paper figure — this benchmarks the compiled-page layer on the same
adversarial skewed one-hot workload the merge ablation uses: K clean
function subtrees warmed up once, then every append varies a single
literal.  Merge-layer dirtiness pins the change to one widget, so the
incremental compiler re-renders that widget (and its closure slice) and
reuses every other artifact byte-for-byte, while the one-shot
``compile_html`` pays for the whole page on every arrival.

Each hot append times both arms and — the acceptance bar — folds the
emitted patch onto the running client state and asserts the result is
byte-identical to the full recompile.  The section writes
``results/BENCH_compile.json`` with the dimensionless
``speedup_compile_incremental`` CI's regression gate compares against
``benchmarks/baselines/bench_compile_baseline.json``.

Set ``REPRO_BENCH_BUDGET=tiny`` to shrink the workload (CI smoke); the
absolute 3x assertion is skipped there because a tiny page has too few
clean widgets to amortise, but the JSON is still produced for the gate.
"""

import gc
import json
import os
import statistics
import time

from repro.api import InterfaceSession
from repro.compiler import compile_html
from repro.compiler.incremental import apply_patch, page_html
from repro.core.options import PipelineOptions
from repro.sqlparser import parse_sql

from bench_scale_cache_workers import SKEW_WARM_EXTRA, _skewed_statements
from helpers import emit, emit_json, run_once

TINY = os.environ.get("REPRO_BENCH_BUDGET") == "tiny"

#: closure budget per compile — bounds the combination walk so the
#: one-shot arm measures rendering, not an unbounded product space
COMPILE_LIMIT = 64 if TINY else 512
COMPILE_BATCH = 4


def test_compile_incremental(benchmark):
    """Per-append ``compile_patch`` vs one-shot ``compile_html`` on the
    skewed one-hot log, with byte parity asserted at every step."""
    statements, warm = _skewed_statements()
    asts = [parse_sql(statement) for statement in statements]
    options = PipelineOptions(window=2)
    warmup = warm + SKEW_WARM_EXTRA

    def run():
        session = InterfaceSession(options=options)
        session.append(asts[:warmup])
        # the first compile builds every artifact from scratch — that is
        # the cold page, not the steady state being measured
        state = apply_patch(None, session.compile_patch(limit=COMPILE_LIMIT))
        gc.collect()

        incremental_seconds = []
        oneshot_seconds = []
        patch_bytes = []
        page_bytes = []
        for start in range(warmup, len(asts), COMPILE_BATCH):
            result = session.append(asts[start : start + COMPILE_BATCH])
            t0 = time.perf_counter()
            patch = session.compile_patch(limit=COMPILE_LIMIT)
            incremental_seconds.append(time.perf_counter() - t0)
            state = apply_patch(state, patch)
            t1 = time.perf_counter()
            full = compile_html(result.interface, limit=COMPILE_LIMIT)
            oneshot_seconds.append(time.perf_counter() - t1)
            # the optimisation is not an approximation: folding the patch
            # stream reproduces the full recompile byte-for-byte
            assert page_html(state) == full
            patch_bytes.append(len(json.dumps(patch)))
            page_bytes.append(len(full.encode("utf-8")))
        return {
            "session": session,
            "incremental_seconds": incremental_seconds,
            "oneshot_seconds": oneshot_seconds,
            "patch_bytes": patch_bytes,
            "page_bytes": page_bytes,
        }

    out = run_once(benchmark, run)
    incremental = statistics.median(out["incremental_seconds"])
    oneshot = statistics.median(out["oneshot_seconds"])
    speedup = oneshot / max(incremental, 1e-9)
    median_patch = statistics.median(out["patch_bytes"])
    median_page = statistics.median(out["page_bytes"])
    stats = out["session"]._compiler.stats

    payload = {
        "workload": {
            "family": "onehot-skewed",
            "n_queries": len(asts),
            "warmup": warm + SKEW_WARM_EXTRA,
            "batch": COMPILE_BATCH,
            "limit": COMPILE_LIMIT,
            "window": 2,
            "n_cores": os.cpu_count(),
            "tiny_budget": TINY,
        },
        "incremental_compile_seconds": incremental,
        "oneshot_compile_seconds": oneshot,
        "speedup_compile_incremental": speedup,
        "median_patch_bytes": median_patch,
        "median_page_bytes": median_page,
        "widgets_rendered": stats.widgets_rendered,
        "widgets_reused": stats.widgets_reused,
        "combos_rendered": stats.combos_rendered,
        "combos_replayed": stats.combos_replayed,
        "per_append_incremental_seconds": out["incremental_seconds"],
        "per_append_oneshot_seconds": out["oneshot_seconds"],
    }
    emit_json("BENCH_compile", payload)
    emit(
        "compile_incremental",
        "\n".join(
            [
                f"compile over the skewed one-hot log "
                f"(limit={COMPILE_LIMIT}, batch {COMPILE_BATCH}, "
                f"{len(out['incremental_seconds'])} hot appends)",
                f"  incremental patch:  {incremental * 1000:8.2f} ms",
                f"  one-shot compile:   {oneshot * 1000:8.2f} ms  "
                f"(speedup x{speedup:.1f})",
                f"  median patch {median_patch / 1024:.1f} KiB vs "
                f"page {median_page / 1024:.1f} KiB",
                f"  widgets rendered/reused: {stats.widgets_rendered}/"
                f"{stats.widgets_reused}   combos rendered/replayed: "
                f"{stats.combos_rendered}/{stats.combos_replayed}",
            ]
        ),
    )

    # the hot appends must reuse the clean artifacts, not re-render them
    assert stats.widgets_reused > stats.widgets_rendered
    # incrementality must pay: 3x or better over the one-shot compiler at
    # the full budget (tiny pages have too few clean widgets to amortise)
    if not TINY:
        assert speedup >= 3.0, payload
