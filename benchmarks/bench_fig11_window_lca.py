"""Figure 11 (Appendix B): sliding-window size × LCA pruning on ~100-query
client logs.

Paper shape: LCA pruning shrinks the interaction graph by up to ~5x at
window 100; a window of 2 drives the total runtime to nearly zero; the
output interfaces keep expressing the whole log.
"""

from repro.evaluation import format_table, window_lca_sweep
from repro.logs import SDSSLogGenerator

from helpers import emit, run_once

WINDOWS = [2, 5, 10, 25, 50, 100]


def test_fig11_window_and_pruning(benchmark):
    log = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 100)
    queries = log.asts()

    measurements = run_once(
        benchmark, lambda: window_lca_sweep(queries, windows=WINDOWS)
    )

    rows = [
        [
            m.window,
            "on" if m.lca_pruning else "off",
            m.n_edges,
            m.n_diffs,
            f"{m.mining_seconds * 1000:.0f}",
            f"{m.mapping_seconds * 1000:.0f}",
            f"{m.total_seconds * 1000:.0f}",
        ]
        for m in measurements
    ]
    emit(
        "fig11_window_lca",
        format_table(
            ["window", "LCA", "edges", "diffs", "mine ms", "map ms", "total ms"],
            rows,
            title="Figure 11: window size x LCA pruning (100-query log)",
        ),
    )

    by_key = {(m.window, m.lca_pruning): m for m in measurements}
    # pruning shrinks the diffs table substantially at the full window
    assert by_key[(100, True)].n_diffs * 2 <= by_key[(100, False)].n_diffs
    # a window of 2 processes far fewer edges than a window of 100
    assert by_key[(2, True)].n_edges * 5 <= by_key[(100, True)].n_edges
    # and is faster end to end
    assert by_key[(2, True)].total_seconds <= by_key[(100, False)].total_seconds
