"""Figure 6c: recall curves for the synthetic OLAP log (blue) and the
ad-hoc student exploration logs (red).

Paper shape: the OLAP curve climbs more slowly than SDSS because several
query parts change within one analysis; the ad-hoc curve plateaus around
20 % — interfaces do not generalise under unpredictable variation.
"""

from repro.evaluation import format_series, recall_curve
from repro.logs import AdhocLogGenerator, OLAPLogGenerator

from helpers import emit, run_once

TRAINING_SIZES = [5, 10, 25, 50, 100]
N_STUDENTS = 3


def test_fig6c_olap_and_adhoc_recall(benchmark):
    olap_log = OLAPLogGenerator(seed=1).generate(200)
    student_logs = AdhocLogGenerator(seed=2).students(N_STUDENTS, n_queries=200)

    def run():
        olap = recall_curve(
            olap_log, TRAINING_SIZES, holdout_size=100, window_size=200,
            label="OLAP walk",
        )
        adhoc = []
        for log in student_logs.values():
            adhoc.append(
                recall_curve(
                    log, TRAINING_SIZES, holdout_size=100, window_size=200
                )
            )
        return olap, adhoc

    olap_curve, adhoc_curves = run_once(benchmark, run)
    adhoc_mean = [
        sum(c.points[i].recall for c in adhoc_curves) / len(adhoc_curves)
        for i in range(len(TRAINING_SIZES))
    ]

    lines = ["Figure 6c: recall vs #training queries"]
    lines.append(
        format_series("OLAP walk", TRAINING_SIZES,
                      [p.recall for p in olap_curve.points])
    )
    lines.append(format_series("ad-hoc (student mean)", TRAINING_SIZES, adhoc_mean))
    emit("fig6c_olap_adhoc_recall", "\n".join(lines))

    olap_recalls = dict(olap_curve.as_rows())
    # OLAP is slower than the SDSS clients (low at 10) but improves steadily
    assert olap_recalls[10] < 0.5
    assert olap_recalls[100] > olap_recalls[25]
    assert olap_recalls[100] >= 0.5
    # the ad-hoc curve plateaus low (paper: ~20%)
    assert adhoc_mean[-1] < 0.45
    # and OLAP ends clearly above ad-hoc
    assert olap_recalls[100] > adhoc_mean[-1]
