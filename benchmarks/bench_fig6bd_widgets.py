"""Figures 6b and 6d: the widget sets generated for SDSS client C1 and for
the synthetic OLAP log.

Paper shape: C1 gets simple controls for the table, attribute, and object
id (Figure 6b); the OLAP log gets drop-downs for the aggregation/grouping
changes and sliders for the predicate values (Figure 6d).
"""

from repro import generate
from repro.evaluation import format_table
from repro.logs import OLAPLogGenerator, SDSSLogGenerator

from helpers import emit, run_once


def test_fig6b_and_6d_widgets(benchmark):
    sdss = SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", 200)
    olap = OLAPLogGenerator(seed=1).generate(200)

    def run():
        return (
            generate(sdss.asts()).interface,
            generate(olap.asts()[:100]).interface,
        )

    c1_interface, olap_interface = run_once(benchmark, run)

    rows = [
        ["6b (SDSS C1)", w, p, n] for w, p, n in c1_interface.widget_summary()
    ] + [
        ["6d (OLAP)", w, p, n] for w, p, n in olap_interface.widget_summary()
    ]
    emit(
        "fig6bd_widgets",
        format_table(
            ["figure", "widget", "path", "|domain|"],
            rows,
            title="Figures 6b/6d: generated widgets",
        ),
    )

    c1_names = {w for w, _p, _n in c1_interface.widget_summary()}
    assert "slider" in c1_names            # numeric object id control
    assert c1_interface.n_widgets <= 4     # a simple interface

    olap_names = {w for w, _p, _n in olap_interface.widget_summary()}
    assert "slider" in olap_names          # predicate values
    assert olap_names & {"dropdown", "checkbox_list", "radio_button"}
