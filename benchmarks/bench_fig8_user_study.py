"""Figure 8c + Figure 13 + the Section 7.4 ANOVA: the simulated user study.

Paper shape: Task 1 takes ≈60 s (capped) with the SDSS form because it has
no objectId widgets and participants must write SQL, versus ≈10 s with the
generated interface; Tasks 2–4 are slightly faster with Precision
Interfaces; accuracies match except Task 1; task, interface, order, and
the task × interface interaction are all significant.
"""

from repro.evaluation import format_table
from repro.study import TASKS, UserStudySimulator, anova, study_interfaces, user_study_log

from helpers import emit, run_once


def test_fig8c_fig13_user_study(benchmark):
    log = user_study_log(1000)

    def run():
        interfaces = study_interfaces(log)
        simulator = UserStudySimulator(interfaces, n_users=40, seed=7)
        return simulator.run()

    results = run_once(benchmark, run)

    rows = []
    for task in TASKS:
        for interface in ("precision", "sdss"):
            rows.append(
                [
                    f"task {task.number}",
                    interface,
                    f"{results.mean_time(task=task.number, interface=interface):.1f}",
                    f"±{results.confidence_95(task=task.number, interface=interface):.1f}",
                    f"{results.accuracy(task=task.number, interface=interface):.2f}",
                ]
            )
    fig8c = format_table(
        ["task", "interface", "time s", "95% CI", "accuracy"],
        rows,
        title="Figure 8c: time and accuracy per task and interface",
    )

    order_rows = []
    for task in TASKS:
        for order in (1, 2, 3, 4):
            order_rows.append(
                [
                    f"task {task.number}",
                    order,
                    f"{results.mean_time(task=task.number, interface='precision', order=order):.1f}",
                    f"{results.mean_time(task=task.number, interface='sdss', order=order):.1f}",
                ]
            )
    fig13 = format_table(
        ["task", "order", "precision s", "sdss s"],
        order_rows,
        title="Figure 13: ordering (learning) effects",
    )

    response, factors = results.as_columns()
    anova_rows = [
        [row.term, row.df, f"{row.f_value:.1f}", f"{row.p_value:.2e}"]
        for row in anova(response, factors, interactions=[("task", "interface")])
        if row.term != "Residual"
    ]
    anova_text = format_table(
        ["term", "df", "F", "p"], anova_rows, title="Section 7.4 ANOVA"
    )

    emit("fig8c_fig13_user_study", "\n\n".join([fig8c, fig13, anova_text]))

    # headline: Task 1 needs the write-SQL fallback on the SDSS form
    assert results.mean_time(task=1, interface="sdss") > 50
    assert results.mean_time(task=1, interface="precision") < 15
    assert results.accuracy(task=1, interface="sdss") < results.accuracy(
        task=1, interface="precision"
    )
    # Tasks 2-4: Precision Interfaces faster, accuracy parity
    for task in (2, 3, 4):
        assert results.mean_time(task=task, interface="precision") < \
            results.mean_time(task=task, interface="sdss")
    # all factors significant
    table = anova(response, factors, interactions=[("task", "interface")])
    for row in table:
        if row.term != "Residual":
            assert row.p_value < 1e-6
