"""Figure 7c + Appendix A (Figures 9, 10): cross-client recall.

Train an interface on each client, evaluate on every other client.  Paper
shape: the recall distribution is bimodal — an interface either fully
expresses another client's analysis (same task) or not at all — and most
training clients benefit at least one other client.
"""

from repro.evaluation import cross_client_matrix, format_table, recall_histogram
from repro.logs import SDSSLogGenerator

from helpers import emit, run_once

N_CLIENTS = 12          # scaled down from the paper's 22 for bench runtime
N_QUERIES = 80


def test_fig7c_fig9_fig10_cross_client(benchmark):
    clients = SDSSLogGenerator(seed=0).clients(N_CLIENTS, n_queries=N_QUERIES)

    matrix = run_once(
        benchmark, lambda: cross_client_matrix(clients, n_queries=N_QUERIES)
    )

    names = list(matrix)
    rows = []
    for train in names:
        rows.append(
            [train]
            + [
                f"{matrix[train].get(holdout, float('nan')):.2f}"
                if holdout != train
                else "-"
                for holdout in names
            ]
        )
    matrix_text = format_table(
        ["train\\holdout"] + names, rows,
        title="Figure 9: pairwise recall matrix",
    )

    histogram = recall_histogram(matrix, bins=10)
    histogram_text = "\n".join(
        f"[{edge:.1f},{edge + 0.1:.1f}) {'#' * count} {count}"
        for edge, count in histogram
    )

    benefited = {}
    for train, row in matrix.items():
        benefited[train] = sum(1 for recall in row.values() if recall > 0.5)
    fig7c_text = "\n".join(
        f"benefits {k} other clients: {sum(1 for v in benefited.values() if v == k)} "
        f"training clients"
        for k in sorted(set(benefited.values()))
    )

    emit(
        "fig7c_fig9_fig10_crossclient",
        "\n\n".join(
            [
                matrix_text,
                "Figure 10: histogram of hold-out recall\n" + histogram_text,
                "Figure 7c: cross-client benefit counts\n" + fig7c_text,
            ]
        ),
    )

    # bimodality: the extreme bins dominate the middle ones
    counts = [count for _edge, count in histogram]
    extremes = counts[0] + counts[-1]
    middle = sum(counts[1:-1])
    assert extremes > middle
    # the majority of training clients benefit at least one other client
    assert sum(1 for v in benefited.values() if v >= 1) > N_CLIENTS / 2
