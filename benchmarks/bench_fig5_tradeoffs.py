"""Figure 5: interface-mapping trade-offs on the Section 7.1 example logs.

(a) simple parameter changes in a complex query (Listing 4);
(b) three-query function-call log — compact widgets (Listing 5 left);
(c) thirteen-query log — widgets split per component (Listing 5 full);
(d) TOP-clause toggle plus limit slider (Listing 6);
(e) subquery toggle with nested widgets (Listing 7).
"""

from repro import generate
from repro.evaluation import format_table
from repro.logs import (
    LISTING_6,
    LISTING_7,
    listing_4_log,
    listing_5_large,
    listing_5_small,
)

from helpers import emit, run_once


def _summarise(name, interface):
    rows = [
        [name, w_type, path, size]
        for w_type, path, size in interface.widget_summary()
    ]
    return rows


def test_fig5_widget_tradeoffs(benchmark):
    logs = {
        "5a listing4": listing_4_log(20).asts(),
        "5b listing5-small": listing_5_small().asts(),
        "5c listing5-large": listing_5_large().asts(),
    }

    def run():
        out = {}
        out["5a listing4"] = generate(logs["5a listing4"]).interface
        out["5b listing5-small"] = generate(logs["5b listing5-small"]).interface
        out["5c listing5-large"] = generate(logs["5c listing5-large"]).interface
        out["5d listing6"] = generate(list(LISTING_6)).interface
        out["5e listing7"] = generate(list(LISTING_7)).interface
        return out

    interfaces = run_once(benchmark, run)

    rows = []
    for name, interface in interfaces.items():
        rows.extend(_summarise(name, interface))
    emit(
        "fig5_tradeoffs",
        format_table(
            ["panel", "widget", "path", "|domain|"],
            rows,
            title="Figure 5: widgets mapped to the example logs",
        ),
    )

    # shape assertions matching the paper's panels
    names_5a = {w for w, _p, _n in interfaces["5a listing4"].widget_summary()}
    assert names_5a == {"dropdown", "slider"}            # Fig 5a
    assert interfaces["5b listing5-small"].n_widgets <= 2  # Fig 5b compact
    assert interfaces["5c listing5-large"].n_widgets == 2  # Fig 5c split
    names_5d = {w for w, _p, _n in interfaces["5d listing6"].widget_summary()}
    assert names_5d == {"toggle_button", "slider"}        # Fig 5d
    names_5e = {w for w, _p, _n in interfaces["5e listing7"].widget_summary()}
    assert "toggle_button" in names_5e and "slider" in names_5e  # Fig 5e
