"""Scale layer: sharded ``generate_many``, the persistent cache, and the
incremental append path.

Not a paper figure — this benchmarks the scale features on synthetic
workloads:

* ``generate_many(logs, workers=2)`` must beat ``workers=1`` wall-clock —
  per-client mining is embarrassingly parallel;
* a warm ``cache_dir`` run must *full-hit* (graph + widget set) and skip
  Mine, Map, and Merge;
* steady-state ``InterfaceSession.append()`` must beat re-generating the
  interface from the accumulated log from scratch by at least 3x on a
  200+-query log (in practice it is orders of magnitude), and the
  incremental map+merge phase alone must beat a full remap.

The append section also writes ``results/BENCH_incremental.json`` — the
machine-readable perf-trajectory record CI's regression gate compares
against ``benchmarks/baselines/bench_incremental_baseline.json``.  The
gate compares *dimensionless speedups*, not absolute seconds, so it holds
across hardware.

Set ``REPRO_BENCH_BUDGET=tiny`` to shrink the workload (CI smoke); the
absolute 3x assertion is skipped there because a tiny log has no steady
state, but the JSON is still produced for the ratio gate.
"""

import gc
import os
import statistics
import tempfile
import time

from repro.api import InterfaceSession, generate, generate_many
from repro.core.closure import expresses
from repro.core.mapper import (
    MapCache,
    initialize,
    initialize_indexed,
    merge_widgets,
    merge_widgets_incremental,
)
from repro.core.options import PipelineOptions
from repro.graph.build import build_interaction_graph, extend_interaction_graph
from repro.logs import AdhocLogGenerator, SDSSLogGenerator
from repro.service import SessionPool
from repro.sqlparser import parse_sql

from helpers import emit, emit_json, run_once

TINY = os.environ.get("REPRO_BENCH_BUDGET") == "tiny"

N_CLIENTS = 2 if TINY else 8
N_QUERIES = 40 if TINY else 200
#: widen the window beyond the paper's default 2 so mining dominates and
#: the sharding/caching effect is measured against real work
WINDOW = 8 if TINY else 16

#: append-path workload: warm up a session with most of the log, then
#: measure steady-state appends of small batches
APPEND_TOTAL = 60 if TINY else 240
APPEND_WARMUP = 40 if TINY else 200
APPEND_BATCH = 4

#: skewed one-hot workload: K clean function subtrees warmed up with a
#: few literal/structural variations each, then every append varies one
#: literal — a single hot component whose clean sub-windows the interval
#: index must skip.  The ablation compares the windowed merge against
#: the component-granularity re-merge (``use_windows=False``).
SKEW_SUBTREES = 24 if TINY else 140
SKEW_LITERALS = 4 if TINY else 6
SKEW_STRUCTURAL = 2 if TINY else 3
SKEW_HOT = 24 if TINY else 80
SKEW_WARM_EXTRA = 8
SKEW_BATCH = 4

#: pool-throughput workload: per-client session logs served through a
#: SessionPool, batches interleaved round-robin across clients
POOL_CLIENTS = 2 if TINY else 8
POOL_QUERIES = 24 if TINY else 120
POOL_BATCH = 6
POOL_WORKERS = max(2, min(4, os.cpu_count() or 1))
POOL_QUEUE_DEPTH = 8


def test_workers_and_cache(benchmark):
    generator = SDSSLogGenerator(seed=0)
    logs = [
        log.asts()
        for log in generator.clients(N_CLIENTS, n_queries=N_QUERIES).values()
    ]
    options = PipelineOptions(window=WINDOW)

    def run():
        t0 = time.perf_counter()
        serial = generate_many(logs, options=options, workers=1)
        t1 = time.perf_counter()
        sharded = generate_many(logs, options=options, workers=2)
        t2 = time.perf_counter()

        with tempfile.TemporaryDirectory() as cache_dir:
            cached_options = PipelineOptions(window=WINDOW, cache_dir=cache_dir)
            t3 = time.perf_counter()
            cold = generate(logs[0], options=cached_options)
            t4 = time.perf_counter()
            warm = generate(logs[0], options=cached_options)
            t5 = time.perf_counter()
        return {
            "serial_seconds": t1 - t0,
            "sharded_seconds": t2 - t1,
            "results": (serial, sharded),
            "cold_seconds": t4 - t3,
            "warm_seconds": t5 - t4,
            "cold": cold,
            "warm": warm,
        }

    out = run_once(benchmark, run)
    serial, sharded = out["results"]
    speedup = out["serial_seconds"] / max(out["sharded_seconds"], 1e-9)
    cache_speedup = out["cold_seconds"] / max(out["warm_seconds"], 1e-9)

    emit(
        "scale_cache_workers",
        "\n".join(
            [
                f"generate_many over {N_CLIENTS} SDSS client logs x "
                f"{N_QUERIES} queries (window={WINDOW})",
                f"  workers=1: {out['serial_seconds']:.2f}s",
                f"  workers=2: {out['sharded_seconds']:.2f}s  "
                f"(speedup x{speedup:.2f})",
                "",
                f"generate with cache_dir, {N_QUERIES}-query log",
                f"  cold (mine + persist): {out['cold_seconds'] * 1000:.0f} ms",
                f"  warm (full cache hit): {out['warm_seconds'] * 1000:.0f} ms  "
                f"(speedup x{cache_speedup:.2f})",
                f"  warm skips: mine={out['warm'].run.stage('mine').stats['skipped']} "
                f"map={out['warm'].run.stage('map').stats.get('skipped', False)} "
                f"merge={out['warm'].run.stage('merge').stats.get('skipped', False)}",
            ]
        ),
    )

    # sharding must not change the mined interfaces; the wall-clock win
    # is only asserted where a second core exists to provide it
    assert [r.interface.widget_summary() for r in sharded] == [
        r.interface.widget_summary() for r in serial
    ]
    if (os.cpu_count() or 1) > 1 and not TINY:
        assert out["sharded_seconds"] < out["serial_seconds"]
    # the warm run is a full hit: no mining, no mapping, no merging
    assert out["warm"].run.stage("cache").stats["hit"] is True
    assert out["warm"].run.stage("cache").stats["widgets_hit"] is True
    assert out["warm"].run.stage("mine").stats["skipped"] is True
    assert out["warm"].run.stage("map").stats["skipped"] is True
    assert out["warm"].run.stage("merge").stats["skipped"] is True
    assert out["warm"].run.n_pairs_compared == 0
    assert out["warm_seconds"] < out["cold_seconds"]
    assert (
        out["warm"].interface.widget_summary()
        == out["cold"].interface.widget_summary()
    )


def test_pool_throughput(benchmark):
    """Sessions/sec of a SessionPool at 1 worker vs POOL_WORKERS workers.

    The same interleaved multi-client arrival stream is served by a
    single-worker pool (every session queues behind every other — the
    serialised-appends world this layer replaces) and by a sharded pool.
    Independent sessions are embarrassingly parallel, so on a multi-core
    host the sharded pool must finish the same work in less wall-clock —
    the >1x ``speedup_pool_workers`` that ``BENCH_pool.json`` records and
    CI's regression gate watches.
    """
    generator = SDSSLogGenerator(seed=7)
    logs = {
        f"client-{index}": log.asts()
        for index, log in enumerate(
            generator.clients(POOL_CLIENTS, n_queries=POOL_QUERIES).values()
        )
    }
    options = PipelineOptions(window=WINDOW)
    arrivals = []
    pending = {client: list(asts) for client, asts in logs.items()}
    while pending:
        for client in list(pending):
            batch = pending[client][:POOL_BATCH]
            pending[client] = pending[client][POOL_BATCH:]
            arrivals.append((client, batch))
            if not pending[client]:
                del pending[client]

    def run():
        timings = {}
        results_by_size = {}
        for pool_size in (1, POOL_WORKERS):
            with SessionPool(
                options=options,
                pool_size=pool_size,
                queue_depth=POOL_QUEUE_DEPTH,
            ) as pool:
                t0 = time.perf_counter()
                for client, batch in arrivals:
                    pool.submit(client, batch)
                results = pool.drain()
                timings[pool_size] = time.perf_counter() - t0
                results_by_size[pool_size] = results
        return {"timings": timings, "results": results_by_size}

    out = run_once(benchmark, run)
    seconds_1 = out["timings"][1]
    seconds_n = out["timings"][POOL_WORKERS]
    throughput_1 = POOL_CLIENTS / max(seconds_1, 1e-9)
    throughput_n = POOL_CLIENTS / max(seconds_n, 1e-9)
    speedup = throughput_n / max(throughput_1, 1e-9)

    payload = {
        "workload": {
            "family": "sdss",
            "n_clients": POOL_CLIENTS,
            "n_queries_per_client": POOL_QUERIES,
            "batch": POOL_BATCH,
            "window": WINDOW,
            "pool_workers": POOL_WORKERS,
            "queue_depth": POOL_QUEUE_DEPTH,
            "n_cores": os.cpu_count(),
            "tiny_budget": TINY,
        },
        "pool_1_seconds": seconds_1,
        "pool_n_seconds": seconds_n,
        "sessions_per_second_1_worker": throughput_1,
        "sessions_per_second_n_workers": throughput_n,
        "speedup_pool_workers": speedup,
    }
    emit_json("BENCH_pool", payload)
    emit(
        "pool_throughput",
        "\n".join(
            [
                f"SessionPool over {POOL_CLIENTS} SDSS clients x "
                f"{POOL_QUERIES} queries (batch {POOL_BATCH}, "
                f"window={WINDOW}, queue_depth={POOL_QUEUE_DEPTH})",
                f"  1 worker:  {seconds_1:6.2f}s  "
                f"({throughput_1:.2f} sessions/s)",
                f"  {POOL_WORKERS} workers: {seconds_n:6.2f}s  "
                f"({throughput_n:.2f} sessions/s)  (speedup x{speedup:.2f})",
            ]
        ),
    )

    # sharding is plumbing, not approximation: per-client parity with
    # one-shot generation at every pool size
    for client, asts in logs.items():
        expected = generate(asts, options=options).interface.widget_summary()
        for pool_size, results in out["results"].items():
            assert results[client].interface.widget_summary() == expected, (
                client,
                pool_size,
            )
    # the wall-clock win needs real cores to exist
    if (os.cpu_count() or 1) > 1 and not TINY:
        assert speedup > 1.0, payload


def _skewed_statements():
    """The adversarial one-hot log: warm-up plants one big component
    (a divergent query creates a root-path widget) holding K function
    subtrees, then the hot phase varies a single literal."""
    k = SKEW_SUBTREES

    def conj(x_value, literals):
        parts = [f"x = {x_value}"] + [
            f"f{i}(y, {literals[i]}) = 5" for i in range(k)
        ]
        return " AND ".join(parts)

    base = [2] * k
    statements = ["SELECT g, SUM(m) FROM t GROUP BY g"]
    for i in range(k):
        for j in range(SKEW_LITERALS):
            literals = list(base)
            literals[i] = j + 3
            statements.append(f"SELECT a, b FROM t WHERE {conj(0, literals)}")
        for s in range(SKEW_STRUCTURAL):
            parts = ["x = 0"] + [
                f"f{m}(y, {base[m]}) = 5" if m != i else f"z{s} = 5"
                for m in range(k)
            ]
            statements.append(
                "SELECT a, b FROM t WHERE " + " AND ".join(parts)
            )
            statements.append(f"SELECT a, b FROM t WHERE {conj(0, base)}")
    warm = len(statements)
    statements += [
        f"SELECT a, b FROM t WHERE {conj(value, base)}"
        for value in range(SKEW_HOT)
    ]
    return statements, warm


def _drive_skewed(asts, warm, options, use_windows, probes):
    """Per-append merge timings for one ablation arm, plus the widget
    summaries and closure verdicts the parity assertions compare."""
    # the timed appends are short (single-digit ms); collect garbage from
    # earlier sections up front so neither arm pays for it mid-loop
    gc.collect()
    cache = MapCache()
    graph = build_interaction_graph(asts[: warm + SKEW_WARM_EXTRA], window=2)
    cache.index.update(graph.diffs)
    widgets, _, _ = initialize_indexed(
        cache, options.library, options.annotations
    )
    merge_widgets_incremental(
        widgets, options.library, options.annotations, cache,
        use_windows=use_windows,
    )
    seconds, summaries, verdicts = [], [], []
    for start in range(warm + SKEW_WARM_EXTRA, len(asts), SKEW_BATCH):
        extend_interaction_graph(
            graph, asts[start : start + SKEW_BATCH], window=2
        )
        cache.index.update(graph.diffs)
        t0 = time.perf_counter()
        widgets, _, _ = initialize_indexed(
            cache, options.library, options.annotations
        )
        merged, _, _ = merge_widgets_incremental(
            widgets, options.library, options.annotations, cache,
            use_windows=use_windows,
        )
        seconds.append(time.perf_counter() - t0)
        summaries.append(
            [(w.widget_type.name, str(w.path), w.domain.size) for w in merged]
        )
        verdicts.append(
            [expresses(merged, asts[0], probe) for probe in probes]
        )
    return seconds, summaries, verdicts


def test_incremental_append(benchmark):
    """Steady-state append cost vs the two non-incremental alternatives:
    re-generating from scratch (what a system without sessions pays per
    arrival) and a full remap of the accumulated graph (what the PR-2
    session paid for its merge phase).  A second, skewed section ablates
    the interval-index window memo against component-granularity
    re-merging on a one-hot workload."""
    asts = AdhocLogGenerator(seed=2).student_log("S1", APPEND_TOTAL).asts()
    options = PipelineOptions(window=WINDOW)

    def run():
        session = InterfaceSession(options=options)
        session.append(asts[:APPEND_WARMUP])

        append_seconds = []
        remap_seconds = []
        merge_component_reuse = []
        for start in range(APPEND_WARMUP, APPEND_TOTAL, APPEND_BATCH):
            t0 = time.perf_counter()
            result = session.append(asts[start:start + APPEND_BATCH])
            append_seconds.append(time.perf_counter() - t0)
            run_stages = result.run
            merge_component_reuse.append(
                run_stages.stage("merge").stats.get("n_components_reused", 0)
            )
            # full remap of the same accumulated graph, from cold
            diffs = sorted(
                (d for d in session._graph.diffs), key=lambda d: (d.q1, d.q2)
            )
            t1 = time.perf_counter()
            widgets = initialize(diffs, options.library, options.annotations)
            merge_widgets(
                widgets,
                options.library,
                options.annotations,
                leaf_diffs=[d for d in diffs if d.is_leaf],
            )
            remap_seconds.append(time.perf_counter() - t1)

        # one re-generation from scratch over the final accumulated log —
        # the per-arrival cost of a system with no incremental path
        t2 = time.perf_counter()
        full = generate(asts, options=options)
        regenerate_seconds = time.perf_counter() - t2
        return {
            "session": session,
            "full": full,
            "append_seconds": append_seconds,
            "remap_seconds": remap_seconds,
            "regenerate_seconds": regenerate_seconds,
            "merge_component_reuse": merge_component_reuse,
        }

    out = run_once(benchmark, run)
    steady_append = statistics.median(out["append_seconds"])
    full_remap = statistics.median(out["remap_seconds"])
    regenerate = out["regenerate_seconds"]
    speedup_vs_regenerate = regenerate / max(steady_append, 1e-9)
    speedup_vs_remap = full_remap / max(steady_append, 1e-9)

    # skewed one-hot ablation: the same appends driven through the
    # mapper twice — once with the interval-index window memo, once at
    # component granularity (``use_windows=False``, the pre-index path)
    skew_statements, skew_warm = _skewed_statements()
    skew_asts = [parse_sql(statement) for statement in skew_statements]
    probes = skew_asts[:3] + skew_asts[-2:]
    skew_options = PipelineOptions(window=2)
    windowed = _drive_skewed(skew_asts, skew_warm, skew_options, True, probes)
    baseline = _drive_skewed(skew_asts, skew_warm, skew_options, False, probes)
    # the memo is an optimisation, not an approximation: byte-identical
    # widget sets and closure answers at every append
    assert windowed[1] == baseline[1]
    assert windowed[2] == baseline[2]
    skew_windowed = statistics.median(windowed[0])
    skew_baseline = statistics.median(baseline[0])
    speedup_skewed_windows = skew_baseline / max(skew_windowed, 1e-9)

    payload = {
        "workload": {
            "family": "adhoc",
            "n_queries": APPEND_TOTAL,
            "warmup": APPEND_WARMUP,
            "batch": APPEND_BATCH,
            "window": WINDOW,
            "tiny_budget": TINY,
        },
        "steady_append_seconds": steady_append,
        "full_remap_seconds": full_remap,
        "full_regenerate_seconds": regenerate,
        "speedup_vs_regenerate": speedup_vs_regenerate,
        "speedup_vs_remap": speedup_vs_remap,
        "append_seconds": out["append_seconds"],
        "skewed_workload": {
            "n_subtrees": SKEW_SUBTREES,
            "n_literals": SKEW_LITERALS,
            "n_structural": SKEW_STRUCTURAL,
            "n_hot": SKEW_HOT,
            "warmup": skew_warm + SKEW_WARM_EXTRA,
            "batch": SKEW_BATCH,
        },
        "skewed_windowed_seconds": skew_windowed,
        "skewed_component_seconds": skew_baseline,
        "speedup_skewed_windows": speedup_skewed_windows,
    }
    emit_json("BENCH_incremental", payload)
    emit(
        "incremental_append",
        "\n".join(
            [
                f"session over {APPEND_TOTAL} adhoc queries "
                f"(warmup {APPEND_WARMUP}, batch {APPEND_BATCH}, "
                f"window={WINDOW})",
                f"  steady-state append:     {steady_append * 1000:8.1f} ms",
                f"  full remap (map+merge):  {full_remap * 1000:8.1f} ms  "
                f"(x{speedup_vs_remap:.1f})",
                f"  full regenerate:         {regenerate * 1000:8.1f} ms  "
                f"(x{speedup_vs_regenerate:.1f})",
                f"  merge components reused per append: "
                f"{out['merge_component_reuse']}",
                "",
                f"skewed one-hot ablation ({SKEW_SUBTREES} subtrees, "
                f"{SKEW_HOT} hot appends, batch {SKEW_BATCH})",
                f"  windowed merge (interval memo): "
                f"{skew_windowed * 1000:8.1f} ms",
                f"  component re-merge (ablated):   "
                f"{skew_baseline * 1000:8.1f} ms  "
                f"(x{speedup_skewed_windows:.1f})",
            ]
        ),
    )

    # the session must stay result-equivalent to one-shot generation
    assert (
        out["session"].interface.widget_summary()
        == out["full"].interface.widget_summary()
    )
    # incrementality must actually pay: appends beat the full pipeline by
    # 3x or better on a 200+-query log (tiny smoke logs have no steady
    # state, so the ratio is only gated on the full workload)
    if not TINY:
        assert speedup_vs_regenerate >= 3.0, payload
        assert speedup_vs_remap > 1.0, payload
        # the window memo must pay for itself on the skewed workload it
        # was built for: 3x over component-granularity re-merging
        assert speedup_skewed_windows >= 3.0, payload
