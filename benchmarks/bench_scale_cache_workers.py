"""Scale layer: sharded ``generate_many`` and the persistent graph cache.

Not a paper figure — this benchmarks the PR-2 scale features on the
Figure 7 multi-client workload (independent per-client SDSS logs):

* ``generate_many(logs, workers=2)`` must beat ``workers=1`` wall-clock —
  per-client mining is embarrassingly parallel;
* a warm ``cache_dir`` run must skip the Mine stage and spend (almost)
  nothing re-mining.
"""

import os
import tempfile
import time

from repro.api import generate, generate_many
from repro.core.options import PipelineOptions
from repro.logs import SDSSLogGenerator

from helpers import emit, run_once

N_CLIENTS = 8
N_QUERIES = 200
#: widen the window beyond the paper's default 2 so mining dominates and
#: the sharding/caching effect is measured against real work
WINDOW = 16


def test_workers_and_cache(benchmark):
    generator = SDSSLogGenerator(seed=0)
    logs = [
        log.asts()
        for log in generator.clients(N_CLIENTS, n_queries=N_QUERIES).values()
    ]
    options = PipelineOptions(window=WINDOW)

    def run():
        t0 = time.perf_counter()
        serial = generate_many(logs, options=options, workers=1)
        t1 = time.perf_counter()
        sharded = generate_many(logs, options=options, workers=2)
        t2 = time.perf_counter()

        with tempfile.TemporaryDirectory() as cache_dir:
            cached_options = PipelineOptions(window=WINDOW, cache_dir=cache_dir)
            t3 = time.perf_counter()
            cold = generate(logs[0], options=cached_options)
            t4 = time.perf_counter()
            warm = generate(logs[0], options=cached_options)
            t5 = time.perf_counter()
        return {
            "serial_seconds": t1 - t0,
            "sharded_seconds": t2 - t1,
            "results": (serial, sharded),
            "cold_seconds": t4 - t3,
            "warm_seconds": t5 - t4,
            "cold": cold,
            "warm": warm,
        }

    out = run_once(benchmark, run)
    serial, sharded = out["results"]
    speedup = out["serial_seconds"] / max(out["sharded_seconds"], 1e-9)
    cache_speedup = out["cold_seconds"] / max(out["warm_seconds"], 1e-9)

    emit(
        "scale_cache_workers",
        "\n".join(
            [
                f"generate_many over {N_CLIENTS} SDSS client logs x "
                f"{N_QUERIES} queries (window={WINDOW})",
                f"  workers=1: {out['serial_seconds']:.2f}s",
                f"  workers=2: {out['sharded_seconds']:.2f}s  "
                f"(speedup x{speedup:.2f})",
                "",
                f"generate with cache_dir, {N_QUERIES}-query log",
                f"  cold (mine + persist): {out['cold_seconds'] * 1000:.0f} ms",
                f"  warm (cache hit):      {out['warm_seconds'] * 1000:.0f} ms  "
                f"(speedup x{cache_speedup:.2f})",
                f"  warm mine skipped: "
                f"{out['warm'].run.stage('mine').stats['skipped']}",
            ]
        ),
    )

    # sharding must not change the mined interfaces; the wall-clock win
    # is only asserted where a second core exists to provide it
    assert [r.interface.widget_summary() for r in sharded] == [
        r.interface.widget_summary() for r in serial
    ]
    if (os.cpu_count() or 1) > 1:
        assert out["sharded_seconds"] < out["serial_seconds"]
    # the warm run skips mining entirely and compares zero pairs
    assert out["warm"].run.stage("cache").stats["hit"] is True
    assert out["warm"].run.stage("mine").stats["skipped"] is True
    assert out["warm"].run.n_pairs_compared == 0
    assert out["warm_seconds"] < out["cold_seconds"]
    assert (
        out["warm"].interface.widget_summary()
        == out["cold"].interface.widget_summary()
    )
