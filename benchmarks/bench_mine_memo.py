"""Skeleton-diff memoisation: warm-memo vs cold mining cost.

Not a paper figure — this benchmarks the :class:`~repro.treediff.memo.
DiffMemo` layer on the four bundled log families:

* a **cold** mine runs every pair through the full child-alignment DP
  (``build_interaction_graph`` without a memo);
* a **warm-memo** mine runs the same log through a memo that has already
  seen every shape pair (what a steady-state session append, a pool
  worker with an adopted ``.diffmemo.json``, or a re-mine after a code
  change pays) — all alignments replay their recorded plan.

The SDSS template workload must come out >= 3x faster warm than cold
(the tentpole's acceptance bar); the other families are reported and
gated through the committed baseline but not floor-asserted — their
shape diversity differs by design.

Result-equivalence is asserted the hard way, at every append: for each
family the log is fed in batches to two parallel builds — one extending
through the memo, one re-built cold — and after every batch the diffs
table, edge list, merged widget set, and closure answers must be
byte-identical.

Writes ``results/BENCH_mine.json`` (the perf-trajectory record CI's
regression gate compares against
``benchmarks/baselines/bench_mine_baseline.json``; dimensionless
speedups only, so the gate holds across hardware).  Set
``REPRO_BENCH_BUDGET=tiny`` for the CI smoke variant.
"""

import json
import os
import time

from repro.cache.serialize import diff_to_dict
from repro.core.interface import Interface
from repro.core.mapper import initialize, merge_widgets
from repro.core.options import PipelineOptions
from repro.graph.build import (
    BuildStats,
    build_interaction_graph,
    extend_interaction_graph,
)
from repro.logs import AdhocLogGenerator, OLAPLogGenerator, SDSSLogGenerator
from repro.logs.sessions import segment_asts
from repro.treediff.memo import DiffMemo

from helpers import emit, emit_json, run_once

TINY = os.environ.get("REPRO_BENCH_BUDGET") == "tiny"

N_QUERIES = 40 if TINY else 200
WINDOW = 8 if TINY else 16
#: per-family append batch size for the parity-at-every-append assertion
PARITY_QUERIES = 24 if TINY else 48
PARITY_BATCH = 8

FAMILIES = ("sdss", "olap", "adhoc", "sessions")


def _family_log(family: str, n: int) -> list:
    if family == "sdss":
        return SDSSLogGenerator(seed=0).client_log("C1", "object_lookup", n).asts()
    if family == "olap":
        return OLAPLogGenerator(seed=1).generate(n).asts()
    if family == "adhoc":
        return AdhocLogGenerator(seed=2).student_log("S1", n).asts()
    if family == "sessions":
        # the interleaved multi-analysis log the sessions module segments;
        # mining the longest recovered analysis exercises segment traffic
        mixed = SDSSLogGenerator(seed=3).interleaved(3, max(n // 2, 10)).asts()
        return max(segment_asts(mixed, 0.3, 0.3), key=len)
    raise AssertionError(family)


def _graph_payload(graph) -> tuple:
    """A byte-comparable projection of everything mining produced."""
    return (
        [diff_to_dict(d) for d in graph.diffs],
        [
            (e.q1, e.q2, [diff_to_dict(d) for d in e.interaction])
            for e in graph.edges
        ],
    )


def test_mine_memo_speedup(benchmark):
    """Warm-memo mining beats cold mining, byte-identically."""
    logs = {family: _family_log(family, N_QUERIES) for family in FAMILIES}

    def run():
        out = {}
        for family, asts in logs.items():
            t0 = time.perf_counter()
            cold_stats = BuildStats()
            cold = build_interaction_graph(
                asts, window=WINDOW, stats=cold_stats
            )
            cold_seconds = time.perf_counter() - t0

            memo = DiffMemo()
            build_interaction_graph(asts, window=WINDOW, memo=memo)  # warm it
            t1 = time.perf_counter()
            warm_stats = BuildStats()
            warm = build_interaction_graph(
                asts, window=WINDOW, stats=warm_stats, memo=memo
            )
            warm_seconds = time.perf_counter() - t1
            out[family] = {
                "cold": cold,
                "warm": warm,
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "cold_stats": cold_stats,
                "warm_stats": warm_stats,
                "n_shapes": memo.n_shapes,
                "n_plans": memo.n_plans,
            }
        return out

    out = run_once(benchmark, run)

    payload = {
        "workload": {
            "families": list(FAMILIES),
            "n_queries": N_QUERIES,
            "window": WINDOW,
            "tiny_budget": TINY,
        }
    }
    lines = [
        f"cold vs warm-memo mine, {N_QUERIES} queries/family (window={WINDOW})"
    ]
    for family, result in out.items():
        # byte-identical mining output is the hard requirement
        assert _graph_payload(result["cold"]) == _graph_payload(result["warm"]), family
        # the warm pass must have replayed every alignment it performed
        assert result["warm_stats"].n_alignments_full == 0, (
            family,
            result["warm_stats"],
        )
        speedup = result["cold_seconds"] / max(result["warm_seconds"], 1e-9)
        payload[f"speedup_mine_memo_{family}"] = speedup
        payload[f"n_plans_{family}"] = result["n_plans"]
        lines.append(
            f"  {family:9s} cold {result['cold_seconds'] * 1000:7.1f} ms  "
            f"warm {result['warm_seconds'] * 1000:7.1f} ms  "
            f"(x{speedup:.2f}, {result['n_plans']} plans / "
            f"{result['cold_stats'].n_pairs_compared} pairs)"
        )
    emit_json("BENCH_mine", payload)
    emit("mine_memo", "\n".join(lines))

    # the acceptance bar: >= 3x on the SDSS template workload (tiny smoke
    # logs are too small for a stable ratio, so only the full budget gates)
    if not TINY:
        assert payload["speedup_mine_memo_sdss"] >= 3.0, payload


def test_memo_parity_at_every_append(benchmark):
    """Memoised incremental mining == cold full build, at every append.

    The diffs table, edges, merged widget set, and closure answers must
    all be byte-identical on every prefix of every family — this is the
    acceptance criterion's parity clause, asserted directly.
    """
    options = PipelineOptions(window=WINDOW)

    def interface_from(diffs, queries):
        widgets = initialize(diffs, options.library, options.annotations)
        widgets = merge_widgets(
            widgets,
            options.library,
            options.annotations,
            leaf_diffs=[d for d in diffs if d.is_leaf],
        )
        return Interface(
            widgets=widgets,
            initial_query=queries[0],
            annotations=options.annotations,
        )

    def run():
        checked = {}
        for family in FAMILIES:
            asts = _family_log(family, PARITY_QUERIES)
            memo = DiffMemo()
            graph = None
            n_checked = 0
            for start in range(0, len(asts), PARITY_BATCH):
                batch = asts[start:start + PARITY_BATCH]
                if not batch:
                    break
                if graph is None:
                    graph = build_interaction_graph(
                        batch, window=WINDOW, memo=memo
                    )
                else:
                    extend_interaction_graph(
                        graph, batch, window=WINDOW, memo=memo
                    )
                prefix = asts[: start + len(batch)]
                cold = build_interaction_graph(prefix, window=WINDOW)
                # extend appends in arrival order; normalise like the
                # session does before comparing against the full build
                memoised_diffs = sorted(
                    graph.diffs, key=lambda d: (d.q1, d.q2)
                )
                assert [diff_to_dict(d) for d in memoised_diffs] == [
                    diff_to_dict(d) for d in cold.diffs
                ], (family, start)
                assert sorted(
                    (e.q1, e.q2) for e in graph.edges
                ) == [(e.q1, e.q2) for e in cold.edges], (family, start)
                # widget-set + closure parity: map both graphs and compare
                memoised_iface = interface_from(memoised_diffs, prefix)
                cold_iface = interface_from(cold.diffs, prefix)
                assert (
                    memoised_iface.widget_summary()
                    == cold_iface.widget_summary()
                ), (family, start)
                for probe in prefix[-3:]:
                    assert memoised_iface.expresses(
                        probe
                    ) == cold_iface.expresses(probe), (family, start)
                n_checked += 1
            checked[family] = n_checked
        return checked

    checked = run_once(benchmark, run)
    emit(
        "mine_memo_parity",
        "\n".join(
            f"{family}: parity held at {n} appends"
            for family, n in checked.items()
        ),
    )
    assert all(n >= 2 for n in checked.values()), checked
