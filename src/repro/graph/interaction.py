"""Interaction graph model (Section 4.2).

The interaction graph ``G = (V, E)`` has one vertex per query in the input
log, and a directed labelled edge ``e = (q_i, q_j, t_k)`` for each pair of
compared queries, where the label ``t_k`` — an *interaction* — is the set of
leaf diff records sufficient to transform ``q_i`` into ``q_j``
(``q_j = t_k(q_i)``).

Alongside the edges, the graph keeps the full logical ``diffs`` table
(leaf diffs plus ancestor diffs, subject to LCA pruning), which is the input
``W`` of the interaction mapper's Initialize step (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqlparser.astnodes import Node
from repro.treediff.diff import Diff

__all__ = ["Edge", "InteractionGraph"]


@dataclass(frozen=True)
class Edge:
    """One labelled edge of the interaction graph.

    Attributes:
        q1: source query index.
        q2: target query index.
        interaction: the leaf diffs whose composition maps q1 to q2.
    """

    q1: int
    q2: int
    interaction: tuple[Diff, ...]

    def __len__(self) -> int:
        return len(self.interaction)


@dataclass
class InteractionGraph:
    """Queries, labelled edges, and the diffs table they induce.

    Attributes:
        queries: the parsed log, indexed by query id.
        edges: labelled edges between compared query pairs.
        diffs: all diff records (leaf and ancestor) across all edges; this
            is the mapper's ``W``.
    """

    queries: list[Node] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    diffs: list[Diff] = field(default_factory=list)

    @property
    def n_vertices(self) -> int:
        """Number of vertices ``|V|`` — one per logged query."""
        return len(self.queries)

    @property
    def n_edges(self) -> int:
        """Number of labelled edges ``|E|``."""
        return len(self.edges)

    @property
    def n_diffs(self) -> int:
        """Size of the diffs table (leaf plus ancestor records)."""
        return len(self.diffs)

    def out_edges(self, query_index: int) -> list[Edge]:
        """Edges whose source is ``query_index``."""
        return [e for e in self.edges if e.q1 == query_index]

    def neighbours(self, query_index: int) -> set[int]:
        """Vertices adjacent (either direction) to ``query_index``."""
        out: set[int] = set()
        for e in self.edges:
            if e.q1 == query_index:
                out.add(e.q2)
            elif e.q2 == query_index:
                out.add(e.q1)
        return out

    def summary(self) -> dict[str, int]:
        """Size statistics used by the runtime experiments (Appendix B)."""
        return {
            "vertices": self.n_vertices,
            "edges": self.n_edges,
            "diffs": self.n_diffs,
            "leaf_diffs": sum(1 for d in self.diffs if d.is_leaf),
            "ancestor_diffs": sum(1 for d in self.diffs if not d.is_leaf),
        }
