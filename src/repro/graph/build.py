"""Interaction-graph construction with the sliding-window optimisation.

The baseline implementation of Section 6 compares *all* pairs of queries —
``O(|Q|^2)`` tree alignments.  The sliding-window optimisation (Section 6.1)
exploits locality in analysis logs: only pairs within ``window`` positions
of each other are compared, reducing the work to ``O(|Q| * window)`` and
shrinking the interaction graph the mapper must process.

Identical consecutive queries (common in real logs) produce no diff records
and therefore no edges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import LogError
from repro.graph.interaction import Edge, InteractionGraph
from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.treediff.diff import extract_diffs

__all__ = ["BuildStats", "build_interaction_graph", "extend_interaction_graph"]


@dataclass
class BuildStats:
    """Instrumentation produced while mining interactions.

    Attributes:
        n_pairs_compared: number of tree alignments performed.
        mining_seconds: wall-clock time spent extracting diffs.
    """

    n_pairs_compared: int = 0
    mining_seconds: float = 0.0


def _compare_pair(
    graph: InteractionGraph,
    i: int,
    j: int,
    prune: bool,
    annotations: GrammarAnnotations,
) -> None:
    """Align queries ``i`` and ``j`` and record the diffs/edge, if any.

    Shared by the full build and the incremental extension — the
    incremental session's result-equivalence guarantee depends on both
    paths recording pairs identically.
    """
    left, right = graph.queries[i], graph.queries[j]
    if left.fingerprint == right.fingerprint and left.equals(right):
        return
    records = extract_diffs(
        left, right, q1=i, q2=j, prune=prune, annotations=annotations
    )
    if not records:
        return
    graph.diffs.extend(records)
    leaf = tuple(d for d in records if d.is_leaf)
    graph.edges.append(Edge(q1=i, q2=j, interaction=leaf))


def build_interaction_graph(
    queries: list[Node],
    window: int | None = None,
    prune: bool = True,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    stats: BuildStats | None = None,
) -> InteractionGraph:
    """Mine the interaction graph from a parsed query log.

    Args:
        queries: ASTs in log order.
        window: sliding-window size; compare queries at positions ``i < j``
            only when ``j - i < window``.  ``None`` (or a window of at least
            ``len(queries)``) compares all pairs — the unoptimised baseline.
            The minimum useful window is 2 (adjacent pairs only).
        prune: apply LCA pruning while extracting diffs (Section 6.2).
        annotations: grammar annotations for typing changes.
        stats: optional instrumentation sink.

    Returns:
        The mined :class:`InteractionGraph`.

    Raises:
        LogError: for an empty log or a nonsensical window.
    """
    if not queries:
        raise LogError("cannot mine an empty query log")
    if window is not None and window < 2:
        raise LogError(f"window must be >= 2, got {window}")

    graph = InteractionGraph(queries=list(queries))
    span = len(queries) if window is None else window
    started = time.perf_counter()
    n_pairs = 0

    for i in range(len(queries)):
        upper = min(len(queries), i + span)
        for j in range(i + 1, upper):
            n_pairs += 1
            _compare_pair(graph, i, j, prune, annotations)

    if stats is not None:
        stats.n_pairs_compared += n_pairs
        stats.mining_seconds += time.perf_counter() - started
    return graph


def extend_interaction_graph(
    graph: InteractionGraph,
    new_queries: list[Node],
    window: int | None = None,
    prune: bool = True,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    stats: BuildStats | None = None,
) -> InteractionGraph:
    """Incrementally extend a mined graph with appended queries.

    Only pairs that involve a new query are aligned: for each appended
    position ``j``, the partners are ``i in [max(0, j - window + 1), j)``
    (all earlier queries when ``window`` is ``None``).  Together with the
    pairs already in ``graph`` this is exactly the pair set
    :func:`build_interaction_graph` would compare on the concatenated log,
    so growing a log by increments never re-diffs an already-compared pair.

    The graph is mutated in place and returned.  Note that edges/diffs are
    appended in arrival order, which differs from the full build's
    ``(q1, q2)``-lexicographic order once ``window > 2``; callers that need
    build-order parity (the incremental session does) sort by ``(q1, q2)``
    before mapping.

    Raises:
        LogError: for an empty batch or a nonsensical window.
    """
    if not new_queries:
        raise LogError("cannot extend the graph with an empty batch")
    if window is not None and window < 2:
        raise LogError(f"window must be >= 2, got {window}")

    old_n = len(graph.queries)
    graph.queries.extend(new_queries)
    started = time.perf_counter()
    n_pairs = 0

    for j in range(old_n, len(graph.queries)):
        start = 0 if window is None else max(0, j - window + 1)
        for i in range(start, j):
            n_pairs += 1
            _compare_pair(graph, i, j, prune, annotations)

    if stats is not None:
        stats.n_pairs_compared += n_pairs
        stats.mining_seconds += time.perf_counter() - started
    return graph
