"""Interaction-graph construction with the sliding-window optimisation.

The baseline implementation of Section 6 compares *all* pairs of queries —
``O(|Q|^2)`` tree alignments.  The sliding-window optimisation (Section 6.1)
exploits locality in analysis logs: only pairs within ``window`` positions
of each other are compared, reducing the work to ``O(|Q| * window)`` and
shrinking the interaction graph the mapper must process.

Identical consecutive queries (common in real logs) produce no diff records
and therefore no edges.

Template-repetitive logs get a second optimisation on top of the window:
pass a :class:`~repro.treediff.memo.DiffMemo` and every pair whose
*shape* (skeleton pair + literal pattern) was aligned before replays the
memoised alignment plan instead of re-running the child-alignment DP —
mining cost becomes proportional to unique shape pairs, not raw pairs,
with byte-identical output (see :mod:`repro.treediff.memo`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import LogError
from repro.graph.interaction import Edge, InteractionGraph
from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.treediff.diff import extract_diffs
from repro.treediff.memo import DiffMemo

__all__ = ["BuildStats", "build_interaction_graph", "extend_interaction_graph"]

# _compare_pair outcomes, tallied into BuildStats by the build loops
_SKIPPED = 0  # structurally identical pair: no alignment at all
_FULL = 1  # full alignment (no memo, first-of-shape, or fallback)
_MEMOISED = 2  # alignment plan replay


@dataclass
class BuildStats:
    """Instrumentation produced while mining interactions.

    Attributes:
        n_pairs_compared: number of tree alignments performed (replayed
            or full; structurally identical pairs count too, matching the
            pair-set semantics the incremental session relies on).
        mining_seconds: wall-clock time spent extracting diffs.
        n_alignments_memoised: pairs answered by a
            :class:`~repro.treediff.memo.DiffMemo` plan replay — no
            alignment DP was run for them.
        n_alignments_full: pairs that ran the full alignment (includes
            every pair when mining without a memo).
    """

    n_pairs_compared: int = 0
    mining_seconds: float = 0.0
    n_alignments_memoised: int = 0
    n_alignments_full: int = 0


def _compare_pair(
    graph: InteractionGraph,
    i: int,
    j: int,
    prune: bool,
    annotations: GrammarAnnotations,
    memo: DiffMemo | None = None,
) -> int:
    """Align queries ``i`` and ``j`` and record the diffs/edge, if any.

    Shared by the full build and the incremental extension — the
    incremental session's result-equivalence guarantee depends on both
    paths recording pairs identically.  With a ``memo``, known shapes
    replay their alignment plan (result-identical, see
    :class:`~repro.treediff.memo.DiffMemo`).  Returns the outcome code
    the build loops tally into :class:`BuildStats`.
    """
    left, right = graph.queries[i], graph.queries[j]
    if left.fingerprint == right.fingerprint and left.equals(right):
        return _SKIPPED
    if memo is not None:
        before = memo.n_replayed
        records = memo.extract(
            left, right, q1=i, q2=j, prune=prune, annotations=annotations
        )
        outcome = _MEMOISED if memo.n_replayed > before else _FULL
    else:
        records = extract_diffs(
            left, right, q1=i, q2=j, prune=prune, annotations=annotations
        )
        outcome = _FULL
    if not records:
        return outcome
    graph.diffs.extend(records)
    leaf = tuple(d for d in records if d.is_leaf)
    graph.edges.append(Edge(q1=i, q2=j, interaction=leaf))
    return outcome


def build_interaction_graph(
    queries: list[Node],
    window: int | None = None,
    prune: bool = True,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    stats: BuildStats | None = None,
    memo: DiffMemo | None = None,
) -> InteractionGraph:
    """Mine the interaction graph from a parsed query log.

    Args:
        queries: ASTs in log order.
        window: sliding-window size; compare queries at positions ``i < j``
            only when ``j - i < window``.  ``None`` (or a window of at least
            ``len(queries)``) compares all pairs — the unoptimised baseline.
            The minimum useful window is 2 (adjacent pairs only).
        prune: apply LCA pruning while extracting diffs (Section 6.2).
        annotations: grammar annotations for typing changes.
        stats: optional instrumentation sink.
        memo: optional :class:`~repro.treediff.memo.DiffMemo`; repeated
            query shapes replay their alignment plan instead of re-running
            the alignment DP.  Output is byte-identical either way.

    Returns:
        The mined :class:`InteractionGraph`.

    Raises:
        LogError: for an empty log or a nonsensical window.
    """
    if not queries:
        raise LogError("cannot mine an empty query log")
    if window is not None and window < 2:
        raise LogError(f"window must be >= 2, got {window}")

    graph = InteractionGraph(queries=list(queries))
    span = len(queries) if window is None else window
    started = time.perf_counter()
    n_pairs = 0
    n_memoised = 0
    n_full = 0

    for i in range(len(queries)):
        upper = min(len(queries), i + span)
        for j in range(i + 1, upper):
            n_pairs += 1
            outcome = _compare_pair(graph, i, j, prune, annotations, memo)
            if outcome == _MEMOISED:
                n_memoised += 1
            elif outcome == _FULL:
                n_full += 1

    if stats is not None:
        stats.n_pairs_compared += n_pairs
        stats.mining_seconds += time.perf_counter() - started
        stats.n_alignments_memoised += n_memoised
        stats.n_alignments_full += n_full
    return graph


def extend_interaction_graph(
    graph: InteractionGraph,
    new_queries: list[Node],
    window: int | None = None,
    prune: bool = True,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    stats: BuildStats | None = None,
    memo: DiffMemo | None = None,
) -> InteractionGraph:
    """Incrementally extend a mined graph with appended queries.

    Only pairs that involve a new query are aligned: for each appended
    position ``j``, the partners are ``i in [max(0, j - window + 1), j)``
    (all earlier queries when ``window`` is ``None``).  Together with the
    pairs already in ``graph`` this is exactly the pair set
    :func:`build_interaction_graph` would compare on the concatenated log,
    so growing a log by increments never re-diffs an already-compared pair.

    The graph is mutated in place and returned.  Note that edges/diffs are
    appended in arrival order, which differs from the full build's
    ``(q1, q2)``-lexicographic order once ``window > 2``; callers that need
    build-order parity (the incremental session does) sort by ``(q1, q2)``
    before mapping.

    Raises:
        LogError: for an empty batch or a nonsensical window.
    """
    if not new_queries:
        raise LogError("cannot extend the graph with an empty batch")
    if window is not None and window < 2:
        raise LogError(f"window must be >= 2, got {window}")

    old_n = len(graph.queries)
    graph.queries.extend(new_queries)
    started = time.perf_counter()
    n_pairs = 0
    n_memoised = 0
    n_full = 0

    for j in range(old_n, len(graph.queries)):
        start = 0 if window is None else max(0, j - window + 1)
        for i in range(start, j):
            n_pairs += 1
            outcome = _compare_pair(graph, i, j, prune, annotations, memo)
            if outcome == _MEMOISED:
                n_memoised += 1
            elif outcome == _FULL:
                n_full += 1

    if stats is not None:
        stats.n_pairs_compared += n_pairs
        stats.mining_seconds += time.perf_counter() - started
        stats.n_alignments_memoised += n_memoised
        stats.n_alignments_full += n_full
    return graph
