"""Interaction-graph construction with the sliding-window optimisation.

The baseline implementation of Section 6 compares *all* pairs of queries —
``O(|Q|^2)`` tree alignments.  The sliding-window optimisation (Section 6.1)
exploits locality in analysis logs: only pairs within ``window`` positions
of each other are compared, reducing the work to ``O(|Q| * window)`` and
shrinking the interaction graph the mapper must process.

Identical consecutive queries (common in real logs) produce no diff records
and therefore no edges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.errors import LogError
from repro.graph.interaction import Edge, InteractionGraph
from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.treediff.diff import extract_diffs

__all__ = ["BuildStats", "build_interaction_graph"]


@dataclass
class BuildStats:
    """Instrumentation produced while mining interactions.

    Attributes:
        n_pairs_compared: number of tree alignments performed.
        mining_seconds: wall-clock time spent extracting diffs.
    """

    n_pairs_compared: int = 0
    mining_seconds: float = 0.0


def build_interaction_graph(
    queries: list[Node],
    window: int | None = None,
    prune: bool = True,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    stats: BuildStats | None = None,
) -> InteractionGraph:
    """Mine the interaction graph from a parsed query log.

    Args:
        queries: ASTs in log order.
        window: sliding-window size; compare queries at positions ``i < j``
            only when ``j - i < window``.  ``None`` (or a window of at least
            ``len(queries)``) compares all pairs — the unoptimised baseline.
            The minimum useful window is 2 (adjacent pairs only).
        prune: apply LCA pruning while extracting diffs (Section 6.2).
        annotations: grammar annotations for typing changes.
        stats: optional instrumentation sink.

    Returns:
        The mined :class:`InteractionGraph`.

    Raises:
        LogError: for an empty log or a nonsensical window.
    """
    if not queries:
        raise LogError("cannot mine an empty query log")
    if window is not None and window < 2:
        raise LogError(f"window must be >= 2, got {window}")

    graph = InteractionGraph(queries=list(queries))
    span = len(queries) if window is None else window
    started = time.perf_counter()
    n_pairs = 0

    for i, left in enumerate(queries):
        upper = min(len(queries), i + span)
        for j in range(i + 1, upper):
            right = queries[j]
            n_pairs += 1
            if left.fingerprint == right.fingerprint and left.equals(right):
                continue
            records = extract_diffs(
                left, right, q1=i, q2=j, prune=prune, annotations=annotations
            )
            if not records:
                continue
            graph.diffs.extend(records)
            leaf = tuple(d for d in records if d.is_leaf)
            graph.edges.append(Edge(q1=i, q2=j, interaction=leaf))

    if stats is not None:
        stats.n_pairs_compared += n_pairs
        stats.mining_seconds += time.perf_counter() - started
    return graph
