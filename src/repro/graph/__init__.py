"""Interaction graph: vertices are queries, edges are mined interactions."""

from repro.graph.build import BuildStats, build_interaction_graph
from repro.graph.interaction import Edge, InteractionGraph

__all__ = ["Edge", "InteractionGraph", "build_interaction_graph", "BuildStats"]
