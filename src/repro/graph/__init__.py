"""Interaction graph: vertices are queries, edges are mined interactions.

:func:`build_interaction_graph` mines a parsed log in one pass
(Section 4.2 with the Section 6 optimisations);
:func:`extend_interaction_graph` grows an existing graph with appended
queries, aligning only the new pairs (what
:class:`~repro.api.session.InterfaceSession` runs per append).  The graph
is a pure function of (parsed log, options), which is what makes it
cacheable — :mod:`repro.cache` serialises it and keys it by content
fingerprints so later runs skip the mining entirely.
"""

from repro.graph.build import BuildStats, build_interaction_graph, extend_interaction_graph
from repro.graph.interaction import Edge, InteractionGraph

__all__ = [
    "Edge",
    "InteractionGraph",
    "build_interaction_graph",
    "extend_interaction_graph",
    "BuildStats",
]
