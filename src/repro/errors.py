"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors from mapping errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SQLSyntaxError(ReproError):
    """Raised when the SQL lexer or parser rejects an input query.

    Attributes:
        sql: the offending query text (may be abbreviated).
        position: character offset of the failure, when known.
    """

    def __init__(self, message: str, sql: str = "", position: int | None = None):
        super().__init__(message)
        self.sql = sql
        self.position = position

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        base = super().__str__()
        if self.position is not None:
            return f"{base} (at offset {self.position})"
        return base


class GrammarError(ReproError):
    """Raised when grammar annotations are inconsistent (e.g. a node type
    registered both as a literal and as a collection)."""


class PathError(ReproError):
    """Raised for malformed AST paths or paths that do not resolve."""


class DiffError(ReproError):
    """Raised when diff extraction is asked to compare incompatible trees."""


class WidgetError(ReproError):
    """Raised when a widget is instantiated with a domain that violates its
    widget type's rule."""


class MappingError(ReproError):
    """Raised when the interaction mapper cannot produce an interface that
    satisfies the coverage threshold."""


class SchemaError(ReproError):
    """Raised by the schema catalog for unknown tables/columns or
    inconsistent registrations."""


class LogError(ReproError):
    """Raised when a query log cannot be read, generated, or partitioned."""


class CompileError(ReproError):
    """Raised when interface compilation to HTML fails."""


class CacheError(ReproError):
    """Raised when a persisted graph or session snapshot cannot be
    decoded (version mismatch, truncation, malformed records) or does not
    match the options it is being resumed under."""


class ServiceError(ReproError):
    """Raised by the session-serving layer: misconfigured pools, submits
    to a closed pool, worker crashes, or appends that failed inside a
    worker (the per-client failure messages are carried in
    :attr:`failures`)."""

    def __init__(self, message: str, failures: list | None = None):
        super().__init__(message)
        self.failures = list(failures or [])
