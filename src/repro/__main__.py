"""Command-line interface: ``python -m repro``.

Subcommands:

* ``mine``    — mine an interface from a query-log file (one statement per
  line) and print it; optionally compile to an HTML app.
* ``recall``  — train/hold-out recall for a log file.
* ``check``   — closure-membership check of one query against a log.

``mine`` and ``recall`` accept ``--json`` to dump the run's
:class:`~repro.api.result.GenerationResult` statistics as machine-readable
JSON (consumed by the benchmarks and dashboards).

Example::

    python -m repro mine mylog.sql --html out.html
    python -m repro mine mylog.sql --json
    python -m repro check mylog.sql "SELECT * FROM t WHERE x = 5"
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import PipelineOptions, generate, generate_segmented, parse_sql
from repro.compiler import compile_html
from repro.errors import ReproError
from repro.logs.io import load_text


def _options(args: argparse.Namespace) -> PipelineOptions:
    return PipelineOptions(
        window=None if args.window == 0 else args.window,
        lca_pruning=not args.no_pruning,
        merge=not args.no_merge,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("log", help="query log file, one statement per line")
    parser.add_argument("--window", type=int, default=2,
                        help="sliding window (0 = all pairs)")
    parser.add_argument("--no-pruning", action="store_true",
                        help="disable LCA pruning")
    parser.add_argument("--no-merge", action="store_true",
                        help="disable the widget merging phase")
    parser.add_argument("--json", action="store_true",
                        help="dump generation statistics as JSON")


def _cmd_mine(args: argparse.Namespace) -> int:
    log = load_text(args.log)
    if args.segment:
        results = generate_segmented(log, options=_options(args))
    else:
        results = [generate(log, options=_options(args))]
    payloads = []
    for result in results:
        source = result.provenance["source"]
        if args.json:
            payloads.append(result.to_dict())
        else:
            print(f"# {source}: {result.provenance['n_queries']} queries")
            print(result.interface.describe())
            run = result.run
            print(
                f"(mined {run.n_diffs} diffs / {run.n_edges} edges "
                f"in {run.total_seconds * 1000:.0f} ms)\n"
            )
        if args.html:
            name = source.rsplit("/", 1)[-1]
            path = args.html if len(results) == 1 else f"{name}-{args.html}"
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(compile_html(result, title=source))
            if not args.json:
                print(f"wrote {path}")
    if args.json:
        # fixed shape: --segment always emits a list (one payload per
        # analysis), the plain path always emits a single object
        print(json.dumps(payloads if args.segment else payloads[0], indent=2))
    return 0


def _cmd_recall(args: argparse.Namespace) -> int:
    log = load_text(args.log)
    asts = [parse_sql(s) for s in log.statements()]
    split = max(1, int(len(asts) * args.split))
    result = generate(asts[:split], options=_options(args), source=log.name)
    recall = result.interface.expressiveness(asts[split:])
    if args.json:
        payload = result.to_dict()
        payload["recall"] = {
            "n_training": split,
            "n_holdout": len(asts) - split,
            "recall": recall,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"training {split} / holdout {len(asts) - split}: recall {recall:.3f}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    log = load_text(args.log)
    result = generate(
        [parse_sql(s) for s in log.statements()],
        options=_options(args),
        source=log.name,
    )
    verdict = result.interface.expresses(parse_sql(args.query))
    if args.json:
        print(json.dumps({"query": args.query, "expressible": verdict}))
    else:
        print("expressible" if verdict else "NOT expressible")
    return 0 if verdict else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Precision Interfaces (SIGMOD 2019) reproduction"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mine = commands.add_parser("mine", help="mine an interface from a log")
    _add_common(mine)
    mine.add_argument("--html", help="compile the interface to an HTML file")
    mine.add_argument("--segment", action="store_true",
                      help="segment the log into analyses first")
    mine.set_defaults(fn=_cmd_mine)

    recall = commands.add_parser("recall", help="train/holdout recall")
    _add_common(recall)
    recall.add_argument("--split", type=float, default=0.5,
                        help="training fraction (default 0.5)")
    recall.set_defaults(fn=_cmd_recall)

    check = commands.add_parser("check", help="closure membership of a query")
    _add_common(check)
    check.add_argument("query", help="SQL statement to test")
    check.set_defaults(fn=_cmd_check)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
