"""Command-line interface: ``python -m repro``.

Subcommands:

* ``mine``    — mine an interface per query-log file (one statement per
  line, or ``.jsonl``) and print it; optionally compile to an HTML app.
  Multiple log files shard across a process pool with ``--workers``.
* ``recall``  — train/hold-out recall for a log file.
* ``check``   — closure-membership check of one query against a log.
* ``serve``   — replay a (multi-client) query log through a
  :class:`~repro.service.SessionPool`: per-client batches shard across
  ``--pool-size`` worker processes behind bounded ``--queue-depth``
  queues, and the drained per-client interfaces are reported.  With
  ``--cache-dir`` the workers share one graph store and publish their
  graphs, widget sets, and closure proofs on drain; add
  ``--daemon-socket`` to route that store through a running daemon.
  ``--follow`` streams each append's outcome live as workers finish it
  (JSONL events under ``--json``) instead of reporting only at drain.
  ``Ctrl-C`` mid-replay drains what completed, reports partial stats,
  and exits 130.
* ``daemon``  — run the long-lived store daemon
  (:class:`~repro.service.daemon.StoreDaemon`): one process owns the
  cache directory's segment files and serves them over a unix-domain
  socket; ``serve``/``mine`` attach with ``--daemon-socket``, and
  ``cache stats --remote`` reads its per-client meters.  Stop with
  ``Ctrl-C`` (clean exit 0).
* ``cache``   — manage a persistent cache directory: ``cache stats``
  reports occupancy (per-segment live/tombstoned counts and compaction
  debt for the packed layout), ``cache prune`` evicts
  least-recently-used entries down to ``--max-bytes``/``--max-entries``,
  ``cache clear`` empties it, and ``cache migrate --to packed|json``
  converts the on-disk layout in place (losslessly, in either
  direction).  All exit cleanly (code 0) on a store directory that
  exists but holds no entries.
* ``lint``    — run the :mod:`repro.analysis` invariant linter over the
  repository's own source (exit 0 clean, 1 findings, 2 usage error).

``mine`` and ``recall`` accept ``--json`` to dump the run's
:class:`~repro.api.result.GenerationResult` statistics as machine-readable
JSON (consumed by the benchmarks and dashboards).

The generation subcommands accept ``--cache-dir``: mined interaction
graphs *and* widget sets are persisted there (a
:class:`~repro.cache.store.GraphStore`), and a repeat run over an
unchanged log skips mining, mapping, and merging entirely — the ``--json``
output's ``cache``/``mine``/``merge`` stage stats show the hits.

Example::

    python -m repro mine mylog.sql --html out.html
    python -m repro mine mylog.sql --json --cache-dir .repro-cache
    python -m repro mine clientA.sql clientB.sql clientC.sql --workers 2
    python -m repro serve multiclient.jsonl --pool-size 4 --queue-depth 8
    python -m repro daemon --cache-dir .repro-cache --socket /tmp/repro.sock
    python -m repro serve multiclient.jsonl --follow \
        --cache-dir .repro-cache --daemon-socket /tmp/repro.sock
    python -m repro check mylog.sql "SELECT * FROM t WHERE x = 5"
    python -m repro cache stats --cache-dir .repro-cache --json
    python -m repro cache stats --cache-dir .repro-cache --remote /tmp/repro.sock
    python -m repro cache prune --cache-dir .repro-cache --max-entries 100
    python -m repro cache migrate --cache-dir .repro-cache --to json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from repro import PipelineOptions, generate, generate_many, generate_segmented, parse_sql
from repro.compiler import compile_html
from repro.errors import ReproError
from repro.logs.io import load_log, load_text


def _options(args: argparse.Namespace) -> PipelineOptions:
    return PipelineOptions(
        window=None if args.window == 0 else args.window,
        lca_pruning=not args.no_pruning,
        merge=not args.no_merge,
        cache_dir=args.cache_dir,
        daemon_socket=getattr(args, "daemon_socket", None),
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--window", type=int, default=2,
                        help="sliding window (0 = all pairs)")
    parser.add_argument("--no-pruning", action="store_true",
                        help="disable LCA pruning")
    parser.add_argument("--no-merge", action="store_true",
                        help="disable the widget merging phase")
    parser.add_argument("--json", action="store_true",
                        help="dump generation statistics as JSON")
    parser.add_argument("--cache-dir",
                        help="persist mined interaction graphs in this "
                             "directory and reuse them on repeat runs")
    parser.add_argument("--daemon-socket",
                        help="route the cache store through the daemon "
                             "on this unix socket (requires --cache-dir; "
                             "falls back to direct access when no daemon "
                             "answers)")


def _html_target(
    html: str, source: str, n_results: int, written: set[str]
) -> Path:
    """Where one result's HTML goes.

    A single result uses ``--html`` verbatim.  Multiple results prefix
    the *file name* (never the directory part) with the result's source
    stem, and same-stem collisions get a numeric suffix instead of
    silently overwriting an earlier interface.
    """
    target = Path(html)
    if n_results > 1:
        stem = source.rsplit("/", 1)[-1]
        target = target.with_name(f"{stem}-{target.name}")
    if str(target) in written:
        base = target
        counter = 2
        while str(target) in written:
            target = base.with_name(f"{base.stem}-{counter}{base.suffix}")
            counter += 1
    return target


def _cmd_mine(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    options = _options(args)
    logs = [load_log(path) for path in args.logs]
    if args.segment:
        if len(logs) > 1:
            raise ReproError("--segment takes exactly one log file")
        results = generate_segmented(logs[0], options=options, workers=args.workers)
    elif len(logs) == 1:
        results = [generate(logs[0], options=options)]
    else:
        results = generate_many(logs, options=options, workers=args.workers)
    payloads = []
    written: set[str] = set()
    for result in results:
        source = result.provenance["source"]
        if args.json:
            payloads.append(result.to_dict())
        else:
            print(f"# {source}: {result.provenance['n_queries']} queries")
            print(result.interface.describe())
            run = result.run
            print(
                f"(mined {run.n_diffs} diffs / {run.n_edges} edges "
                f"in {run.total_seconds * 1000:.0f} ms)\n"
            )
        if args.html:
            path = _html_target(args.html, source, len(results), written)
            written.add(str(path))
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(compile_html(result, title=source))
            if not args.json:
                print(f"wrote {path}")
    if args.json:
        # fixed shape: --segment and multi-file batches always emit a list
        # (one payload per interface), a single plain log emits one object
        single = len(args.logs) == 1 and not args.segment
        print(json.dumps(payloads[0] if single else payloads, indent=2))
    return 0


def _cmd_recall(args: argparse.Namespace) -> int:
    log = load_text(args.log)
    asts = [parse_sql(s) for s in log.statements()]
    split = max(1, int(len(asts) * args.split))
    result = generate(asts[:split], options=_options(args), source=log.name)
    recall = result.interface.expressiveness(asts[split:])
    if args.json:
        payload = result.to_dict()
        payload["recall"] = {
            "n_training": split,
            "n_holdout": len(asts) - split,
            "recall": recall,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"training {split} / holdout {len(asts) - split}: recall {recall:.3f}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    log = load_text(args.log)
    result = generate(
        [parse_sql(s) for s in log.statements()],
        options=_options(args),
        source=log.name,
    )
    verdict = result.interface.expresses(parse_sql(args.query))
    if args.json:
        print(json.dumps({"query": args.query, "expressible": verdict}))
    else:
        print("expressible" if verdict else "NOT expressible")
    return 0 if verdict else 1


def _print_follow_event(ack: "AppendAck", json_mode: bool) -> None:
    """One live line per processed append (``serve --follow``)."""
    if json_mode:
        event = {
            "event": "result",
            "client": ack.client_id,
            "seq": ack.seq,
            "ok": ack.ok,
            "n_queries": ack.n_queries,
            "n_widgets": ack.n_widgets,
            "error": ack.error,
        }
        if ack.compiled is not None:
            # serve --compile: the compiled interface (structural patch
            # or full page) rides on the same JSONL event
            event["compiled"] = ack.compiled
        print(json.dumps(event), flush=True)
    elif ack.ok:
        compiled = ""
        if ack.compiled is not None:
            kind = ack.compiled.get("kind", "patch")
            if kind == "error":
                compiled = f" (compile failed: {ack.compiled['error']})"
            elif kind == "page_html":
                compiled = f" (page: {len(ack.compiled['html'])} bytes)"
            elif kind == "page":
                compiled = " (full page patch)"
            else:
                compiled = (
                    f" (patch: {len(ack.compiled.get('blocks', {}))} block(s), "
                    f"{len(ack.compiled.get('closure_set', {}))} combo(s))"
                )
        print(
            f"[{ack.client_id}] batch #{ack.seq}: {ack.n_queries} queries "
            f"-> {ack.n_widgets} widget(s) in {ack.seconds * 1000:.0f} ms"
            f"{compiled}",
            flush=True,
        )
    else:
        print(f"[{ack.client_id}] batch #{ack.seq} FAILED: {ack.error}", flush=True)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import SessionPool

    if args.batch_size < 1:
        raise ReproError(f"--batch-size must be >= 1, got {args.batch_size}")
    if getattr(args, "compile", None) and not args.follow:
        raise ReproError("--compile requires --follow (it streams per-append)")
    log = load_log(args.log)
    by_client = log.by_client()
    # round-robin interleave of per-client batches: the arrival pattern a
    # live deployment sees, and the pattern that exercises the shards
    arrivals: list[tuple[str, list[str]]] = []
    pending = {
        client: client_log.statements() for client, client_log in by_client.items()
    }
    while pending:
        for client in list(pending):
            statements = pending[client]
            arrivals.append((client, statements[: args.batch_size]))
            rest = statements[args.batch_size:]
            if rest:
                pending[client] = rest
            else:
                del pending[client]
    interrupted = False
    results: dict[str, Any] = {}
    with SessionPool(
        options=_options(args),
        pool_size=args.pool_size,
        queue_depth=args.queue_depth,
    ) as pool:
        try:
            if args.follow:
                results = asyncio.run(
                    pool.serve(
                        iter(arrivals),
                        on_result=lambda ack: _print_follow_event(ack, args.json),
                        compile=getattr(args, "compile", None),
                    )
                )
            else:
                for client, batch in arrivals:
                    pool.submit(client, batch)
                results = pool.drain()
        except KeyboardInterrupt:
            # mid-replay Ctrl-C: collect what the workers completed, report
            # partial stats, and exit with the conventional 130 — never
            # die silently with results sitting in the outbox
            interrupted = True
            try:
                results = pool.drain(strict=False)
            except (KeyboardInterrupt, ReproError):
                results = {}  # second Ctrl-C or dead worker: report stats only
        stats = pool.stats()
    payload = {
        "pool": {
            "pool_size": stats.pool_size,
            "queue_depth": stats.queue_depth,
            "n_batches": stats.n_submitted,
            "n_clients": stats.n_clients,
        },
        "clients": {
            client: {
                "n_queries": result.provenance["n_queries"],
                "n_widgets": len(result.interface.widgets),
                "cost": sum(w.cost for w in result.interface.widgets),
            }
            for client, result in sorted(results.items())
        },
    }
    if interrupted:
        payload["interrupted"] = True
    if args.json:
        if args.follow:
            # --follow --json is a JSONL stream: one final summary event
            # after the per-result events
            print(json.dumps({"event": "drained", **payload}), flush=True)
        else:
            print(json.dumps(payload, indent=2))
    else:
        served = "partially served" if interrupted else "served"
        print(
            f"{served} {stats.n_submitted} batch(es) from "
            f"{stats.n_clients} client(s) across {stats.pool_size} worker(s)"
        )
        for client, result in sorted(results.items()):
            print(f"# {client}: {result.provenance['n_queries']} queries")
            print(result.interface.describe())
        if interrupted:
            print("interrupted: results above cover completed batches only")
    return 130 if interrupted else 0


def _cmd_daemon(args: argparse.Namespace) -> int:
    import os

    from repro.service.daemon import StoreDaemon

    daemon = StoreDaemon(
        args.cache_dir,
        args.socket,
        max_bytes=args.max_bytes,
        max_entries=args.max_entries,
        quota_requests=args.quota_requests,
        quota_bytes=args.quota_bytes,
    )
    print(
        f"store daemon (pid {os.getpid()}) serving {args.cache_dir} "
        f"on {args.socket}",
        flush=True,
    )
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass  # Ctrl-C is the normal way to stop a foreground daemon
    finally:
        daemon.stop()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache.store import GraphStore

    # maintenance must not invent directories: a typo'd --cache-dir should
    # error out, not report a plausible empty store (and leave litter)
    if not Path(args.cache_dir).is_dir():
        raise ReproError(f"cache directory {args.cache_dir} does not exist")
    remote = getattr(args, "remote", None)
    store = GraphStore(args.cache_dir, remote=remote)
    if remote is not None and store.remote is None:
        print(
            f"warning: no daemon answered on {remote}; "
            "reporting the local store directly",
            file=sys.stderr,
        )
    if args.cache_command == "stats":
        payload = store.stats()
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"{payload['n_keys']} key(s) [{payload['format']}]: "
                f"{payload['n_graphs']} graph(s), "
                f"{payload['n_widget_sets']} widget set(s), "
                f"{payload['n_proof_sets']} proof set(s), "
                f"{payload['n_diff_memos']} diff memo(s), "
                f"{payload['n_compiled']} compiled page(s), "
                f"{payload['total_bytes']} bytes"
            )
            for table, n_bytes in payload["bytes_by_table"].items():
                if payload["format"] == "packed":
                    entry = payload["tables"][table]
                    print(
                        f"  {table}: {n_bytes} bytes "
                        f"({entry['n_live']} live, "
                        f"{entry['n_tombstoned']} tombstoned, "
                        f"{entry['compaction_debt_bytes']} bytes "
                        f"compaction debt)"
                    )
                else:
                    print(f"  {table}: {n_bytes} bytes")
            daemon = payload.get("daemon")
            if daemon:
                print(
                    f"daemon pid {daemon['pid']} on {daemon['socket']}, "
                    f"up {daemon['uptime_seconds']:.0f}s"
                )
                for client, meter in daemon["clients"].items():
                    print(
                        f"  client {client}: {meter['requests']} request(s), "
                        f"{meter['bytes_in']} B in / {meter['bytes_out']} B out, "
                        f"{meter['refused']} refused"
                    )
        return 0
    if args.cache_command == "migrate":
        try:
            summary = store.migrate(args.to)
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
        payload = {**summary, **store.stats()}
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"migrated {summary['migrated_keys']} key(s) to "
                f"{summary['format']}; "
                f"{summary['orphans_dropped']} orphan(s) dropped, "
                f"{payload['total_bytes']} bytes"
            )
        return 0
    if args.cache_command == "prune":
        if args.max_bytes is None and args.max_entries is None:
            # an empty store prunes to an empty store under any cap — a
            # clean no-op report, not a usage error (scripted maintenance
            # over fresh directories must not trip on them)
            if not store.stats()["n_keys"]:
                removed = 0
                payload = {"removed": removed, **store.stats()}
                if args.json:
                    print(json.dumps(payload, indent=2))
                else:
                    print("store is empty; nothing to prune")
                return 0
            raise ReproError(
                "cache prune needs --max-bytes and/or --max-entries"
            )
        try:
            removed = store.prune(
                max_bytes=args.max_bytes, max_entries=args.max_entries
            )
        except ValueError as exc:
            raise ReproError(str(exc)) from exc
    else:  # clear
        removed = store.clear()
    payload = {"removed": removed, **store.stats()}
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"removed {removed} key(s); {payload['n_keys']} left, "
            f"{payload['total_bytes']} bytes"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(
        paths=args.paths,
        json_output=args.json,
        select=args.select,
        ignore=args.ignore,
        config_path=args.config,
        list_rules=args.list_rules,
    )


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, dispatch the subcommand, and return the exit code
    (0 success, 1 negative ``check`` verdict, 2 for any library error)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Precision Interfaces (SIGMOD 2019) reproduction"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mine = commands.add_parser("mine", help="mine an interface from a log")
    mine.add_argument("logs", nargs="+", metavar="log",
                      help="query log file(s); one statement per line, or "
                           ".jsonl with metadata")
    _add_common(mine)
    mine.add_argument("--html", help="compile the interface to an HTML file")
    mine.add_argument("--segment", action="store_true",
                      help="segment the log into analyses first")
    mine.add_argument("--workers", type=int, default=1,
                      help="shard multiple logs (or segments) across this "
                           "many worker processes")
    mine.set_defaults(fn=_cmd_mine)

    serve = commands.add_parser(
        "serve",
        help="serve a multi-client log through a cross-process session pool",
    )
    serve.add_argument("log", help="query log file; .jsonl rows carry a "
                                   "'client' field, plain text is one client")
    _add_common(serve)
    serve.add_argument("--pool-size", type=int, default=2,
                       help="number of session worker processes (default 2)")
    serve.add_argument("--queue-depth", type=int, default=8,
                       help="bounded per-worker queue depth in batches; "
                            "submits block when a shard is full (default 8)")
    serve.add_argument("--batch-size", type=int, default=8,
                       help="statements per submitted batch (default 8)")
    serve.add_argument("--follow", action="store_true",
                       help="stream each append's outcome live as workers "
                            "finish it (JSONL events with --json) instead "
                            "of reporting only at drain")
    serve.add_argument("--compile", choices=("page", "patch"),
                       help="with --follow: compile each append's interface "
                            "in the worker and stream it on the event — "
                            "'patch' emits structural patches (replaced "
                            "widget blocks + closure delta), 'page' the "
                            "full HTML page")
    serve.set_defaults(fn=_cmd_serve)

    daemon = commands.add_parser(
        "daemon",
        help="run the long-lived store daemon owning a cache directory",
    )
    daemon.add_argument("--cache-dir", required=True,
                        help="the GraphStore directory the daemon owns "
                             "(created if missing)")
    daemon.add_argument("--socket", required=True,
                        help="unix-domain socket path to listen on "
                             "(keep it short; ~100 byte OS limit)")
    daemon.add_argument("--max-bytes", type=int,
                        help="fleet-wide LRU cap on total store bytes")
    daemon.add_argument("--max-entries", type=int,
                        help="fleet-wide LRU cap on cached keys")
    daemon.add_argument("--quota-requests", type=int,
                        help="per-client cap on total requests")
    daemon.add_argument("--quota-bytes", type=int,
                        help="per-client cap on total transferred bytes")
    daemon.set_defaults(fn=_cmd_daemon)

    recall = commands.add_parser("recall", help="train/holdout recall")
    recall.add_argument("log", help="query log file, one statement per line")
    _add_common(recall)
    recall.add_argument("--split", type=float, default=0.5,
                        help="training fraction (default 0.5)")
    recall.set_defaults(fn=_cmd_recall)

    check = commands.add_parser("check", help="closure membership of a query")
    check.add_argument("log", help="query log file, one statement per line")
    _add_common(check)
    check.add_argument("query", help="SQL statement to test")
    check.set_defaults(fn=_cmd_check)

    cache = commands.add_parser("cache", help="manage a cache directory")
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    for sub_name, sub_help in (
        ("stats", "report the cache directory's occupancy"),
        ("prune", "evict least-recently-used entries down to the caps"),
        ("clear", "remove every cached entry"),
        ("migrate", "convert the store layout in place"),
    ):
        sub = cache_commands.add_parser(sub_name, help=sub_help)
        sub.add_argument("--cache-dir", required=True,
                         help="the GraphStore directory to manage")
        sub.add_argument("--json", action="store_true",
                         help="dump the result as JSON")
        if sub_name == "stats":
            sub.add_argument("--remote",
                             help="read through the store daemon on this "
                                  "unix socket (adds its per-client "
                                  "request/byte meters to the report)")
        if sub_name == "prune":
            sub.add_argument("--max-bytes", type=int,
                             help="keep at most this many bytes of entries")
            sub.add_argument("--max-entries", type=int,
                             help="keep at most this many cached keys")
        if sub_name == "migrate":
            sub.add_argument("--to", required=True,
                             choices=("packed", "json"),
                             help="target on-disk layout")
        sub.set_defaults(fn=_cmd_cache)

    lint = commands.add_parser(
        "lint", help="lint the source tree against the repo's invariants"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(fn=_cmd_lint)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
