"""AST node model.

Queries are represented the way Section 4.1 of the paper describes: each
node has a *type* (``SelectStmt``, ``ProjClause``, ``BiExpr``, ...), a set of
attribute/value pairs (``op: '='``), and an ordered list of children.

Nodes are treated as immutable once built: all "mutation" helpers
(:meth:`Node.replace_at`, :meth:`Node.delete_at`, :meth:`Node.insert_at`)
return new trees that share unmodified subtrees with the original.  This
makes structural fingerprints safe to cache, which is the property the
diffing and closure machinery lean on for speed.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.errors import PathError
from repro.paths import Path

__all__ = ["Node", "MISSING_LITERAL"]


class _MissingLiteral:
    """Sentinel for a literal leaf whose value attribute is absent.

    Distinct from every real value (including ``None``), so the
    :class:`~repro.treediff.memo.DiffMemo` literal pattern never conflates
    "no value attribute" with "value is None" — the two are unequal nodes.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<missing literal>"


#: See :class:`_MissingLiteral`.
MISSING_LITERAL = _MissingLiteral()


class Node:
    """One AST node.

    Args:
        node_type: grammar symbol, e.g. ``"BiExpr"``.
        attributes: attribute/value pairs; values must be hashable.
        children: ordered child nodes.
    """

    __slots__ = (
        "node_type",
        "attributes",
        "children",
        "_fingerprint",
        "_size",
        "_skeleton",
        "_literals",
    )

    def __init__(
        self,
        node_type: str,
        attributes: Mapping[str, object] | None = None,
        children: Sequence["Node"] | None = None,
    ):
        self.node_type = node_type
        self.attributes: dict[str, object] = dict(attributes or {})
        self.children: tuple[Node, ...] = tuple(children or ())
        self._fingerprint: int | None = None
        self._size: int | None = None
        self._skeleton: int | None = None
        self._literals: tuple | None = None

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle without the cached fingerprint/size.

        ``fingerprint`` is built on ``hash()``, whose string salt differs
        per process; shipping the cache across a process boundary (the
        sharded ``generate_many`` workers) would poison ``equals``/``__hash__``
        in the receiving process.  Both caches rebuild lazily on demand.
        """
        return (self.node_type, self.attributes, self.children)

    def __setstate__(self, state) -> None:
        self.node_type, self.attributes, self.children = state
        self._fingerprint = None
        self._size = None
        self._skeleton = None
        self._literals = None

    # ------------------------------------------------------------------
    # structural identity
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> int:
        """A structural hash: equal for structurally equal subtrees."""
        if self._fingerprint is None:
            attr_items = tuple(sorted(self.attributes.items()))
            child_prints = tuple(c.fingerprint for c in self.children)
            self._fingerprint = hash((self.node_type, attr_items, child_prints))
        return self._fingerprint

    @property
    def skeleton(self) -> int:
        """A literal-normalised structural hash — the subtree's *template
        shape*.

        Two subtrees share a skeleton when they have the same structure,
        node types, and operator heads but may differ in literal *values*:
        a bare literal leaf (``NumExpr(5)``, ``ColExpr(sales)``, ...)
        contributes only its node type and its ``classify_change`` kind,
        with the value attribute abstracted away.  Template-repetitive
        logs — thousands of queries differing only in literals — collapse
        to a handful of skeletons, which is what the
        :class:`~repro.treediff.memo.DiffMemo` keys its alignment plans
        on.

        Like :attr:`fingerprint`, the hash is computed bottom-up, cached,
        and process-salted (never persist the raw value).  The literal
        classification is the default SQL grammar's
        (:data:`~repro.sqlparser.grammar.SQL_ANNOTATIONS`); consumers
        running custom annotations must not key on skeletons.
        """
        if self._skeleton is None:
            # deferred import: grammar imports this module at load time
            from repro.sqlparser.grammar import SQL_ANNOTATIONS

            kind = None if self.children else SQL_ANNOTATIONS.literal_types.get(
                self.node_type
            )
            if kind is not None:
                value_attr = SQL_ANNOTATIONS.value_attributes.get(
                    self.node_type, "value"
                )
                attr_items = tuple(
                    sorted(
                        item
                        for item in self.attributes.items()
                        if item[0] != value_attr
                    )
                )
                self._skeleton = hash(("$lit", self.node_type, attr_items, kind))
            else:
                attr_items = tuple(sorted(self.attributes.items()))
                child_skeletons = tuple(c.skeleton for c in self.children)
                self._skeleton = hash((self.node_type, attr_items, child_skeletons))
        return self._skeleton

    @property
    def literal_values(self) -> tuple:
        """The values this subtree's skeleton abstracted, in preorder.

        One entry per bare literal leaf: the leaf's value attribute (or
        :data:`MISSING_LITERAL` when the attribute is absent, so a leaf
        lacking its value never pattern-matches one carrying ``None``).
        Together with :attr:`skeleton` this is a lossless split of the
        subtree for diff purposes: skeleton + literal values determine
        every equality the tree aligner can observe.
        """
        if self._literals is None:
            from repro.sqlparser.grammar import SQL_ANNOTATIONS

            values = []
            for node in self.preorder():
                if node.children:
                    continue
                if node.node_type in SQL_ANNOTATIONS.literal_types:
                    attr = SQL_ANNOTATIONS.value_attributes.get(
                        node.node_type, "value"
                    )
                    values.append(node.attributes.get(attr, MISSING_LITERAL))
            self._literals = tuple(values)
        return self._literals

    def equals(self, other: "Node") -> bool:
        """Deep structural equality."""
        if self is other:
            return True
        if (
            self.fingerprint != other.fingerprint
            or self.node_type != other.node_type
            or self.attributes != other.attributes
            or len(self.children) != len(other.children)
        ):
            return False
        return all(a.equals(b) for a, b in zip(self.children, other.children))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.equals(other)

    def __hash__(self) -> int:
        return self.fingerprint

    # ------------------------------------------------------------------
    # shape metrics
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes in this subtree."""
        if self._size is None:
            self._size = 1 + sum(c.size for c in self.children)
        return self._size

    @property
    def depth(self) -> int:
        """Height of this subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(c.depth for c in self.children)

    @property
    def n_leaves(self) -> int:
        """Number of leaves in this subtree."""
        if not self.children:
            return 1
        return sum(c.n_leaves for c in self.children)

    def is_leaf(self) -> bool:
        return not self.children

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def preorder(self) -> Iterator["Node"]:
        """Yield nodes in preorder (self first)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def walk_with_paths(self, prefix: Path | None = None) -> Iterator[tuple[Path, "Node"]]:
        """Yield ``(path, node)`` pairs in preorder; the root has the empty
        path (or ``prefix`` when given)."""
        root_path = prefix if prefix is not None else Path.root()
        stack: list[tuple[Path, Node]] = [(root_path, self)]
        while stack:
            path, node = stack.pop()
            yield path, node
            for index in range(len(node.children) - 1, -1, -1):
                stack.append((path.child(index), node.children[index]))

    # ------------------------------------------------------------------
    # path addressing
    # ------------------------------------------------------------------
    def get(self, path: Path) -> "Node":
        """Return the node addressed by ``path`` (root for the empty path).

        Raises:
            PathError: when the path walks off the tree.
        """
        node = self
        for step in path.steps:
            if step >= len(node.children):
                raise PathError(f"path {path} does not resolve in {self.node_type} tree")
            node = node.children[step]
        return node

    def has_path(self, path: Path) -> bool:
        """True when ``path`` resolves inside this tree."""
        node = self
        for step in path.steps:
            if step >= len(node.children):
                return False
            node = node.children[step]
        return True

    def replace_at(self, path: Path, subtree: "Node") -> "Node":
        """Return a new tree with the node at ``path`` replaced by ``subtree``."""
        if path.is_root():
            return subtree
        return self._rebuild(path.steps, lambda _old: subtree)

    def delete_at(self, path: Path) -> "Node":
        """Return a new tree with the node at ``path`` removed from its parent.

        Raises:
            PathError: when asked to delete the root or a missing node.
        """
        if path.is_root():
            raise PathError("cannot delete the root node")
        parent_steps, index = path.steps[:-1], path.steps[-1]

        def edit_parent(parent: Node) -> Node:
            if index >= len(parent.children):
                raise PathError(f"no child {index} to delete at {path}")
            kids = parent.children[:index] + parent.children[index + 1:]
            return Node(parent.node_type, parent.attributes, kids)

        if not parent_steps:
            return edit_parent(self)
        return self._rebuild(parent_steps, edit_parent)

    def insert_at(self, parent_path: Path, index: int, subtree: "Node") -> "Node":
        """Return a new tree with ``subtree`` inserted as child ``index`` of
        the node at ``parent_path``.  ``index`` may equal the child count
        (append)."""

        def edit_parent(parent: Node) -> Node:
            if index > len(parent.children):
                raise PathError(
                    f"insert index {index} out of range at {parent_path}"
                )
            kids = parent.children[:index] + (subtree,) + parent.children[index:]
            return Node(parent.node_type, parent.attributes, kids)

        if parent_path.is_root():
            return edit_parent(self)
        return self._rebuild(parent_path.steps, edit_parent)

    def _rebuild(self, steps: tuple[int, ...], edit) -> "Node":
        """Rebuild the spine down ``steps`` and apply ``edit`` to the target."""
        if not steps:
            return edit(self)
        head, rest = steps[0], steps[1:]
        if head >= len(self.children):
            raise PathError(f"path step {head} out of range in {self.node_type}")
        new_child = self.children[head]._rebuild(rest, edit)
        kids = self.children[:head] + (new_child,) + self.children[head + 1:]
        return Node(self.node_type, self.attributes, kids)

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def label(self) -> str:
        """Short human-readable label, e.g. ``BiExpr(op==)``."""
        if self.attributes:
            inner = ",".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
            return f"{self.node_type}({inner})"
        return self.node_type

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented rendering of the subtree."""
        lines = ["  " * indent + self.label()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node<{self.label()}, {len(self.children)} children>"
