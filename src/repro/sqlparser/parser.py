"""Recursive-descent SQL parser.

Produces the AST node vocabulary documented in :mod:`repro.sqlparser.grammar`.
The dialect is a pragmatic union of the constructs found in the paper's
three query logs:

* SDSS SkyServer (T-SQL flavoured): ``SELECT TOP n``, hex literals,
  schema-qualified UDF table functions (``dbo.fGetNearbyObjEq(...)``),
  multi-table FROM with aliases;
* synthetic OLAP queries: aggregates, ``GROUP BY``, conjunctive filters;
* Tableau-style ad-hoc queries: ``CASE WHEN``, ``CAST``, arithmetic,
  ``HAVING`` without ``GROUP BY``, ``FLOOR(distance/5)``.

Conjunctions and disjunctions are *flattened*: ``a AND b AND c`` parses to a
single ``AndExpr`` collection node with three children.  This matches the
paper's treatment of clause bodies as collections and makes add/remove
predicate transformations show up as clean insert/delete diffs.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sqlparser.astnodes import Node
from repro.sqlparser.tokens import Token, TokenKind, tokenize

__all__ = ["Parser", "parse_sql", "parse_many"]

# Comparison operators that become BiExpr nodes.
_COMPARISON_OPS = {"=", "<>", "!=", "<", ">", "<=", ">="}
_ADDITIVE_OPS = {"+", "-", "||"}
_MULTIPLICATIVE_OPS = {"*", "/", "%"}
_JOIN_KEYWORDS = ("JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS")


def _num_node(text: str) -> Node:
    """Build a NumExpr from numeric literal text, normalising the value."""
    if any(ch in text for ch in ".eE"):
        value: object = float(text)
    else:
        value = int(text)
    return Node("NumExpr", {"value": value})


def _hex_node(text: str) -> Node:
    return Node("HexExpr", {"value": int(text, 16), "text": text.lower()})


class Parser:
    """One-shot parser over a token list.

    Use :func:`parse_sql` for the common case::

        ast = parse_sql("SELECT a FROM t WHERE b > 10")
    """

    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # ------------------------------------------------------------------
    # token-stream helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, *words: str) -> Token | None:
        if self._peek().is_keyword(*words):
            return self._advance()
        return None

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise SQLSyntaxError(
                f"expected {word}, found {token.value!r}", self._sql, token.position
            )
        return self._advance()

    def _accept(self, kind: TokenKind, value: str | None = None) -> Token | None:
        token = self._peek()
        if token.kind is kind and (value is None or token.value == value):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: str | None = None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            found = self._peek()
            want = value if value is not None else kind.name
            raise SQLSyntaxError(
                f"expected {want}, found {found.value!r}", self._sql, found.position
            )
        return token

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def parse_statement(self) -> Node:
        """Parse a full statement (SELECT, possibly a UNION chain)."""
        stmt = self._parse_set_expression()
        self._accept(TokenKind.SEMICOLON)
        trailing = self._peek()
        if trailing.kind is not TokenKind.EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input {trailing.value!r}",
                self._sql,
                trailing.position,
            )
        return stmt

    def _parse_set_expression(self) -> Node:
        left = self._parse_select()
        while True:
            if self._accept_keyword("UNION"):
                op = "UNION ALL" if self._accept_keyword("ALL") else "UNION"
            elif self._accept_keyword("EXCEPT"):
                op = "EXCEPT"
            elif self._accept_keyword("INTERSECT"):
                op = "INTERSECT"
            else:
                return left
            right = self._parse_select()
            left = Node("SetOpStmt", {"op": op}, [left, right])

    # ------------------------------------------------------------------
    # SELECT statement
    # ------------------------------------------------------------------
    def _parse_select(self) -> Node:
        """Parse one SELECT core with its clauses.

        Children are the *present* clauses in canonical order:
        ``Project, From?, Where?, GroupBy?, Having?, OrderBy?, Limit?,
        Top?, Distinct?``.

        The optional row-limit and distinct markers come *last* so that
        toggling them (the Listing 6 "add a TOP clause" analysis) does not
        shift the paths of the other clauses — path stability is what lets
        one widget express the same transformation across the whole log.
        """
        self._expect_keyword("SELECT")
        top: Node | None = None
        distinct: Node | None = None

        if self._accept_keyword("TOP"):
            top = Node("Top", {}, [self._parse_limit_number()])
        if self._accept_keyword("DISTINCT"):
            distinct = Node("Distinct")
        else:
            self._accept_keyword("ALL")

        clauses: list[Node] = [self._parse_project()]

        if self._accept_keyword("FROM"):
            clauses.append(self._parse_from())
        if self._accept_keyword("WHERE"):
            clauses.append(Node("Where", {}, [self._parse_condition()]))
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            clauses.append(self._parse_group_by())
        if self._accept_keyword("HAVING"):
            clauses.append(Node("Having", {}, [self._parse_condition()]))
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            clauses.append(self._parse_order_by())
        if self._accept_keyword("LIMIT"):
            limit_children = [self._parse_limit_number()]
            if self._accept_keyword("OFFSET"):
                limit_children.append(self._parse_limit_number())
            clauses.append(Node("Limit", {}, limit_children))
        if top is not None:
            clauses.append(top)
        if distinct is not None:
            clauses.append(distinct)

        return Node("SelectStmt", {}, clauses)

    def _parse_condition(self) -> Node:
        """Parse a WHERE/HAVING body, normalising the top level to an
        ``AndExpr`` collection.

        A single predicate becomes a one-child ``AndExpr`` so that adding a
        second conjunct later is an *insertion* into a stable collection
        rather than a replacement of the whole clause body.
        """
        expr = self._parse_expr()
        if expr.node_type == "AndExpr":
            return expr
        return Node("AndExpr", {}, [expr])

    def _parse_limit_number(self) -> Node:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return _num_node(token.value)
        if token.kind is TokenKind.HEXNUMBER:
            self._advance()
            return _hex_node(token.value)
        raise SQLSyntaxError(
            f"expected a number, found {token.value!r}", self._sql, token.position
        )

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------
    def _parse_project(self) -> Node:
        items = [self._parse_proj_clause()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_proj_clause())
        return Node("Project", {}, items)

    def _parse_proj_clause(self) -> Node:
        expr = self._parse_expr()
        children = [expr]
        alias = self._parse_optional_alias()
        if alias is not None:
            children.append(Node("AliasName", {"name": alias}))
        return Node("ProjClause", {}, children)

    def _parse_optional_alias(self) -> str | None:
        if self._accept_keyword("AS"):
            token = self._peek()
            if token.kind is TokenKind.IDENT:
                self._advance()
                return token.value
            raise SQLSyntaxError(
                f"expected alias after AS, found {token.value!r}",
                self._sql,
                token.position,
            )
        token = self._peek()
        if token.kind is TokenKind.IDENT:
            self._advance()
            return token.value
        return None

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------
    def _parse_from(self) -> Node:
        items = [self._parse_join_chain()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_join_chain())
        return Node("From", {}, items)

    def _parse_join_chain(self) -> Node:
        left = self._parse_from_item()
        while self._peek().is_keyword(*_JOIN_KEYWORDS):
            join_type = self._parse_join_type()
            right = self._parse_from_item()
            children = [left, right]
            if self._accept_keyword("ON"):
                children.append(Node("OnClause", {}, [self._parse_expr()]))
            left = Node("JoinRef", {"join_type": join_type}, children)
        return left

    def _parse_join_type(self) -> str:
        token = self._advance()
        kind = token.value
        if kind == "JOIN":
            return "INNER"
        if kind in ("LEFT", "RIGHT", "FULL"):
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return kind
        if kind in ("INNER", "CROSS"):
            self._expect_keyword("JOIN")
            return kind
        raise SQLSyntaxError(  # pragma: no cover - guarded by caller
            f"bad join keyword {kind!r}", self._sql, token.position
        )

    def _parse_from_item(self) -> Node:
        if self._accept(TokenKind.LPAREN):
            inner = self._parse_set_expression()
            self._expect(TokenKind.RPAREN)
            alias = self._parse_optional_alias()
            attrs = {"alias": alias} if alias else {}
            return Node("SubqueryRef", attrs, [inner])

        name = self._parse_qualified_name()
        if self._peek().kind is TokenKind.LPAREN:
            # UDF table function, e.g. dbo.fGetNearbyObjEq(5.8, 0.3, 2.0)
            args = self._parse_call_args()
            alias = self._parse_optional_alias()
            attrs = {"alias": alias} if alias else {}
            children = [Node("FuncName", {"name": name})] + args
            return Node("FuncTableRef", attrs, children)
        alias = self._parse_optional_alias()
        attrs: dict[str, object] = {"name": name}
        if alias:
            attrs["alias"] = alias
        return Node("TableRef", attrs)

    def _parse_qualified_name(self) -> str:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise SQLSyntaxError(
                f"expected name, found {token.value!r}", self._sql, token.position
            )
        self._advance()
        parts = [token.value]
        while self._peek().kind is TokenKind.DOT:
            self._advance()
            nxt = self._peek()
            if nxt.kind is TokenKind.IDENT:
                self._advance()
                parts.append(nxt.value)
            elif nxt.kind is TokenKind.STAR:
                self._advance()
                parts.append("*")
            else:
                raise SQLSyntaxError(
                    f"expected name after '.', found {nxt.value!r}",
                    self._sql,
                    nxt.position,
                )
        return ".".join(parts)

    # ------------------------------------------------------------------
    # GROUP BY / ORDER BY
    # ------------------------------------------------------------------
    def _parse_group_by(self) -> Node:
        items = [Node("GroupClause", {}, [self._parse_expr()])]
        while self._accept(TokenKind.COMMA):
            items.append(Node("GroupClause", {}, [self._parse_expr()]))
        return Node("GroupBy", {}, items)

    def _parse_order_by(self) -> Node:
        items = [self._parse_order_clause()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_order_clause())
        return Node("OrderBy", {}, items)

    def _parse_order_clause(self) -> Node:
        expr = self._parse_expr()
        children = [expr]
        if self._accept_keyword("ASC"):
            children.append(Node("SortDir", {"value": "ASC"}))
        elif self._accept_keyword("DESC"):
            children.append(Node("SortDir", {"value": "DESC"}))
        return Node("OrderClause", {}, children)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expr(self) -> Node:
        return self._parse_or()

    def _parse_or(self) -> Node:
        terms = [self._parse_and()]
        while self._accept_keyword("OR"):
            terms.append(self._parse_and())
        if len(terms) == 1:
            return terms[0]
        return Node("OrExpr", {}, terms)

    def _parse_and(self) -> Node:
        terms = [self._parse_not()]
        while self._accept_keyword("AND"):
            terms.append(self._parse_not())
        if len(terms) == 1:
            return terms[0]
        return Node("AndExpr", {}, terms)

    def _parse_not(self) -> Node:
        if self._accept_keyword("NOT"):
            return Node("NotExpr", {}, [self._parse_not()])
        return self._parse_predicate()

    def _parse_predicate(self) -> Node:
        left = self._parse_additive()
        token = self._peek()

        if token.kind is TokenKind.OPERATOR and token.value in _COMPARISON_OPS:
            self._advance()
            op = "<>" if token.value == "!=" else token.value
            right = self._parse_additive()
            return Node("BiExpr", {"op": op}, [left, right])

        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Node("BetweenExpr", {}, [left, low, high])

        if token.is_keyword("LIKE"):
            self._advance()
            right = self._parse_additive()
            return Node("BiExpr", {"op": "LIKE"}, [left, right])

        if token.is_keyword("IN"):
            self._advance()
            return self._parse_in_rhs(left)

        if token.is_keyword("NOT"):
            # NOT as an infix: `x NOT IN (...)`, `x NOT LIKE y`, `x NOT BETWEEN`
            nxt = self._peek(1)
            if nxt.is_keyword("IN", "LIKE", "BETWEEN"):
                self._advance()
                inner = self._parse_negatable_rhs(left)
                return Node("NotExpr", {}, [inner])

        if token.is_keyword("IS"):
            self._advance()
            negated = bool(self._accept_keyword("NOT"))
            self._expect_keyword("NULL")
            return Node("IsNullExpr", {"negated": negated}, [left])

        return left

    def _parse_negatable_rhs(self, left: Node) -> Node:
        token = self._advance()
        if token.value == "IN":
            return self._parse_in_rhs(left)
        if token.value == "LIKE":
            right = self._parse_additive()
            return Node("BiExpr", {"op": "LIKE"}, [left, right])
        low = self._parse_additive()
        self._expect_keyword("AND")
        high = self._parse_additive()
        return Node("BetweenExpr", {}, [left, low, high])

    def _parse_in_rhs(self, left: Node) -> Node:
        self._expect(TokenKind.LPAREN)
        if self._peek().is_keyword("SELECT"):
            inner = self._parse_set_expression()
            self._expect(TokenKind.RPAREN)
            return Node("InExpr", {}, [left, inner])
        items = [self._parse_expr()]
        while self._accept(TokenKind.COMMA):
            items.append(self._parse_expr())
        self._expect(TokenKind.RPAREN)
        return Node("InExpr", {}, [left, Node("InList", {}, items)])

    def _parse_additive(self) -> Node:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.kind is TokenKind.OPERATOR and token.value in _ADDITIVE_OPS:
                self._advance()
                right = self._parse_multiplicative()
                left = Node("BiExpr", {"op": token.value}, [left, right])
            else:
                return left

    def _parse_multiplicative(self) -> Node:
        left = self._parse_unary()
        while True:
            token = self._peek()
            is_mul = (
                token.kind is TokenKind.OPERATOR and token.value in _MULTIPLICATIVE_OPS
            ) or token.kind is TokenKind.STAR
            if is_mul:
                op = "*" if token.kind is TokenKind.STAR else token.value
                self._advance()
                right = self._parse_unary()
                left = Node("BiExpr", {"op": op}, [left, right])
            else:
                return left

    def _parse_unary(self) -> Node:
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.value in ("-", "+"):
            self._advance()
            operand = self._parse_unary()
            if token.value == "+":
                return operand
            if operand.node_type == "NumExpr" and not operand.children:
                value = operand.attributes["value"]
                return Node("NumExpr", {"value": -value})  # type: ignore[operator]
            return Node("UnaryExpr", {"op": "-"}, [operand])
        return self._parse_primary()

    # ------------------------------------------------------------------
    # primary expressions
    # ------------------------------------------------------------------
    def _parse_primary(self) -> Node:
        token = self._peek()

        if token.kind is TokenKind.NUMBER:
            self._advance()
            return _num_node(token.value)
        if token.kind is TokenKind.HEXNUMBER:
            self._advance()
            return _hex_node(token.value)
        if token.kind is TokenKind.STRING:
            self._advance()
            return Node("StrExpr", {"value": token.value})
        if token.kind is TokenKind.STAR:
            self._advance()
            return Node("StarExpr")
        if token.is_keyword("NULL"):
            self._advance()
            return Node("NullExpr")
        if token.is_keyword("TRUE", "FALSE"):
            self._advance()
            return Node("BoolExpr", {"value": token.value})
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("EXISTS"):
            self._advance()
            self._expect(TokenKind.LPAREN)
            inner = self._parse_set_expression()
            self._expect(TokenKind.RPAREN)
            return Node("ExistsExpr", {}, [inner])
        if token.kind is TokenKind.LPAREN:
            self._advance()
            if self._peek().is_keyword("SELECT"):
                inner = self._parse_set_expression()
                self._expect(TokenKind.RPAREN)
                return Node("ScalarSubquery", {}, [inner])
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if token.kind is TokenKind.IDENT:
            name = self._parse_qualified_name()
            if self._peek().kind is TokenKind.LPAREN:
                args = self._parse_call_args()
                children = [Node("FuncName", {"name": name})] + args
                return Node("FuncExpr", {}, children)
            return Node("ColExpr", {"name": name})

        raise SQLSyntaxError(
            f"unexpected token {token.value!r}", self._sql, token.position
        )

    def _parse_call_args(self) -> list[Node]:
        """Parse a parenthesised argument list (already positioned at '(')."""
        self._expect(TokenKind.LPAREN)
        if self._accept(TokenKind.RPAREN):
            return []
        distinct = bool(self._accept_keyword("DISTINCT"))
        args = [self._parse_expr()]
        while self._accept(TokenKind.COMMA):
            args.append(self._parse_expr())
        self._expect(TokenKind.RPAREN)
        if distinct:
            return [Node("Distinct")] + args
        return args

    def _parse_case(self) -> Node:
        self._expect_keyword("CASE")
        children: list[Node] = []
        if not self._peek().is_keyword("WHEN"):
            children.append(Node("CaseInput", {}, [self._parse_expr()]))
        while self._accept_keyword("WHEN"):
            cond = self._parse_expr()
            self._expect_keyword("THEN")
            result = self._parse_expr()
            children.append(Node("WhenClause", {}, [cond, result]))
        if self._accept_keyword("ELSE"):
            children.append(Node("ElseClause", {}, [self._parse_expr()]))
        self._expect_keyword("END")
        return Node("CaseExpr", {}, children)

    def _parse_cast(self) -> Node:
        self._expect_keyword("CAST")
        self._expect(TokenKind.LPAREN)
        expr = self._parse_expr()
        children = [expr]
        if self._accept_keyword("AS"):
            token = self._peek()
            if token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                raise SQLSyntaxError(
                    f"expected type name, found {token.value!r}",
                    self._sql,
                    token.position,
                )
            self._advance()
            type_name = token.value
            # parametrised types, e.g. VARCHAR(32)
            if self._peek().kind is TokenKind.LPAREN:
                self._advance()
                size = self._expect(TokenKind.NUMBER)
                self._expect(TokenKind.RPAREN)
                type_name = f"{type_name}({size.value})"
            children.append(Node("TypeName", {"name": type_name}))
        self._expect(TokenKind.RPAREN)
        return Node("CastExpr", {}, children)


def parse_sql(sql: str) -> Node:
    """Parse one SQL statement into an AST.

    Raises:
        SQLSyntaxError: when the statement cannot be parsed.
    """
    return Parser(sql).parse_statement()


def parse_many(statements: list[str]) -> list[Node]:
    """Parse a list of statements, preserving order."""
    return [parse_sql(sql) for sql in statements]
