"""Grammar annotations.

Section 4.1 of the paper assumes two pieces of per-language metadata on top
of the raw grammar:

1. a mapping from *terminal node types* to primitive data types (``StrExpr``
   is a string literal, ``NumExpr`` an integer/float, ...), because widgets
   such as sliders are typed; and
2. the set of node types that represent *collections* of sub-expressions
   (``Project`` is a list of ``ProjClause`` nodes), because widgets such as
   checkbox lists model collections.

This module holds those annotations for our SQL dialects.  The annotations
are a plain data object so a different language (SPARQL, a pandas-call AST,
...) could register its own without touching the mining code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GrammarError
from repro.sqlparser.astnodes import Node

__all__ = [
    "ValueKind",
    "GrammarAnnotations",
    "SQL_ANNOTATIONS",
    "subtree_kind",
]

#: The three value kinds the paper's widget rules distinguish (Section 4.3):
#: numbers cast to strings, and anything casts to a tree.
ValueKind = str  # one of "num", "str", "tree"

NUM = "num"
STR = "str"
TREE = "tree"


@dataclass(frozen=True)
class GrammarAnnotations:
    """Per-language grammar metadata.

    Attributes:
        literal_types: node type -> primitive kind ("num" or "str") for
            terminal node types whose *value attribute* carries the literal.
        value_attributes: node type -> name of the attribute holding the
            literal value (defaults to ``"value"``).
        collection_types: node types whose children form an ordered
            collection of homogeneous sub-expressions.
        statement_types: node types that are complete, executable statements.
    """

    literal_types: dict[str, ValueKind] = field(default_factory=dict)
    value_attributes: dict[str, str] = field(default_factory=dict)
    collection_types: frozenset[str] = frozenset()
    statement_types: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        overlap = set(self.literal_types) & set(self.collection_types)
        if overlap:
            raise GrammarError(
                f"node types registered as both literal and collection: {overlap}"
            )
        for node_type, kind in self.literal_types.items():
            if kind not in (NUM, STR):
                raise GrammarError(
                    f"literal type for {node_type} must be 'num' or 'str', got {kind!r}"
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def kind_of(self, node: Node) -> ValueKind:
        """Classify a subtree as ``"num"``, ``"str"`` or ``"tree"``.

        A subtree is a literal only when its *root* is a literal node type
        and it has no children (a bare terminal).
        """
        if not node.children:
            kind = self.literal_types.get(node.node_type)
            if kind is not None:
                return kind
        return TREE

    def is_literal(self, node: Node) -> bool:
        return self.kind_of(node) != TREE

    def is_collection(self, node_type: str) -> bool:
        return node_type in self.collection_types

    def is_statement(self, node_type: str) -> bool:
        return node_type in self.statement_types

    def literal_value(self, node: Node) -> object:
        """Extract the literal value carried by a terminal node.

        Raises:
            GrammarError: when the node type is not a registered literal.
        """
        if node.node_type not in self.literal_types:
            raise GrammarError(f"{node.node_type} is not a literal node type")
        attr = self.value_attributes.get(node.node_type, "value")
        if attr not in node.attributes:
            raise GrammarError(
                f"literal node {node.node_type} lacks value attribute {attr!r}"
            )
        return node.attributes[attr]

    def numeric_value(self, node: Node) -> float:
        """Extract a numeric literal's value as a float.

        Raises:
            GrammarError: when the node is not a numeric literal.
        """
        if self.kind_of(node) != NUM:
            raise GrammarError(f"{node.label()} is not a numeric literal")
        value = self.literal_value(node)
        if isinstance(value, (int, float)):
            return float(value)
        return float(str(value))


#: Annotations for the SQL dialect produced by :mod:`repro.sqlparser.parser`.
SQL_ANNOTATIONS = GrammarAnnotations(
    literal_types={
        # numeric terminals
        "NumExpr": NUM,
        "HexExpr": NUM,
        # string-ish terminals.  Following Table 1 in the paper, a column
        # reference change (ColExpr(sales) -> ColExpr(costs)) is typed "str".
        "StrExpr": STR,
        "ColExpr": STR,
        "FuncName": STR,
        "TableRef": STR,
        "AliasName": STR,
        "TypeName": STR,
        "BoolExpr": STR,
        "SortDir": STR,
    },
    value_attributes={
        "NumExpr": "value",
        "HexExpr": "value",
        "StrExpr": "value",
        "ColExpr": "name",
        "FuncName": "name",
        "TableRef": "name",
        "AliasName": "name",
        "TypeName": "name",
        "BoolExpr": "value",
        "SortDir": "value",
    },
    collection_types=frozenset(
        {"Project", "From", "GroupBy", "OrderBy", "AndExpr", "OrExpr", "InList"}
    ),
    statement_types=frozenset({"SelectStmt", "SetOpStmt"}),
)


def subtree_kind(node: Node) -> ValueKind:
    """Convenience wrapper over the default SQL annotations."""
    return SQL_ANNOTATIONS.kind_of(node)
