"""SQL lexer.

Turns query text into a flat list of :class:`Token` objects consumed by the
recursive-descent parser in :mod:`repro.sqlparser.parser`.

The lexer covers the SQL surface exercised by the paper's three query logs
(SDSS SkyServer T-SQL flavoured queries, synthetic OLAP queries over the
OnTime schema, and Tableau-generated ad-hoc queries):

* identifiers, optionally qualified (``dbo.fGetNearbyObjEq``, ``g.objID``)
  and optionally quoted with double quotes, backticks or brackets;
* string literals in single quotes with ``''`` escaping;
* numeric literals: integers, decimals, scientific notation;
* hexadecimal literals (``0x400``) — prominent in the SDSS log;
* operators, including multi-character comparison operators;
* line (``--``) and block (``/* */``) comments, which are skipped.

Keywords are recognised case-insensitively and reported with a dedicated
token kind so the parser does not need to re-compare strings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SQLSyntaxError

__all__ = ["TokenKind", "Token", "Lexer", "tokenize", "KEYWORDS"]


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    HEXNUMBER = "hexnumber"
    OPERATOR = "operator"
    LPAREN = "lparen"
    RPAREN = "rparen"
    COMMA = "comma"
    DOT = "dot"
    SEMICOLON = "semicolon"
    STAR = "star"
    EOF = "eof"


#: Reserved words recognised by the lexer.  ``TOP`` and ``LIMIT`` are both
#: present because the SDSS log uses T-SQL syntax while the OLAP/ad-hoc logs
#: use the SQLite flavour.
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "LIMIT", "OFFSET", "TOP", "DISTINCT", "ALL", "AS", "AND", "OR",
        "NOT", "IN", "IS", "NULL", "LIKE", "BETWEEN", "CASE", "WHEN",
        "THEN", "ELSE", "END", "CAST", "JOIN", "INNER", "LEFT", "RIGHT",
        "FULL", "OUTER", "CROSS", "ON", "UNION", "EXCEPT", "INTERSECT",
        "ASC", "DESC", "EXISTS", "TRUE", "FALSE",
    }
)

#: Multi-character operators, longest first so that maximal munch works.
_MULTI_OPS = ("<>", "!=", ">=", "<=", "||")
_SINGLE_OPS = set("+-*/%=<>")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        kind: the lexical category.
        value: the token text.  Keywords are upper-cased; identifier case is
            preserved; string tokens hold the *unquoted, unescaped* value.
        position: character offset of the first character in the input.
    """

    kind: TokenKind
    value: str
    position: int

    def is_keyword(self, *words: str) -> bool:
        """Return True when this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}@{self.position})"


class Lexer:
    """Stateful scanner over a SQL string.

    Typical use is via the module-level :func:`tokenize` helper::

        tokens = tokenize("SELECT * FROM t")
    """

    def __init__(self, sql: str):
        self._sql = sql
        self._pos = 0
        self._n = len(sql)

    def tokens(self) -> list[Token]:
        """Scan the entire input and return the token list (EOF-terminated)."""
        out: list[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.kind is TokenKind.EOF:
                return out

    # ------------------------------------------------------------------
    # scanning internals
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < self._n:
            return self._sql[index]
        return ""

    def _skip_trivia(self) -> None:
        """Advance past whitespace and comments."""
        while self._pos < self._n:
            ch = self._sql[self._pos]
            if ch.isspace():
                self._pos += 1
            elif ch == "-" and self._peek(1) == "-":
                while self._pos < self._n and self._sql[self._pos] != "\n":
                    self._pos += 1
            elif ch == "/" and self._peek(1) == "*":
                end = self._sql.find("*/", self._pos + 2)
                if end < 0:
                    raise SQLSyntaxError(
                        "unterminated block comment", self._sql, self._pos
                    )
                self._pos = end + 2
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        start = self._pos
        if self._pos >= self._n:
            return Token(TokenKind.EOF, "", start)
        ch = self._sql[self._pos]

        if ch == "(":
            self._pos += 1
            return Token(TokenKind.LPAREN, "(", start)
        if ch == ")":
            self._pos += 1
            return Token(TokenKind.RPAREN, ")", start)
        if ch == ",":
            self._pos += 1
            return Token(TokenKind.COMMA, ",", start)
        if ch == ";":
            self._pos += 1
            return Token(TokenKind.SEMICOLON, ";", start)
        if ch == "'":
            return self._scan_string(start)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._scan_number(start)
        if ch.isalpha() or ch == "_":
            return self._scan_word(start)
        if ch in ('"', "`", "["):
            return self._scan_quoted_ident(start)
        if ch == ".":
            self._pos += 1
            return Token(TokenKind.DOT, ".", start)
        for op in _MULTI_OPS:
            if self._sql.startswith(op, self._pos):
                self._pos += len(op)
                return Token(TokenKind.OPERATOR, op, start)
        if ch == "*":
            self._pos += 1
            return Token(TokenKind.STAR, "*", start)
        if ch in _SINGLE_OPS:
            self._pos += 1
            return Token(TokenKind.OPERATOR, ch, start)
        raise SQLSyntaxError(f"unexpected character {ch!r}", self._sql, start)

    def _scan_string(self, start: int) -> Token:
        """Scan a single-quoted string literal with ``''`` escapes."""
        self._pos += 1  # opening quote
        parts: list[str] = []
        while self._pos < self._n:
            ch = self._sql[self._pos]
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    parts.append("'")
                    self._pos += 2
                    continue
                self._pos += 1
                return Token(TokenKind.STRING, "".join(parts), start)
            parts.append(ch)
            self._pos += 1
        raise SQLSyntaxError("unterminated string literal", self._sql, start)

    def _scan_number(self, start: int) -> Token:
        if self._sql.startswith(("0x", "0X"), self._pos):
            self._pos += 2
            while self._pos < self._n and self._sql[self._pos] in "0123456789abcdefABCDEF":
                self._pos += 1
            text = self._sql[start:self._pos]
            if len(text) == 2:
                raise SQLSyntaxError("malformed hex literal", self._sql, start)
            return Token(TokenKind.HEXNUMBER, text, start)
        seen_dot = False
        seen_exp = False
        while self._pos < self._n:
            ch = self._sql[self._pos]
            if ch.isdigit():
                self._pos += 1
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                self._pos += 1
            elif ch in "eE" and not seen_exp and self._pos > start:
                nxt = self._peek(1)
                if nxt.isdigit() or (nxt in "+-" and self._peek(2).isdigit()):
                    seen_exp = True
                    self._pos += 2 if nxt in "+-" else 1
                else:
                    break
            else:
                break
        return Token(TokenKind.NUMBER, self._sql[start:self._pos], start)

    def _scan_word(self, start: int) -> Token:
        while self._pos < self._n and (
            self._sql[self._pos].isalnum() or self._sql[self._pos] == "_"
        ):
            self._pos += 1
        word = self._sql[start:self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenKind.KEYWORD, upper, start)
        return Token(TokenKind.IDENT, word, start)

    def _scan_quoted_ident(self, start: int) -> Token:
        open_ch = self._sql[self._pos]
        close_ch = {"[": "]"}.get(open_ch, open_ch)
        self._pos += 1
        end = self._sql.find(close_ch, self._pos)
        if end < 0:
            raise SQLSyntaxError("unterminated quoted identifier", self._sql, start)
        word = self._sql[self._pos:end]
        self._pos = end + 1
        return Token(TokenKind.IDENT, word, start)


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql`` and return the token list, terminated by EOF.

    Raises:
        SQLSyntaxError: on any lexical error.
    """
    return Lexer(sql).tokens()
