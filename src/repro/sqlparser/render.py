"""AST → SQL rendering.

The inverse of :mod:`repro.sqlparser.parser`: turns any AST the parser can
produce back into executable SQL text.  Round-tripping is structural, not
textual — whitespace and redundant parentheses are normalised — and the
invariant ``parse(render(parse(q))) == parse(q)`` is enforced by property
tests.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.sqlparser.astnodes import Node

__all__ = ["render_sql"]

# Operator precedence used to decide when parentheses are required.
_PRECEDENCE = {
    "OR": 1,
    "AND": 2,
    "NOT": 3,
    "=": 4, "<>": 4, "<": 4, ">": 4, "<=": 4, ">=": 4, "LIKE": 4,
    "+": 5, "-": 5, "||": 5,
    "*": 6, "/": 6, "%": 6,
}


def render_sql(node: Node) -> str:
    """Render an AST into a SQL string.

    Raises:
        CompileError: for node types the renderer does not know.
    """
    return _Renderer().statement(node)


class _Renderer:
    """Stateless rendering visitor (class only for namespacing)."""

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def statement(self, node: Node) -> str:
        if node.node_type == "SelectStmt":
            return self._select(node)
        if node.node_type == "SetOpStmt":
            left, right = node.children
            op = node.attributes.get("op", "UNION")
            return f"{self.statement(left)} {op} {self.statement(right)}"
        raise CompileError(f"cannot render statement of type {node.node_type}")

    def _select(self, node: Node) -> str:
        """Emit canonical SQL clause order regardless of the AST child
        order (Top/Distinct live at the end of the child list for path
        stability, but print right after SELECT)."""
        clauses: dict[str, Node] = {}
        for clause in node.children:
            if clause.node_type in clauses:
                raise CompileError(f"duplicate {clause.node_type} clause")
            clauses[clause.node_type] = clause

        parts = ["SELECT"]
        if "Top" in clauses:
            parts.append(f"TOP {self.expr(clauses['Top'].children[0])}")
        if "Distinct" in clauses:
            parts.append("DISTINCT")
        project = clauses.get("Project")
        if project is None:
            raise CompileError("SELECT without a Project clause")
        parts.append(", ".join(self._proj(c) for c in project.children))
        if "From" in clauses:
            items = clauses["From"].children
            parts.append("FROM " + ", ".join(self._from_item(c) for c in items))
        if "Where" in clauses:
            parts.append("WHERE " + self.expr(clauses["Where"].children[0]))
        if "GroupBy" in clauses:
            exprs = ", ".join(
                self.expr(c.children[0]) for c in clauses["GroupBy"].children
            )
            parts.append("GROUP BY " + exprs)
        if "Having" in clauses:
            parts.append("HAVING " + self.expr(clauses["Having"].children[0]))
        if "OrderBy" in clauses:
            parts.append(
                "ORDER BY "
                + ", ".join(self._order(c) for c in clauses["OrderBy"].children)
            )
        if "Limit" in clauses:
            limit = clauses["Limit"]
            parts.append("LIMIT " + self.expr(limit.children[0]))
            if len(limit.children) > 1:
                parts.append("OFFSET " + self.expr(limit.children[1]))
        known = {
            "Top", "Distinct", "Project", "From", "Where", "GroupBy",
            "Having", "OrderBy", "Limit",
        }
        unknown = set(clauses) - known
        if unknown:
            raise CompileError(f"unknown SELECT clauses {sorted(unknown)}")
        return " ".join(parts)

    def _proj(self, clause: Node) -> str:
        if clause.node_type != "ProjClause":
            raise CompileError(f"bad projection item {clause.node_type}")
        text = self.expr(clause.children[0])
        if len(clause.children) > 1:
            alias = clause.children[1].attributes["name"]
            text += f" AS {alias}"
        return text

    def _from_item(self, node: Node) -> str:
        kind = node.node_type
        if kind == "TableRef":
            text = str(node.attributes["name"])
            alias = node.attributes.get("alias")
            return f"{text} AS {alias}" if alias else text
        if kind == "FuncTableRef":
            name = node.children[0].attributes["name"]
            args = ", ".join(self.expr(c) for c in node.children[1:])
            text = f"{name}({args})"
            alias = node.attributes.get("alias")
            return f"{text} AS {alias}" if alias else text
        if kind == "SubqueryRef":
            text = f"({self.statement(node.children[0])})"
            alias = node.attributes.get("alias")
            return f"{text} AS {alias}" if alias else text
        if kind == "JoinRef":
            join_type = node.attributes.get("join_type", "INNER")
            keyword = "JOIN" if join_type == "INNER" else f"{join_type} JOIN"
            left = self._from_item(node.children[0])
            right = self._from_item(node.children[1])
            text = f"{left} {keyword} {right}"
            if len(node.children) > 2 and node.children[2].node_type == "OnClause":
                text += " ON " + self.expr(node.children[2].children[0])
            return text
        raise CompileError(f"unknown FROM item {kind}")

    def _order(self, clause: Node) -> str:
        text = self.expr(clause.children[0])
        if len(clause.children) > 1 and clause.children[1].node_type == "SortDir":
            text += " " + str(clause.children[1].attributes["value"])
        return text

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def expr(self, node: Node, parent_prec: int = 0) -> str:
        kind = node.node_type
        method = getattr(self, f"_expr_{kind}", None)
        if method is None:
            raise CompileError(f"cannot render expression of type {kind}")
        return method(node, parent_prec)

    @staticmethod
    def _wrap(text: str, prec: int, parent_prec: int) -> str:
        return f"({text})" if prec < parent_prec else text

    def _expr_NumExpr(self, node: Node, _pp: int) -> str:
        value = node.attributes["value"]
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return str(value)

    def _expr_HexExpr(self, node: Node, _pp: int) -> str:
        return str(node.attributes.get("text") or hex(int(node.attributes["value"])))

    def _expr_StrExpr(self, node: Node, _pp: int) -> str:
        escaped = str(node.attributes["value"]).replace("'", "''")
        return f"'{escaped}'"

    def _expr_ColExpr(self, node: Node, _pp: int) -> str:
        return str(node.attributes["name"])

    def _expr_StarExpr(self, _node: Node, _pp: int) -> str:
        return "*"

    def _expr_NullExpr(self, _node: Node, _pp: int) -> str:
        return "NULL"

    def _expr_BoolExpr(self, node: Node, _pp: int) -> str:
        return str(node.attributes["value"])

    def _expr_BiExpr(self, node: Node, parent_prec: int) -> str:
        op = str(node.attributes["op"])
        prec = _PRECEDENCE.get(op, 4)
        left = self.expr(node.children[0], prec)
        right = self.expr(node.children[1], prec + 1)
        return self._wrap(f"{left} {op} {right}", prec, parent_prec)

    def _expr_AndExpr(self, node: Node, parent_prec: int) -> str:
        prec = _PRECEDENCE["AND"]
        text = " AND ".join(self.expr(c, prec) for c in node.children)
        return self._wrap(text, prec, parent_prec)

    def _expr_OrExpr(self, node: Node, parent_prec: int) -> str:
        prec = _PRECEDENCE["OR"]
        text = " OR ".join(self.expr(c, prec) for c in node.children)
        return self._wrap(text, prec, parent_prec)

    def _expr_NotExpr(self, node: Node, parent_prec: int) -> str:
        prec = _PRECEDENCE["NOT"]
        return self._wrap(f"NOT {self.expr(node.children[0], prec)}", prec, parent_prec)

    def _expr_UnaryExpr(self, node: Node, _pp: int) -> str:
        return f"-{self.expr(node.children[0], 7)}"

    def _expr_FuncExpr(self, node: Node, _pp: int) -> str:
        name = node.children[0].attributes["name"]
        args = node.children[1:]
        if args and args[0].node_type == "Distinct":
            inner = "DISTINCT " + ", ".join(self.expr(a) for a in args[1:])
        else:
            inner = ", ".join(self.expr(a) for a in args)
        return f"{name}({inner})"

    def _expr_BetweenExpr(self, node: Node, parent_prec: int) -> str:
        expr, low, high = node.children
        prec = 4
        text = (
            f"{self.expr(expr, prec)} BETWEEN {self.expr(low, prec)}"
            f" AND {self.expr(high, prec)}"
        )
        return self._wrap(text, prec, parent_prec)

    def _expr_InExpr(self, node: Node, parent_prec: int) -> str:
        target, rhs = node.children
        if rhs.node_type == "InList":
            inner = ", ".join(self.expr(c) for c in rhs.children)
        else:
            inner = self.statement(rhs)
        return self._wrap(f"{self.expr(target, 4)} IN ({inner})", 4, parent_prec)

    def _expr_IsNullExpr(self, node: Node, parent_prec: int) -> str:
        op = "IS NOT NULL" if node.attributes.get("negated") else "IS NULL"
        return self._wrap(f"{self.expr(node.children[0], 4)} {op}", 4, parent_prec)

    def _expr_ExistsExpr(self, node: Node, _pp: int) -> str:
        return f"EXISTS ({self.statement(node.children[0])})"

    def _expr_ScalarSubquery(self, node: Node, _pp: int) -> str:
        return f"({self.statement(node.children[0])})"

    def _expr_CaseExpr(self, node: Node, _pp: int) -> str:
        parts = ["CASE"]
        for child in node.children:
            if child.node_type == "CaseInput":
                parts.append(self.expr(child.children[0]))
            elif child.node_type == "WhenClause":
                cond, result = child.children
                parts.append(f"WHEN {self.expr(cond)} THEN {self.expr(result)}")
            elif child.node_type == "ElseClause":
                parts.append(f"ELSE {self.expr(child.children[0])}")
            else:
                raise CompileError(f"bad CASE child {child.node_type}")
        parts.append("END")
        return " ".join(parts)

    def _expr_CastExpr(self, node: Node, _pp: int) -> str:
        inner = self.expr(node.children[0])
        if len(node.children) > 1 and node.children[1].node_type == "TypeName":
            return f"CAST({inner} AS {node.children[1].attributes['name']})"
        return f"CAST({inner})"
