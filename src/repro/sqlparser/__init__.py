"""SQL parsing substrate: lexer, AST model, parser, renderer, annotations.

The paper used a third-party SQL parsing web service; this package is our
from-scratch replacement.  Public surface::

    from repro.sqlparser import parse_sql, render_sql, Node
    ast = parse_sql("SELECT a FROM t WHERE b > 10")
    sql = render_sql(ast)
"""

from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations, subtree_kind
from repro.sqlparser.parser import Parser, parse_many, parse_sql
from repro.sqlparser.render import render_sql
from repro.sqlparser.tokens import Lexer, Token, TokenKind, tokenize

__all__ = [
    "Node",
    "Parser",
    "parse_sql",
    "parse_many",
    "render_sql",
    "tokenize",
    "Token",
    "TokenKind",
    "Lexer",
    "GrammarAnnotations",
    "SQL_ANNOTATIONS",
    "subtree_kind",
]
