"""The paper's in-text example query logs (Listings 1–7).

These tiny logs drive the interface-mapping trade-off showcases of
Section 7.1 / Figure 5 and are used verbatim by tests and benches.
"""

from __future__ import annotations

import random

from repro.logs.model import QueryLog

__all__ = [
    "LISTING_1",
    "LISTING_2",
    "LISTING_3",
    "LISTING_5_LEFT",
    "LISTING_5_RIGHT",
    "LISTING_6",
    "LISTING_7",
    "listing_4_log",
    "listing_5_small",
    "listing_5_large",
]

#: Listing 1 — sample of SDSS queries from one client.
LISTING_1 = [
    "SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
    "SELECT * FROM XCRedshift WHERE specObjId = 0x199",
    "SELECT * FROM SpecLineIndex WHERE specObjId = 0x3",
]

#: Listing 2 — synthetic OLAP queries.
LISTING_2 = [
    "SELECT COUNT(Delay), DestState FROM ontime "
    "WHERE Month = 9 AND Day = 3 GROUP BY DestState",
    "SELECT DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState",
    "SELECT DestState FROM ontime WHERE Month = 8 AND Day = 3 GROUP BY DestState",
]

#: Listing 3 — sample of ad-hoc student queries.
LISTING_3 = [
    "SELECT CAST(uniquecarrier) AS uniquecarrier FROM ontime",
    "SELECT SUM(flights) FROM ontime WHERE canceled = 1 "
    "HAVING SUM(flights) > 149 AND SUM(flights) < 1354",
    "SELECT (CASE carrier WHEN 'AA' THEN 'AA' ELSE 'Other' END) AS carrier, "
    "FLOOR(distance / 5) AS distance FROM ontime",
]

#: Listing 5 (left) — three queries varying a function call.
LISTING_5_LEFT = [
    "SELECT avg(a)",
    "SELECT count(b)",
    "SELECT count(c)",
]

#: Listing 5 (right) — the ten additional queries.
LISTING_5_RIGHT = [
    "SELECT avg(b)",
    "SELECT count(a)",
    "SELECT avg(c)",
    "SELECT avg(d)",
    "SELECT avg(e)",
    "SELECT count(d)",
    "SELECT count(e)",
    "SELECT count(b)",
    "SELECT count(c)",
    "SELECT avg(a)",
]

#: Listing 6 — TOP clause added, then modified.
LISTING_6 = [
    "SELECT g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
    "SELECT TOP 1 g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
    "SELECT TOP 10 g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
]

#: Listing 7 — subquery added to FROM, then modified.
LISTING_7 = [
    "SELECT * FROM T",
    "SELECT * FROM (SELECT a FROM T WHERE b > 10)",
    "SELECT * FROM (SELECT a FROM T WHERE b > 20)",
    "SELECT * FROM (SELECT b FROM T WHERE b > 20)",
]

_LISTING_4_TEMPLATE = (
    "SELECT spec_ts, sum(price) FROM ("
    "SELECT action, sum(customer) FROM t "
    "WHERE spec_ts > now AND spec_ts < now + {offset}) "
    "WHERE cust = '{customer}' AND country = 'China' GROUP BY spec_ts"
)

_CUSTOMERS = ["Alice", "Bob", "Carol", "Dave"]


def listing_4_log(n: int = 20, seed: int = 4) -> QueryLog:
    """Simple parameter changes to a complex query (Listing 4): the literal
    offset in the subquery predicate and the customer name vary."""
    rng = random.Random(seed)
    statements = [
        _LISTING_4_TEMPLATE.format(offset=3, customer="Alice"),
        _LISTING_4_TEMPLATE.format(offset=9, customer="Bob"),
    ]
    while len(statements) < n:
        statements.append(
            _LISTING_4_TEMPLATE.format(
                offset=rng.randrange(1, 10), customer=rng.choice(_CUSTOMERS)
            )
        )
    return QueryLog.from_statements(statements[:n], name="listing4")


def listing_5_small() -> QueryLog:
    """The three-query log behind Figure 5b."""
    return QueryLog.from_statements(list(LISTING_5_LEFT), name="listing5-small")


def listing_5_large() -> QueryLog:
    """The thirteen-query log behind Figure 5c."""
    return QueryLog.from_statements(
        list(LISTING_5_LEFT) + list(LISTING_5_RIGHT), name="listing5-large"
    )
