"""Synthetic SDSS SkyServer query log generator.

The paper's SDSS sample (127,461 queries, 286 clients, 11/2004) is not
redistributable offline, so this generator synthesises per-client sessions
with the *structural change statistics* the paper reports and relies on:

* "the queries for each user are considerably different, but the changes
  between a given user's queries are very similar and highly structured"
  (Listing 1) — each client follows one analysis *profile*: a query
  template plus a random walk that mutates one aspect per step (literal
  values most often, table/attribute/structure switches occasionally);
* client C1 looks up objects by id across spectral-line / redshift tables
  (Listing 1 verbatim shape);
* one "C5-like" profile draws string literals from a large pool revealed
  slowly, reproducing the one slow recall curve of Figure 6a;
* the TOP-clause add/modify analysis of Listing 6 appears as a profile;
* several clients share a profile, so cross-client recall (Figure 7c/9/10)
  is bimodal: same profile → expressible, different profile → not.

All queries are consistent with :data:`repro.schema.catalog.SDSS_CATALOG`
per profile; mixing *different* profiles (the multi-client experiment)
produces the schema-invalid widget combinations Appendix D measures.

Numeric literals per profile live in fixed ranges, and each session opens
with the profile's documentation example queries — which touch the range
endpoints, the way SkyServer users start from the manual's samples.  This
gives sliders their full extrapolation range within a few training queries.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import LogError
from repro.logs.model import LogEntry, QueryLog

__all__ = ["SDSSLogGenerator", "PROFILE_NAMES"]


# ----------------------------------------------------------------------
# profile implementations
# ----------------------------------------------------------------------
def _hex_id(rng: random.Random, low: int = 0x10, high: int = 0x4FF0) -> str:
    return hex(rng.randrange(low, high))


def _profile_object_lookup(rng: random.Random, n: int) -> list[str]:
    """Listing 1: object lookups across spectral tables (client C1)."""
    tables = ["SpecLineIndex", "XCRedshift"]
    fields = ["specObjId"]
    state = {"table": tables[0], "field": fields[0], "value": "0x10"}
    out = [
        # manual examples: one aspect changes at a time, covering the id
        # range endpoints and both tables
        "SELECT * FROM SpecLineIndex WHERE specObjId = 0x10",
        "SELECT * FROM SpecLineIndex WHERE specObjId = 0x4fef",
        "SELECT * FROM XCRedshift WHERE specObjId = 0x4fef",
    ]
    while len(out) < n:
        roll = rng.random()
        if roll < 0.72:
            state["value"] = _hex_id(rng)
        elif roll < 0.95:
            state["table"] = rng.choice(tables)
        else:
            state["field"] = rng.choice(fields)
        out.append(
            f"SELECT * FROM {state['table']} WHERE {state['field']} = {state['value']}"
        )
    return out[:n]


def _profile_top_nearby(rng: random.Random, n: int) -> list[str]:
    """Listing 6: add a TOP clause to a UDF join, then tune the limit and
    the search coordinates."""
    state = {"top": None, "ra": 5.848, "dec": 0.352, "radius": 2.0616}
    out = []

    def render() -> str:
        top = f"TOP {state['top']} " if state["top"] is not None else ""
        return (
            f"SELECT {top}g.objID FROM Galaxy AS g, "
            f"dbo.fGetNearbyObjEq({state['ra']}, {state['dec']}, {state['radius']}) AS d "
            f"WHERE d.objID = g.objID"
        )

    # manual examples: one knob per step, covering every numeric endpoint
    out.append(render())
    for key, value in (
        ("top", 1), ("top", 500), ("ra", 0.0), ("ra", 359.9),
        ("dec", -10.0), ("dec", 10.0), ("radius", 0.5), ("radius", 30.0),
    ):
        state[key] = value
        out.append(render())
    while len(out) < n:
        roll = rng.random()
        if roll < 0.30:
            state["top"] = None if state["top"] is not None and rng.random() < 0.3 \
                else rng.randrange(1, 500)
        elif roll < 0.55:
            state["ra"] = round(rng.uniform(0.0, 359.9), 3)
        elif roll < 0.80:
            state["dec"] = round(rng.uniform(-10.0, 10.0), 3)
        else:
            state["radius"] = round(rng.uniform(0.5, 30.0), 3)
        out.append(render())
    return out[:n]


def _profile_rect_photometry(rng: random.Random, n: int) -> list[str]:
    """Rectangular area search over PhotoObj (BETWEEN bounds walk)."""
    state = {"ra_lo": 0.0, "ra_hi": 360.0, "dec_lo": -5.0, "dec_hi": 5.0}
    out = []

    def render() -> str:
        return (
            "SELECT objID, ra, dec FROM PhotoObj "
            f"WHERE ra BETWEEN {state['ra_lo']} AND {state['ra_hi']} "
            f"AND dec BETWEEN {state['dec_lo']} AND {state['dec_hi']}"
        )

    out.append(render())
    while len(out) < n:
        roll = rng.random()
        if roll < 0.5:
            lo = round(rng.uniform(0.0, 300.0), 2)
            state["ra_lo"], state["ra_hi"] = lo, round(lo + rng.uniform(1, 60), 2)
        else:
            lo = round(rng.uniform(-5.0, 4.0), 2)
            state["dec_lo"], state["dec_hi"] = lo, round(lo + rng.uniform(0.1, 1.0), 2)
        out.append(render())
    return out[:n]


def _profile_color_cut(rng: random.Random, n: int) -> list[str]:
    """Colour-cut selection over Star with a TOP limit."""
    state = {"top": 10, "ug": 0.0, "gr": 0.0}
    out = []

    def render() -> str:
        return (
            f"SELECT TOP {state['top']} objID, u, g, r FROM Star "
            f"WHERE u - g > {state['ug']} AND g - r < {state['gr']}"
        )

    # manual examples: one knob per step, covering every endpoint
    out.append(render())
    for key, value in (("top", 1000), ("ug", 2.5), ("gr", 1.5)):
        state[key] = value
        out.append(render())
    while len(out) < n:
        roll = rng.random()
        if roll < 0.34:
            state["top"] = rng.choice([10, 50, 100, 500, 1000])
        elif roll < 0.67:
            state["ug"] = round(rng.uniform(0.0, 2.5), 2)
        else:
            state["gr"] = round(rng.uniform(0.0, 1.5), 2)
        out.append(render())
    return out[:n]


#: Pool of 38 object class names for the slow-literal profile (C5).
_CLASS_POOL = [f"CLASS_{index:02d}" for index in range(38)]


def _profile_slow_pool(rng: random.Random, n: int) -> list[str]:
    """C5-like: the changed literal is a string from a large pool that the
    session reveals gradually — the user scans the class catalogue mostly
    in order with occasional revisits.  Recall climbs slowly with training
    size (unseen classes are inexpressible by the mined drop-down) until
    the revealed domain is large enough that the mapper switches to a
    textbox, which expresses everything (the Figure 6a C5 curve)."""
    order = list(_CLASS_POOL)
    rng.shuffle(order)
    cursor = 0
    state = {"type": order[0], "flags": 0}
    out = []

    def render() -> str:
        return (
            "SELECT objID, ra, dec FROM PhotoObj "
            f"WHERE type = '{state['type']}' AND flags = {state['flags']}"
        )

    out.append(render())
    while len(out) < n:
        roll = rng.random()
        if roll < 0.7:
            cursor = min(cursor + 1, len(order) - 1)
            state["type"] = order[cursor] if cursor < len(order) else rng.choice(order)
            if cursor == len(order) - 1:
                state["type"] = rng.choice(order)
        elif roll < 0.9:
            state["type"] = rng.choice(order[: cursor + 1])  # revisit
        else:
            state["flags"] = rng.randrange(0, 64)
        out.append(render())
    return out[:n]


def _profile_redshift_range(rng: random.Random, n: int) -> list[str]:
    """Red-shift band selection over SpecObj."""
    state = {"z_lo": 0.0, "z_hi": 7.0}
    out = []

    def render() -> str:
        return (
            "SELECT specObjId, z FROM SpecObj "
            f"WHERE z > {state['z_lo']} AND z < {state['z_hi']}"
        )

    # manual examples: one bound per step, covering each walk endpoint
    out.append(render())
    for key, value in (("z_lo", 3.0), ("z_lo", 0.0), ("z_hi", 3.0), ("z_hi", 7.0)):
        state[key] = value
        out.append(render())
    while len(out) < n:
        if rng.random() < 0.5:
            state["z_lo"] = round(rng.uniform(0.0, 3.0), 3)
        else:
            state["z_hi"] = round(rng.uniform(3.0, 7.0), 3)
        out.append(render())
    return out[:n]


def _profile_spectro_lines(rng: random.Random, n: int) -> list[str]:
    """Spectral-line retrieval by object id with an optional TOP."""
    state = {"id": "0x10", "top": None}
    out = [
        "SELECT wave, height FROM SpecLine WHERE specObjId = 0x10 ORDER BY wave",
        "SELECT wave, height FROM SpecLine WHERE specObjId = 0x4fef ORDER BY wave",
    ]
    while len(out) < n:
        roll = rng.random()
        if roll < 0.75:
            state["id"] = _hex_id(rng)
        else:
            state["top"] = rng.choice([None, 5, 10, 50])
        top = f"TOP {state['top']} " if state["top"] is not None else ""
        out.append(
            f"SELECT {top}wave, height FROM SpecLine "
            f"WHERE specObjId = {state['id']} ORDER BY wave"
        )
    return out[:n]


def _profile_neighbours(rng: random.Random, n: int) -> list[str]:
    """Neighbourhood search by object id and distance threshold."""
    state = {"id": "0x10", "distance": 30.0}
    out = [
        "SELECT neighborObjID, distance FROM Neighbors "
        "WHERE objID = 0x10 AND distance < 0.05",
        "SELECT neighborObjID, distance FROM Neighbors "
        "WHERE objID = 0x4fef AND distance < 30.0",
    ]
    while len(out) < n:
        if rng.random() < 0.7:
            state["id"] = _hex_id(rng)
        else:
            state["distance"] = round(rng.uniform(0.05, 30.0), 3)
        out.append(
            "SELECT neighborObjID, distance FROM Neighbors "
            f"WHERE objID = {state['id']} AND distance < {state['distance']}"
        )
    return out[:n]


_PROFILES: dict[str, Callable[[random.Random, int], list[str]]] = {
    "object_lookup": _profile_object_lookup,
    "top_nearby": _profile_top_nearby,
    "rect_photometry": _profile_rect_photometry,
    "color_cut": _profile_color_cut,
    "slow_pool": _profile_slow_pool,
    "redshift_range": _profile_redshift_range,
    "spectro_lines": _profile_spectro_lines,
    "neighbours": _profile_neighbours,
}

PROFILE_NAMES = tuple(_PROFILES)


class SDSSLogGenerator:
    """Deterministic synthetic SDSS log factory.

    Args:
        seed: base RNG seed; client ``k`` uses ``seed + k`` so individual
            client logs are reproducible in isolation.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed

    def client_log(
        self, client: str = "C1", profile: str = "object_lookup", n: int = 200
    ) -> QueryLog:
        """Generate one client's session.

        Raises:
            LogError: for an unknown profile or non-positive length.
        """
        if profile not in _PROFILES:
            raise LogError(f"unknown SDSS profile {profile!r}; "
                           f"choose from {sorted(_PROFILES)}")
        if n <= 0:
            raise LogError(f"log length must be positive, got {n}")
        rng = random.Random(f"{self._seed}/{client}/{profile}")
        statements = _PROFILES[profile](rng, n)
        entries = [
            LogEntry(sql=sql, client=client, sequence=i, timestamp=float(i))
            for i, sql in enumerate(statements)
        ]
        return QueryLog(entries=entries, name=f"sdss/{client}")

    def clients(
        self, n_clients: int, n_queries: int = 200, profiles: list[str] | None = None
    ) -> dict[str, QueryLog]:
        """Generate several clients, cycling through profiles so that some
        clients share an analysis (needed for the bimodal cross-client
        recall of Figure 7c)."""
        chosen = profiles or list(PROFILE_NAMES)
        out: dict[str, QueryLog] = {}
        for index in range(n_clients):
            client = f"C{index + 1}"
            profile = chosen[index % len(chosen)]
            out[client] = self.client_log(client=client, profile=profile, n=n_queries)
        return out

    def interleaved(
        self, n_clients: int, n_queries: int = 200, profiles: list[str] | None = None
    ) -> QueryLog:
        """Round-robin interleaving of several clients (Section 7.2.3's
        heterogeneous logs)."""
        logs = list(self.clients(n_clients, n_queries, profiles).values())
        return QueryLog.interleave(logs, name=f"sdss/mixed{n_clients}")

    def full_log(self, n_queries: int, n_clients: int = 24) -> QueryLog:
        """A large interleaved log for the scalability experiment
        (Figure 12): ``n_queries`` total across ``n_clients`` clients."""
        per_client = max(1, -(-n_queries // n_clients))  # ceiling division
        logs = list(self.clients(n_clients, per_client).values())
        mixed = QueryLog.interleave(logs, name="sdss/full")
        return mixed.truncate(n_queries)
