"""Query log substrate: model, IO, and the three synthetic log generators."""

from repro.logs.adhoc import AdhocLogGenerator
from repro.logs.io import load_jsonl, load_log, load_text, save_jsonl, save_text
from repro.logs.listings import (
    LISTING_1,
    LISTING_2,
    LISTING_3,
    LISTING_5_LEFT,
    LISTING_5_RIGHT,
    LISTING_6,
    LISTING_7,
    listing_4_log,
    listing_5_large,
    listing_5_small,
)
from repro.logs.model import LogEntry, QueryLog
from repro.logs.olap import OLAP_AGGREGATES, OLAP_DIMENSIONS, OLAPLogGenerator
from repro.logs.sdss import PROFILE_NAMES, SDSSLogGenerator

__all__ = [
    "LogEntry",
    "QueryLog",
    "save_text",
    "load_text",
    "save_jsonl",
    "load_jsonl",
    "load_log",
    "SDSSLogGenerator",
    "PROFILE_NAMES",
    "OLAPLogGenerator",
    "OLAP_DIMENSIONS",
    "OLAP_AGGREGATES",
    "AdhocLogGenerator",
    "LISTING_1",
    "LISTING_2",
    "LISTING_3",
    "LISTING_5_LEFT",
    "LISTING_5_RIGHT",
    "LISTING_6",
    "LISTING_7",
    "listing_4_log",
    "listing_5_small",
    "listing_5_large",
]
