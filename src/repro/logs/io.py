"""Query log serialisation.

Two formats:

* plain text — one statement per line (comments with ``--``), the format
  the paper's IOT-startup use case describes ("a text file containing past
  customer queries");
* JSON lines — one ``{"sql", "client", "sequence", "timestamp"}`` object
  per line, preserving metadata.
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath

from repro.errors import LogError
from repro.logs.model import LogEntry, QueryLog

__all__ = ["save_text", "load_text", "save_jsonl", "load_jsonl", "load_log"]


def save_text(log: QueryLog, path: str | FilePath) -> None:
    """Write one statement per line."""
    lines = [entry.sql.replace("\n", " ").strip() for entry in log.entries]
    FilePath(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_text(path: str | FilePath, client: str = "c0", name: str | None = None) -> QueryLog:
    """Read a one-statement-per-line file, skipping blanks and ``--`` lines.

    Raises:
        LogError: when the file holds no statements.
    """
    file_path = FilePath(path)
    statements = []
    for line in file_path.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("--"):
            statements.append(stripped)
    if not statements:
        raise LogError(f"no statements found in {file_path}")
    return QueryLog.from_statements(
        statements, client=client, name=name or file_path.stem
    )


def load_log(path: str | FilePath, name: str | None = None) -> QueryLog:
    """Load a query log, dispatching on the file extension.

    ``.jsonl`` / ``.ndjson`` files go through :func:`load_jsonl`;
    everything else is treated as one-statement-per-line text.  This is
    what the CLI uses so a ``mine`` invocation can mix both formats in one
    batch.

    Raises:
        LogError: when the file is empty or malformed.
    """
    file_path = FilePath(path)
    if file_path.suffix.lower() in (".jsonl", ".ndjson"):
        return load_jsonl(file_path, name=name)
    return load_text(file_path, name=name)


def save_jsonl(log: QueryLog, path: str | FilePath) -> None:
    """Write entries as JSON lines with full metadata."""
    with open(path, "w", encoding="utf-8") as handle:
        for entry in log.entries:
            handle.write(
                json.dumps(
                    {
                        "sql": entry.sql,
                        "client": entry.client,
                        "sequence": entry.sequence,
                        "timestamp": entry.timestamp,
                    }
                )
                + "\n"
            )


def load_jsonl(path: str | FilePath, name: str | None = None) -> QueryLog:
    """Read a JSON-lines log.

    Raises:
        LogError: on malformed rows or an empty file.
    """
    file_path = FilePath(path)
    entries: list[LogEntry] = []
    for line_number, line in enumerate(
        file_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
            entries.append(
                LogEntry(
                    sql=row["sql"],
                    client=row.get("client", "c0"),
                    sequence=int(row.get("sequence", line_number - 1)),
                    timestamp=float(row.get("timestamp", line_number - 1)),
                )
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise LogError(f"bad log row at {file_path}:{line_number}") from exc
    if not entries:
        raise LogError(f"no entries found in {file_path}")
    return QueryLog(entries=entries, name=name or file_path.stem)
