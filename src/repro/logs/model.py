"""Query log model.

A :class:`QueryLog` is an ordered list of :class:`LogEntry` records — query
text plus the metadata real DBMS logs carry (client id, sequence number,
timestamp).  The SDSS experiments partition the log by client ("we
partition the queries by client, and assume each client represents one
analysis session"), interleave clients for the heterogeneous-log
experiments, and slice windows for the recall experiments; this module
provides those operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import LogError
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql

__all__ = ["LogEntry", "QueryLog"]


@dataclass(frozen=True)
class LogEntry:
    """One logged query.

    Attributes:
        sql: the raw statement text.
        client: client identifier (the SDSS log uses client IPs).
        sequence: position within the client's session.
        timestamp: seconds since session start (synthetic logs use uniform
            spacing).
    """

    sql: str
    client: str = "c0"
    sequence: int = 0
    timestamp: float = 0.0


@dataclass
class QueryLog:
    """An ordered query log with client metadata."""

    entries: list[LogEntry] = field(default_factory=list)
    name: str = "log"

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_statements(
        cls, statements: list[str], client: str = "c0", name: str = "log"
    ) -> "QueryLog":
        """Wrap raw SQL strings as a single-client log."""
        entries = [
            LogEntry(sql=sql, client=client, sequence=i, timestamp=float(i))
            for i, sql in enumerate(statements)
        ]
        return cls(entries=entries, name=name)

    # ------------------------------------------------------------------
    # basic access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self.entries)

    def statements(self) -> list[str]:
        """The raw SQL strings, in order."""
        return [entry.sql for entry in self.entries]

    def asts(self) -> list[Node]:
        """Parse every entry (raises SQLSyntaxError on a bad statement)."""
        return [parse_sql(entry.sql) for entry in self.entries]

    @property
    def clients(self) -> list[str]:
        """Distinct client ids in first-appearance order."""
        seen: dict[str, None] = {}
        for entry in self.entries:
            seen.setdefault(entry.client, None)
        return list(seen)

    # ------------------------------------------------------------------
    # slicing / recomposition
    # ------------------------------------------------------------------
    def by_client(self) -> dict[str, "QueryLog"]:
        """Partition into per-client logs (the SDSS per-client sessions)."""
        buckets: dict[str, list[LogEntry]] = {}
        for entry in self.entries:
            buckets.setdefault(entry.client, []).append(entry)
        return {
            client: QueryLog(entries=rows, name=f"{self.name}/{client}")
            for client, rows in buckets.items()
        }

    def truncate(self, n: int) -> "QueryLog":
        """The first ``n`` entries."""
        return QueryLog(entries=self.entries[:n], name=self.name)

    def slice(self, start: int, stop: int) -> "QueryLog":
        """Entries in ``[start, stop)``."""
        return QueryLog(entries=self.entries[start:stop], name=self.name)

    def windows(self, size: int) -> list["QueryLog"]:
        """Consecutive non-overlapping windows of ``size`` entries; a final
        partial window is dropped (matching the 200-query windows of
        Section 7.2.1).

        Raises:
            LogError: for a non-positive size.
        """
        if size <= 0:
            raise LogError(f"window size must be positive, got {size}")
        out = []
        for start in range(0, len(self.entries) - size + 1, size):
            out.append(self.slice(start, start + size))
        return out

    @staticmethod
    def interleave(
        logs: list["QueryLog"], name: str = "interleaved", chunk: int = 8
    ) -> "QueryLog":
        """Interleave several logs at ``chunk`` granularity (the
        multi-client heterogeneous logs of Section 7.2.3).

        Real DBMS logs interleave clients at *burst* granularity — a client
        issues a run of queries, then another client takes over — so the
        default mixes runs of 8 queries.  ``chunk=1`` gives strict
        round-robin, where every adjacent pair crosses clients.

        Raises:
            LogError: when no logs are given or chunk is not positive.
        """
        if not logs:
            raise LogError("nothing to interleave")
        if chunk <= 0:
            raise LogError(f"chunk must be positive, got {chunk}")
        entries: list[LogEntry] = []
        longest = max(len(log) for log in logs)
        for start in range(0, longest, chunk):
            for log in logs:
                entries.extend(log.entries[start:start + chunk])
        renumbered = [
            LogEntry(
                sql=e.sql, client=e.client, sequence=i, timestamp=float(i)
            )
            for i, e in enumerate(entries)
        ]
        return QueryLog(entries=renumbered, name=name)
