"""Session segmentation — the preprocessing Section 3.3 recommends.

Precision Interfaces assumes "the query log contains queries from a single
logical analysis".  Real logs interleave analyses; the paper suggests
leveraging session metadata or "modeling semantic distances between queries
to cluster similar queries".  This module implements that preprocessing:

* :func:`split_by_distance` — cut the log whenever the structural distance
  between consecutive queries exceeds a threshold (a new analysis usually
  starts with a large structural jump);
* :func:`cluster_analyses` — greedy distance-based clustering of segments
  into analyses, so interleaved bursts of the same analysis are merged;
* :func:`segment_asts` — the AST-level core of both, used directly by the
  staged pipeline's :class:`~repro.api.stages.SegmentStage`.

Used by the multi-client examples to recover per-analysis logs when no
client ids are available.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.errors import LogError
from repro.logs.model import QueryLog
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql
from repro.treediff.matching import tree_distance

__all__ = [
    "split_by_distance",
    "cluster_analyses",
    "segment_log",
    "segment_asts",
    "validate_threshold",
]

T = TypeVar("T")


def _relative_distance(a: Node, b: Node) -> float:
    """Tree distance normalised by total size — 0 for equal trees, toward
    1 for totally different ones."""
    distance = tree_distance(a, b)
    return distance / max(1, a.size + b.size)


def validate_threshold(threshold: float) -> None:
    """Reject distance thresholds outside (0, 1] — the single source of
    truth for every segmentation entry point (including SegmentStage).

    Raises:
        LogError: for a nonsensical threshold.
    """
    if not 0.0 < threshold <= 1.0:
        raise LogError(f"threshold must be in (0, 1], got {threshold}")


def _split_cuts(asts: Sequence[Node], threshold: float) -> list[int]:
    """Cut positions (including 0 and len) at large structural jumps."""
    cuts = [0]
    for index in range(1, len(asts)):
        if _relative_distance(asts[index - 1], asts[index]) > threshold:
            cuts.append(index)
    cuts.append(len(asts))
    return cuts


def _greedy_cluster(
    items: list[T], prototype_of: Callable[[T], Node], threshold: float
) -> list[list[T]]:
    """Greedily group items whose prototype ASTs are structurally close,
    in order of first appearance."""
    prototypes: list[Node] = []
    clusters: list[list[T]] = []
    for item in items:
        prototype = prototype_of(item)
        for index, representative in enumerate(prototypes):
            if _relative_distance(representative, prototype) <= threshold:
                clusters[index].append(item)
                break
        else:
            prototypes.append(prototype)
            clusters.append([item])
    return clusters


def split_by_distance(log: QueryLog, threshold: float = 0.3) -> list[QueryLog]:
    """Cut the log into contiguous segments at large structural jumps.

    Args:
        log: the input log.
        threshold: relative distance in (0, 1]; consecutive queries whose
            relative distance exceeds it start a new segment.

    Raises:
        LogError: for an empty log or a nonsensical threshold.
    """
    if not log.entries:
        raise LogError("cannot segment an empty log")
    validate_threshold(threshold)
    cuts = _split_cuts(log.asts(), threshold)
    return [log.slice(start, stop) for start, stop in zip(cuts, cuts[1:])]


def _segment_prototype(segment: QueryLog) -> Node:
    """A representative AST for a segment (its first query)."""
    return parse_sql(segment.entries[0].sql)


def cluster_analyses(
    segments: list[QueryLog], threshold: float = 0.3
) -> list[QueryLog]:
    """Greedily merge segments whose prototypes are structurally close.

    Returns one concatenated log per recovered analysis, in order of first
    appearance.

    Raises:
        LogError: when no segments are given.
    """
    if not segments:
        raise LogError("no segments to cluster")
    clusters = _greedy_cluster(segments, _segment_prototype, threshold)
    out = []
    for index, group in enumerate(clusters):
        entries = [entry for segment in group for entry in segment.entries]
        out.append(QueryLog(entries=entries, name=f"analysis-{index}"))
    return out


def segment_log(
    log: QueryLog,
    jump_threshold: float = 0.3,
    cluster_threshold: float = 0.3,
) -> list[QueryLog]:
    """End-to-end segmentation: split at structural jumps, then cluster the
    bursts back into analyses."""
    return cluster_analyses(
        split_by_distance(log, jump_threshold), cluster_threshold
    )


def segment_asts(
    asts: Sequence[Node],
    jump_threshold: float = 0.3,
    cluster_threshold: float = 0.3,
) -> list[list[Node]]:
    """AST-level end-to-end segmentation (the SegmentStage entry point).

    Same algorithm as :func:`segment_log`, but over parsed queries with no
    log metadata: split at structural jumps, then greedily cluster the
    bursts by their first query.

    Raises:
        LogError: for an empty log or a nonsensical threshold.
    """
    if not asts:
        raise LogError("cannot segment an empty query log")
    validate_threshold(jump_threshold)
    validate_threshold(cluster_threshold)
    cuts = _split_cuts(asts, jump_threshold)
    bursts = [list(asts[start:stop]) for start, stop in zip(cuts, cuts[1:])]
    clusters = _greedy_cluster(bursts, lambda burst: burst[0], cluster_threshold)
    return [[ast for burst in cluster for ast in burst] for cluster in clusters]
