"""Session segmentation — the preprocessing Section 3.3 recommends.

Precision Interfaces assumes "the query log contains queries from a single
logical analysis".  Real logs interleave analyses; the paper suggests
leveraging session metadata or "modeling semantic distances between queries
to cluster similar queries".  This module implements that preprocessing:

* :func:`split_by_distance` — cut the log whenever the structural distance
  between consecutive queries exceeds a threshold (a new analysis usually
  starts with a large structural jump);
* :func:`cluster_analyses` — greedy distance-based clustering of segments
  into analyses, so interleaved bursts of the same analysis are merged.

Used by the multi-client examples to recover per-analysis logs when no
client ids are available.
"""

from __future__ import annotations

from repro.errors import LogError
from repro.logs.model import QueryLog
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql
from repro.treediff.matching import tree_distance

__all__ = ["split_by_distance", "cluster_analyses", "segment_log"]


def _relative_distance(a: Node, b: Node) -> float:
    """Tree distance normalised by total size — 0 for equal trees, toward
    1 for totally different ones."""
    distance = tree_distance(a, b)
    return distance / max(1, a.size + b.size)


def split_by_distance(log: QueryLog, threshold: float = 0.3) -> list[QueryLog]:
    """Cut the log into contiguous segments at large structural jumps.

    Args:
        log: the input log.
        threshold: relative distance in (0, 1]; consecutive queries whose
            relative distance exceeds it start a new segment.

    Raises:
        LogError: for an empty log or a nonsensical threshold.
    """
    if not log.entries:
        raise LogError("cannot segment an empty log")
    if not 0.0 < threshold <= 1.0:
        raise LogError(f"threshold must be in (0, 1], got {threshold}")
    asts = log.asts()
    cuts = [0]
    for index in range(1, len(asts)):
        if _relative_distance(asts[index - 1], asts[index]) > threshold:
            cuts.append(index)
    cuts.append(len(asts))
    segments = []
    for start, stop in zip(cuts, cuts[1:]):
        segments.append(log.slice(start, stop))
    return segments


def _segment_prototype(segment: QueryLog) -> Node:
    """A representative AST for a segment (its first query)."""
    return parse_sql(segment.entries[0].sql)


def cluster_analyses(
    segments: list[QueryLog], threshold: float = 0.3
) -> list[QueryLog]:
    """Greedily merge segments whose prototypes are structurally close.

    Returns one concatenated log per recovered analysis, in order of first
    appearance.

    Raises:
        LogError: when no segments are given.
    """
    if not segments:
        raise LogError("no segments to cluster")
    prototypes: list[Node] = []
    clusters: list[list[QueryLog]] = []
    for segment in segments:
        prototype = _segment_prototype(segment)
        assigned = False
        for index, representative in enumerate(prototypes):
            if _relative_distance(representative, prototype) <= threshold:
                clusters[index].append(segment)
                assigned = True
                break
        if not assigned:
            prototypes.append(prototype)
            clusters.append([segment])
    out = []
    for index, group in enumerate(clusters):
        entries = [entry for segment in group for entry in segment.entries]
        out.append(QueryLog(entries=entries, name=f"analysis-{index}"))
    return out


def segment_log(
    log: QueryLog,
    jump_threshold: float = 0.3,
    cluster_threshold: float = 0.3,
) -> list[QueryLog]:
    """End-to-end segmentation: split at structural jumps, then cluster the
    bursts back into analyses."""
    return cluster_analyses(
        split_by_distance(log, jump_threshold), cluster_threshold
    )
