"""Session-serving layer: concurrent multi-client ingestion.

The pipeline (``repro.api``) mines one log; the cache (``repro.cache``)
persists what was mined; this package *serves*: a
:class:`~repro.service.pool.SessionPool` shards the incremental sessions
of many independent clients across worker processes, all backed by one
file-lock-guarded :class:`~repro.cache.store.GraphStore`.  See
``docs/service.md`` for the lifecycle, the backpressure semantics, and
the shared-store guarantees.
"""

from repro.service.daemon import StoreDaemon, running_daemon
from repro.service.pool import AppendAck, CloseReport, PoolStats, SessionPool

__all__ = [
    "SessionPool",
    "AppendAck",
    "CloseReport",
    "PoolStats",
    "StoreDaemon",
    "running_daemon",
]
