"""Long-lived store daemon: one process owns the segment files.

Motivation (ROADMAP "store daemon + live serving surface"): with many
worker processes sharing one :class:`~repro.cache.store.GraphStore`
directory, every write queues on the advisory ``flock`` — a fleet-wide
convoy — and per-process recency batching makes the cross-process LRU
only approximate.  :class:`StoreDaemon` fixes both by construction:
exactly one process opens the segments, so its single in-process
:class:`~repro.cache.lock.StoreLock` replaces the ``flock`` convoy, it
sees *every* load and its recency is exact at each eviction decision,
and the shared diff-memo/proof tables it serves are warmed by all
tenants at once.

The daemon is deliberately dumb: it moves **bytes**.  Requests arrive
over a unix-domain socket (wire format in :mod:`repro.cache.client`)
and map onto the store's byte-level record surface
(:meth:`~repro.cache.store.GraphStore.record_get` /
:meth:`~repro.cache.store.GraphStore.record_put`) plus the maintenance
ops (``keys``/``stats``/``prune``/``invalidate``/``compact``).  Graph
encoding and decoding stay in the clients, so a request's time under
the store lock is one segment append or one block read — the daemon
never deserialises a graph.

Per-client accounting: every request carries a client id; the daemon
keeps request/byte meters per client (surfaced by the ``stats`` op and
``python -m repro cache stats --remote``) and can enforce optional
``quota_requests`` / ``quota_bytes`` caps — an over-quota request is
refused with ``code="quota"``, which clients deliberately do *not*
fail open on (see :class:`~repro.cache.client.QuotaExceeded`).

Run it embedded (tests, notebooks)::

    daemon = StoreDaemon(cache_dir, socket_path)
    daemon.start()          # background thread
    ...
    daemon.stop()

or as a process: ``python -m repro daemon --cache-dir DIR --socket S``.
"""

from __future__ import annotations

import contextlib
import os
import socket
import socketserver
import threading
import time
from pathlib import Path as FilePath
from typing import Any, Iterator

from repro.cache.client import read_message, write_message
from repro.cache.store import _TABLE_ORDER, GraphStore
from repro.errors import CacheError, ServiceError

__all__ = ["ClientMeter", "StoreDaemon", "running_daemon"]

#: Ops that mutate the store — refused once a client is over quota.
#: Reads are refused too (a free-riding reader still costs lock time),
#: except ``ping``/``stats`` so an over-quota client can observe *why*.
_METERED_OPS = frozenset(
    {"get", "put", "has", "keys", "prune", "invalidate", "invalidate_table", "compact"}
)

_TABLES = _TABLE_ORDER


class ClientMeter:
    """Cumulative per-client traffic counters (one lock-free snapshot
    per ``stats`` call; mutated only under the daemon's request lock)."""

    __slots__ = ("requests", "bytes_in", "bytes_out", "refused")

    def __init__(self) -> None:
        self.requests = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.refused = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "refused": self.refused,
        }


class _Server(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: str, owner: "StoreDaemon") -> None:
        self.owner = owner
        super().__init__(socket_path, _Handler)


class _Handler(socketserver.BaseRequestHandler):
    """One thread per connection; requests on a connection are handled
    in arrival order until the client hangs up."""

    server: _Server

    def handle(self) -> None:
        daemon = self.server.owner
        sock = self.request
        daemon._register(sock)
        try:
            self._serve_connection(daemon, sock)
        finally:
            daemon._unregister(sock)

    def _serve_connection(self, daemon: "StoreDaemon", sock: Any) -> None:
        while True:
            try:
                header, payload, extra = read_message(sock)
            except EOFError:
                return  # clean hang-up between requests
            except (ConnectionError, OSError):
                return  # torn frame / dead peer: nothing to answer
            except ValueError as exc:
                # malformed header: answer once, then drop the
                # connection — framing is gone, resync is impossible
                with contextlib.suppress(OSError):
                    write_message(sock, {"ok": False, "error": str(exc)})
                return
            try:
                response, out_payload = daemon.dispatch(header, payload, extra)
            except Exception as exc:  # noqa: BLE001 - fault barrier
                response, out_payload = (
                    {"ok": False, "error": f"{type(exc).__name__}: {exc}"},
                    b"",
                )
            try:
                write_message(sock, response, out_payload)
            except (ConnectionError, OSError):
                return
            if header.get("op") == "shutdown":
                return


class StoreDaemon:
    """Unix-domain-socket RPC server owning one :class:`GraphStore`.

    Args:
        root: the store directory (opened in-process, never remote).
        socket_path: where to listen.  Unix sockets cap path length
            around 100 bytes — keep it short.  A stale socket file from
            a dead daemon is replaced; a *live* daemon on the path is an
            error.
        max_bytes / max_entries: eviction caps for the owned store —
            under a daemon these are the fleet-wide caps.
        format: store layout (daemon-owned stores default to ``auto``).
        quota_requests / quota_bytes: optional per-client caps on total
            requests / total transferred bytes; exceeded clients get
            ``code="quota"`` refusals (reads degrade to misses
            client-side, saves are skipped).

    Thread model: the socket server is threading (one thread per
    connection) but every store operation runs under ``_ops_lock``, so
    the store sees strictly serial access — the single-owner premise
    that makes daemon recency exact and lock hold times the only
    queueing cost.
    """

    def __init__(
        self,
        root: str | FilePath,
        socket_path: str | FilePath,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        format: str = "auto",
        quota_requests: int | None = None,
        quota_bytes: int | None = None,
    ) -> None:
        self.socket_path = str(socket_path)
        self.store = GraphStore(
            root, max_bytes=max_bytes, max_entries=max_entries, format=format
        )
        self.quota_requests = quota_requests
        self.quota_bytes = quota_bytes
        self._ops_lock = threading.RLock()
        self._conns_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._meters: dict[str, ClientMeter] = {}
        self._started_at: float | None = None
        self._server: _Server | None = None
        self._thread: threading.Thread | None = None
        self._shutdown_requested = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _claim_socket(self) -> None:
        """Remove a stale socket file; refuse to evict a live daemon."""
        if not os.path.exists(self.socket_path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(self.socket_path)
        except OSError:
            # nobody answers: a crashed daemon's leftover — reclaim it
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
        else:
            probe.close()
            raise ServiceError(
                f"a store daemon is already listening on {self.socket_path}"
            )
        finally:
            probe.close()

    def start(self) -> None:
        """Bind the socket and serve from a background thread.

        Raises:
            ServiceError: when another daemon is live on the path.
        """
        if self._server is not None:
            raise ServiceError("daemon already started")
        self._claim_socket()
        self._server = _Server(self.socket_path, self)
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._serve_in_background,
            name="repro-store-daemon",
            daemon=True,
        )
        self._thread.start()

    def _serve_in_background(self) -> None:
        """Thread target for :meth:`start`: serve, then tear down — so a
        ``shutdown`` RPC fully stops a background daemon (socket file
        removed, recency flushed) without anyone calling :meth:`stop`."""
        server = self._server
        if server is None:  # pragma: no cover - start() just set it
            return
        try:
            server.serve_forever()
        finally:
            self._teardown()

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread until :meth:`stop` (or a
        ``shutdown`` RPC) — the ``python -m repro daemon`` entry point."""
        if self._server is None:
            self._claim_socket()
            self._server = _Server(self.socket_path, self)
            self._started_at = time.monotonic()
        try:
            self._server.serve_forever()
        finally:
            self._teardown()

    def stop(self) -> None:
        """Stop serving, flush recency, and remove the socket file.
        Idempotent."""
        server = self._server
        if server is None:
            return
        server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._teardown()

    def _register(self, sock: socket.socket) -> None:
        with self._conns_lock:
            self._conns.add(sock)

    def _unregister(self, sock: socket.socket) -> None:
        with self._conns_lock:
            self._conns.discard(sock)

    def _teardown(self) -> None:
        server = self._server
        self._server = None
        if server is not None:
            server.server_close()
        # sever live connections: handler threads otherwise keep serving
        # connected clients after shutdown, which would hide a daemon
        # stop from exactly the clients that should fail open
        with self._conns_lock:
            conns = list(self._conns)
        for sock in conns:
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                sock.close()
        with self._ops_lock:
            with contextlib.suppress(CacheError, OSError):
                self.store.flush_recency()
        with contextlib.suppress(OSError):
            os.unlink(self.socket_path)

    def __enter__(self) -> "StoreDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._server is not None

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def dispatch(
        self, header: dict[str, Any], payload: bytes, extra: bytes
    ) -> tuple[dict[str, Any], bytes]:
        """Serve one request; returns ``(response_header, payload)``.

        Exposed for tests — the socket handler calls straight into it.
        """
        op = str(header.get("op", ""))
        client = str(header.get("client", "?"))
        with self._ops_lock:
            meter = self._meters.setdefault(client, ClientMeter())
            if op in _METERED_OPS and self._over_quota(meter):
                meter.refused += 1
                return (
                    {
                        "ok": False,
                        "code": "quota",
                        "error": (
                            f"client {client!r} is over quota "
                            f"({meter.requests} requests, "
                            f"{meter.bytes_in + meter.bytes_out} bytes)"
                        ),
                    },
                    b"",
                )
            meter.requests += 1
            meter.bytes_in += len(payload) + len(extra)
            response, out_payload = self._serve_op(op, header, payload, extra)
            meter.bytes_out += len(out_payload)
        if op == "shutdown" and response.get("ok"):
            self._request_async_shutdown()
        return response, out_payload

    def _over_quota(self, meter: ClientMeter) -> bool:
        if self.quota_requests is not None and meter.requests >= self.quota_requests:
            return True
        return (
            self.quota_bytes is not None
            and meter.bytes_in + meter.bytes_out >= self.quota_bytes
        )

    def _serve_op(
        self, op: str, header: dict[str, Any], payload: bytes, extra: bytes
    ) -> tuple[dict[str, Any], bytes]:
        store = self.store
        if op == "ping":
            return (
                {
                    "ok": True,
                    "pid": os.getpid(),
                    "root": str(store.root),
                    "format": store.format,
                    "uptime": self._uptime(),
                },
                b"",
            )
        if op == "get":
            table, key = self._table_key(header)
            record = store.record_get(table, key)
            if record is None:
                return {"ok": True, "found": False}, b""
            return {"ok": True, "found": True}, record
        if op == "has":
            table, key = self._table_key(header)
            return {"ok": True, "found": store.record_has(table, key)}, b""
        if op == "put":
            table, key = self._table_key(header)
            graph_payload = extra if header.get("has_graph_payload") else None
            stored = store.record_put(table, key, payload, graph_payload)
            return {"ok": True, "stored": stored}, b""
        if op == "keys":
            return {"ok": True, "keys": store.keys()}, b""
        if op == "stats":
            return (
                {
                    "ok": True,
                    "store": store.stats(),
                    "daemon": self.daemon_stats(),
                },
                b"",
            )
        if op == "prune":
            removed = store.prune(
                max_bytes=_opt_int(header, "max_bytes"),
                max_entries=_opt_int(header, "max_entries"),
            )
            return {"ok": True, "removed": removed}, b""
        if op == "invalidate":
            removed = store.invalidate(
                log_fingerprint=_opt_str(header, "log_fingerprint"),
                options_fingerprint=_opt_str(header, "options_fingerprint"),
            )
            return {"ok": True, "removed": removed}, b""
        if op == "invalidate_table":
            removed = store.invalidate_table(str(header.get("table", "")))
            return {"ok": True, "removed": removed}, b""
        if op == "compact":
            return {"ok": True, "rewritten": store.compact()}, b""
        if op == "shutdown":
            return {"ok": True}, b""
        return {"ok": False, "error": f"unknown op {op!r}"}, b""

    @staticmethod
    def _table_key(header: dict[str, Any]) -> tuple[str, str]:
        table = str(header.get("table", ""))
        key = str(header.get("key", ""))
        if table not in _TABLES:
            raise CacheError(f"unknown table {table!r}")
        if not key:
            raise CacheError("missing record key")
        return table, key

    def _uptime(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def daemon_stats(self) -> dict[str, Any]:
        """The ``daemon`` half of the ``stats`` RPC: identity, uptime,
        quota config, and the per-client meters."""
        return {
            "pid": os.getpid(),
            "socket": self.socket_path,
            "uptime_seconds": self._uptime(),
            "quota_requests": self.quota_requests,
            "quota_bytes": self.quota_bytes,
            "clients": {
                client: meter.as_dict()
                for client, meter in sorted(self._meters.items())
            },
        }

    def _request_async_shutdown(self) -> None:
        """Stop the server from a helper thread — ``shutdown()`` called
        from a handler thread would deadlock ``serve_forever``."""
        if self._shutdown_requested.is_set():
            return
        self._shutdown_requested.set()
        server = self._server
        if server is None:
            return
        threading.Thread(
            target=server.shutdown, name="repro-daemon-shutdown", daemon=True
        ).start()


def _opt_int(header: dict[str, Any], field: str) -> int | None:
    value = header.get(field)
    return None if value is None else int(value)


def _opt_str(header: dict[str, Any], field: str) -> str | None:
    value = header.get(field)
    return None if value is None else str(value)


@contextlib.contextmanager
def running_daemon(
    root: str | FilePath, socket_path: str | FilePath, **kwargs: Any
) -> Iterator[StoreDaemon]:
    """``with running_daemon(dir, sock) as d:`` — start/stop convenience
    for tests and doc snippets."""
    daemon = StoreDaemon(root, socket_path, **kwargs)
    daemon.start()
    try:
        yield daemon
    finally:
        daemon.stop()
