"""Cross-process concurrent session serving.

One :class:`~repro.api.session.InterfaceSession` serialises its appends:
even ``astream`` only moves the work off the event loop, every append
still runs one after the other in one process.  Real interface-mining
deployments ingest many *independent* client logs concurrently, and
independent sessions have no reason to queue behind each other — they
are embarrassingly parallel right up to the shared cache.

A :class:`SessionPool` is that parallel layer:

* it owns ``pool_size`` **worker processes**, each hosting the
  :class:`InterfaceSession` objects of the clients sharded onto it
  (stable client→worker hashing, so one client's batches always land on
  the same worker in arrival order);
* :meth:`submit` routes one ``(client_id, batch)`` to its shard through a
  **bounded queue** — when a worker falls behind, ``submit`` blocks
  instead of buffering unboundedly.  That is the backpressure contract:
  producers slow to the pool's real throughput, memory stays flat;
* :meth:`serve` is the async face of the same contract: it consumes a
  sync or async stream of ``(client_id, batch)`` events, submitting via
  a worker thread so a full shard queue never blocks the event loop;
* :meth:`drain` is the synchronisation point: it waits until every
  submitted batch is fully processed and returns the latest
  :class:`~repro.api.result.GenerationResult` per client.

With ``options.cache_dir`` set, all workers share one
:class:`~repro.cache.store.GraphStore` (whose multi-file operations are
file-lock guarded exactly for this): on :meth:`drain` each session
publishes its accumulated graph, widget set, and closure proofs, so a
later pool — or a one-shot ``generate`` — full-hits on the same log, and
``expresses()`` memos survive the pool.

Result equivalence: a pool is sharding, not approximation.  For every
client, the drained result equals what one-shot
:func:`~repro.api.generate` over the client's concatenated batches
produces — the property-based parity suite in
``tests/service/test_pool_properties.py`` holds this across random
workloads.

Usage::

    from repro.service import SessionPool

    with SessionPool(pool_size=4, queue_depth=8) as pool:
        for client_id, batch in arriving_batches:
            pool.submit(client_id, batch)          # blocks when saturated
        results = pool.drain()                     # {client_id: GenerationResult}

    async with SessionPool(pool_size=4) as pool:   # same pool, async face
        results = await pool.serve(event_stream())
"""

from __future__ import annotations

import asyncio
import contextlib
import inspect
import itertools
import multiprocessing as mp
import signal
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, AsyncIterator, Callable, Iterable

from repro.api.result import GenerationResult
from repro.api.session import InterfaceSession
from repro.core.options import PipelineOptions
from repro.errors import ServiceError

__all__ = ["SessionPool", "AppendAck", "CloseReport", "PoolStats"]

#: Default bound of each worker's inbox queue, in batches.  Deep enough
#: to keep a worker busy while the producer parses the next arrivals,
#: shallow enough that a stalled worker pushes back within a few batches.
DEFAULT_QUEUE_DEPTH = 8

_OP_APPEND = "append"
_OP_DRAIN = "drain"
_OP_RELEASE = "release"
_OP_STOP = "stop"
_OP_CLOSE = "close"


@dataclass(frozen=True)
class AppendAck:
    """One processed append, as reported back by a worker."""

    client_id: str
    seq: int
    worker: int
    n_queries: int
    n_widgets: int
    seconds: float
    error: str | None = None
    #: The append's full :class:`GenerationResult` — attached only for
    #: appends submitted while a streaming :meth:`SessionPool.serve`
    #: (``on_result=...``) is active; ``None`` otherwise, because
    #: shipping every interface revision through the outbox would tax
    #: the non-streaming ingest path for nothing.
    result: GenerationResult | None = None
    #: The append's compiled interface — attached only for appends
    #: submitted while a ``serve(compile=...)`` mode is active.  In
    #: ``"patch"`` mode this is the structural patch
    #: (:func:`repro.compiler.incremental.make_patch` wire format); in
    #: ``"page"`` mode it is ``{"kind": "page_html", "html": ...}``.  A
    #: compile failure rides along as ``{"kind": "error", "error": ...}``
    #: without failing the append itself.
    compiled: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        """True when the append was applied to the client's session."""
        return self.error is None


@dataclass(frozen=True)
class CloseReport:
    """What :meth:`SessionPool.close` managed to save — and what it
    lost.  ``close()`` used to swallow both: a worker wedged in
    ``flush_to_store`` was ``terminate()``d mid-write and its queued
    flush errors vanished with its queue."""

    #: Store-publication failures reported by workers while closing
    #: (including any still queued from earlier drains).
    flush_errors: tuple[str, ...] = ()
    #: Clients whose sessions missed the flush deadline (or lived on a
    #: worker that had to be killed); their *drained* results were
    #: delivered, but their latest state is not in the store.
    unflushed_clients: tuple[str, ...] = ()
    #: Workers that never acknowledged the close and were terminated.
    terminated_workers: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """True when every session flushed and every worker exited."""
        return not (
            self.flush_errors or self.unflushed_clients or self.terminated_workers
        )


@dataclass(frozen=True)
class PoolStats:
    """Counters over the pool's lifetime (monotonic until ``close``)."""

    pool_size: int
    queue_depth: int
    n_submitted: int
    n_completed: int
    n_failed: int
    n_clients: int


def _exit_on_sigterm(signum: int, frame: Any) -> None:
    """SIGTERM → ``SystemExit``: unwind instead of dying on the spot.

    ``Process.terminate()`` sends SIGTERM, whose *default* disposition
    kills the process without running ``finally`` blocks — a worker
    terminated inside ``with store_lock.held()`` used to leave the lock
    to kernel cleanup mid-write.  Raising ``SystemExit`` lets the
    ``finally`` chain release the lock (an in-progress ``flock`` wait is
    interrupted by the signal too), so escalated shutdown degrades to an
    orderly exit whenever the worker is in Python code at all.
    """
    raise SystemExit(143)


def _worker_main(
    worker_id: int,
    options: PipelineOptions,
    inbox: Any,
    outbox: Any,
) -> None:
    """Worker-process loop: host sessions, apply appends, answer drains.

    Module-level so it pickles by reference under every multiprocessing
    start method.  Messages are processed strictly in queue order, which
    is what makes per-client ordering and the drain barrier correct: a
    drain sentinel enqueued after a client's batches is necessarily
    handled after them.
    """
    with _swallow_os_error():
        signal.signal(signal.SIGTERM, _exit_on_sigterm)
    sessions: dict[str, InterfaceSession] = {}
    while True:
        message = inbox.get()
        op = message[0]
        if op == _OP_APPEND:
            _, seq, client_id, batch, want_result, compile_mode = message
            started = time.perf_counter()
            try:
                session = sessions.get(client_id)
                if session is None:
                    session = InterfaceSession(options=options)
                    sessions[client_id] = session
                result = session.append_batch(batch)
                compiled = None
                if compile_mode is not None:
                    # compile inside the worker — the incremental
                    # compiler's artifacts live with the session, so the
                    # steady-state cost is the dirty part of the page; a
                    # compile failure must not fail the (already applied)
                    # append
                    try:
                        if compile_mode == "patch":
                            compiled = session.compile_patch()
                        else:
                            compiled = {
                                "kind": "page_html",
                                "html": session.compile(),
                            }
                    except Exception as exc:
                        compiled = {
                            "kind": "error",
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                outbox.put(
                    AppendAck(
                        client_id=client_id,
                        seq=seq,
                        worker=worker_id,
                        n_queries=len(session),
                        n_widgets=len(result.interface.widgets),
                        seconds=time.perf_counter() - started,
                        result=result if want_result else None,
                        compiled=compiled,
                    )
                )
            except BaseException as exc:  # the pool must survive bad batches
                outbox.put(
                    AppendAck(
                        client_id=client_id,
                        seq=seq,
                        worker=worker_id,
                        n_queries=len(sessions.get(client_id) or ()),
                        n_widgets=0,
                        seconds=time.perf_counter() - started,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
        elif op == _OP_DRAIN:
            _, seq = message
            results: dict[str, GenerationResult] = {}
            flush_errors: list[str] = []
            for client_id, session in sessions.items():
                if session.result is None:
                    continue
                try:
                    session.flush_to_store()  # no-op without a cache_dir
                except Exception as exc:
                    # publication is an optimisation; the results are not
                    flush_errors.append(f"{client_id}: {exc}")
                results[client_id] = session.result
            outbox.put(("drained", worker_id, seq, results, flush_errors))
        elif op == _OP_RELEASE:
            _, client_ids = message
            for client_id in client_ids:
                sessions.pop(client_id, None)
        elif op == _OP_CLOSE:
            _, flush_deadline = message
            outbox.put(_close_worker(worker_id, sessions, flush_deadline))
            break
        elif op == _OP_STOP:
            break


def _close_worker(
    worker_id: int,
    sessions: dict[str, InterfaceSession],
    flush_deadline: float,
) -> tuple[str, int, list[str], list[str]]:
    """Flush every session to the store under a deadline.

    The flush runs on a *daemon* thread and the worker waits at most
    ``flush_deadline`` seconds: a flush wedged on the store lock (or a
    hung daemon socket) can no longer wedge ``close()`` — the worker
    reports which clients it could not publish and exits; the wedged
    thread dies with the process, and process exit releases any held
    ``flock``.  Returns the ``("closed", ...)`` outbox message.
    """
    close_errors: list[str] = []
    flushed: set[str] = set()
    done = threading.Event()

    def _flush_all() -> None:
        for client_id, session in list(sessions.items()):
            if session.result is not None:
                try:
                    session.flush_to_store()  # no-op without a cache_dir
                except Exception as exc:
                    close_errors.append(f"{client_id}: {exc}")
            flushed.add(client_id)
        done.set()

    thread = threading.Thread(
        target=_flush_all, daemon=True, name=f"repro-close-flush-{worker_id}"
    )
    thread.start()
    finished = done.wait(flush_deadline)
    unflushed = [] if finished else sorted(set(sessions) - set(flushed))
    return ("closed", worker_id, list(close_errors), unflushed)


@contextlib.contextmanager
def _swallow_os_error() -> Any:
    """Signal registration is best-effort (restricted environments)."""
    try:
        yield
    except (OSError, ValueError):  # pragma: no cover - platform-specific
        pass


def _shard_of(client_id: str, pool_size: int) -> int:
    """Stable client→worker routing (process- and run-independent)."""
    return zlib.crc32(client_id.encode("utf-8")) % pool_size


class SessionPool:
    """Serve many concurrent :class:`InterfaceSession` clients across
    worker processes against one shared store.

    Args:
        options: pipeline configuration shared by every hosted session;
            set ``options.cache_dir`` to back all workers by one
            :class:`~repro.cache.store.GraphStore`.
        pool_size: number of worker processes (>= 1).
        queue_depth: per-worker inbox bound, in batches (>= 1); this is
            the backpressure knob — :meth:`submit` blocks when the target
            shard's queue is full.
        mp_context: a :mod:`multiprocessing` start-method name
            (``"fork"``/``"spawn"``/``"forkserver"``) or ``None`` for the
            platform default.

    The pool is a context manager; leaving the ``with`` block (or calling
    :meth:`close`) stops the workers.  Observers are deliberately not
    accepted: like ``generate_many(workers=N)``, hook objects hold
    process-local state and cannot follow an append into a worker.
    """

    def __init__(
        self,
        options: PipelineOptions | None = None,
        pool_size: int = 2,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        mp_context: str | None = None,
    ) -> None:
        if pool_size < 1:
            raise ServiceError(f"pool_size must be >= 1, got {pool_size}")
        if queue_depth < 1:
            raise ServiceError(f"queue_depth must be >= 1, got {queue_depth}")
        self.options = options or PipelineOptions()
        self.pool_size = pool_size
        self.queue_depth = queue_depth
        self._ctx = mp.get_context(mp_context)
        self._seq = itertools.count()
        self._n_submitted = 0
        self._acks: list[AppendAck] = []
        # error acks not yet reported by a drain() (per-client consumption)
        self._unreported_failures: list[AppendAck] = []
        # non-ack messages (drain replies) popped by _collect_ready while
        # a concurrent drain() was waiting for them — never discard these
        self._stashed_replies: list[tuple[Any, ...]] = []
        self._flush_errors: list[str] = []
        self._clients: set[str] = set()
        self._closed = False
        self._close_report: CloseReport | None = None
        # while a streaming serve() is active, appends carry their full
        # GenerationResult back in the ack (see AppendAck.result)
        self._attach_results = False
        # while a serve(compile=...) is active, appends also carry the
        # compiled interface (page or structural patch; AppendAck.compiled)
        self._compile_mode: str | None = None
        self._outbox = self._ctx.Queue()
        self._inboxes = [
            self._ctx.Queue(maxsize=queue_depth) for _ in range(pool_size)
        ]
        self._workers = [
            self._ctx.Process(
                target=_worker_main,
                args=(worker_id, self.options, self._inboxes[worker_id], self._outbox),
                daemon=True,
                name=f"repro-session-worker-{worker_id}",
            )
            for worker_id in range(pool_size)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    async def __aenter__(self) -> "SessionPool":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await asyncio.to_thread(self.close)

    def close(self, flush_timeout: float = 10.0) -> CloseReport:
        """Stop every worker and release the queues.  Idempotent.

        Pending (submitted but undrained) work is still processed — the
        close sentinel queues behind it — and each worker publishes its
        sessions to the shared store under ``flush_timeout`` seconds
        before exiting; undrained *results* are still discarded, so call
        :meth:`drain` first to keep them.

        Unlike the old fire-and-forget teardown, nothing is swallowed:
        the returned :class:`CloseReport` carries every flush error the
        workers managed to queue (including ones from earlier drains
        that no drain call collected), the clients whose sessions missed
        the flush deadline, and any worker that had to be terminated.  A
        terminated worker now exits by ``SystemExit`` (SIGTERM handler),
        so a held store lock is released by its ``finally`` block rather
        than left to kernel cleanup mid-write.
        """
        import queue as queue_mod

        if self._closed:
            return self._close_report or CloseReport()
        self._closed = True
        awaiting: set[int] = set()
        terminated: list[str] = []
        unflushed: set[str] = set()
        close_errors: list[str] = []
        for worker_id, (inbox, worker) in enumerate(
            zip(self._inboxes, self._workers)
        ):
            if not worker.is_alive():
                # died before close: its queue owes us no reply, and
                # whatever sessions lived there were never published
                unflushed.update(self._clients_of(worker_id))
                continue
            try:
                # bounded put: a dead or wedged worker leaves its queue
                # full forever, and close() must never hang on it
                inbox.put((_OP_CLOSE, flush_timeout), timeout=5)
                awaiting.add(worker_id)
            except Exception:  # queue.Full, or a queue already torn down
                self._terminate_worker(worker_id, terminated, unflushed)
        deadline = time.monotonic() + flush_timeout + 5.0
        while awaiting and time.monotonic() < deadline:
            try:
                message = self._outbox.get(timeout=0.2)
            except queue_mod.Empty:
                for worker_id in sorted(awaiting):
                    if not self._workers[worker_id].is_alive():
                        # crashed before answering: its sessions are gone
                        awaiting.discard(worker_id)
                        unflushed.update(self._clients_of(worker_id))
                continue
            if isinstance(message, AppendAck):
                self._record_ack(message)
            elif message[0] == "closed":
                _, worker_id, worker_errors, worker_unflushed = message
                awaiting.discard(worker_id)
                close_errors.extend(worker_errors)
                unflushed.update(worker_unflushed)
            elif message[0] == "drained":
                # a drain reply nobody collected: keep its flush errors
                self._flush_errors.extend(message[4])
        for worker_id in sorted(awaiting):
            self._terminate_worker(worker_id, terminated, unflushed)
        for worker in self._workers:
            worker.join(timeout=10)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.kill()
                worker.join(timeout=5)
        for queue in (*self._inboxes, self._outbox):
            queue.close()
        self._flush_errors.extend(close_errors)
        self._close_report = CloseReport(
            flush_errors=tuple(close_errors),
            unflushed_clients=tuple(sorted(unflushed)),
            terminated_workers=tuple(terminated),
        )
        return self._close_report

    def _clients_of(self, worker_id: int) -> list[str]:
        """Every known client sharded onto ``worker_id``."""
        return [
            client_id
            for client_id in self._clients
            if _shard_of(client_id, self.pool_size) == worker_id
        ]

    def _terminate_worker(
        self, worker_id: int, terminated: list[str], unflushed: set[str]
    ) -> None:
        worker = self._workers[worker_id]
        worker.terminate()
        terminated.append(worker.name)
        # whatever lived there was not (necessarily) published
        unflushed.update(self._clients_of(worker_id))

    def _require_open(self) -> None:
        if self._closed:
            raise ServiceError("the pool is closed")
        dead = [w.name for w in self._workers if not w.is_alive()]
        if dead:
            raise ServiceError(f"worker process(es) died: {', '.join(dead)}")

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def submit(self, client_id: str, batch: Any) -> int:
        """Enqueue one batch for one client; returns the submit sequence.

        ``batch`` is anything :meth:`InterfaceSession.append_batch`
        accepts: a raw SQL string, a parsed AST, or an iterable of either.
        Batches of one client are applied in submit order (they share a
        shard, and shards process in FIFO order).  **Blocks** while the
        client's shard queue is full — that is the backpressure: a caller
        reading from a firehose is throttled to what the workers sustain.

        Raises:
            ServiceError: when the pool is closed or a worker died.
        """
        self._require_open()
        seq = next(self._seq)
        shard = _shard_of(client_id, self.pool_size)
        self._inboxes[shard].put(
            (
                _OP_APPEND,
                seq,
                client_id,
                batch,
                self._attach_results,
                self._compile_mode,
            )
        )
        self._n_submitted += 1
        self._clients.add(client_id)
        return seq

    def pending(self) -> int:
        """Batches submitted but not yet acknowledged (approximate while
        workers are mid-append; exact after :meth:`drain`)."""
        self._collect_ready()
        return self._n_submitted - len(self._acks)

    def _record_ack(self, ack: AppendAck) -> None:
        self._acks.append(ack)
        if ack.error is not None:
            self._unreported_failures.append(ack)

    def _collect_ready(self) -> None:
        """Drain the outbox of already-available acks without blocking.

        A drain reply popped here (stats()/acks() racing a concurrent
        :meth:`drain`, e.g. a monitor polling while ``serve`` drains in a
        worker thread) is stashed, not dropped — the waiting drain would
        otherwise hang forever on a reply that already left the queue.
        """
        import queue as queue_mod

        while True:
            try:
                message = self._outbox.get_nowait()
            except queue_mod.Empty:
                return
            if isinstance(message, AppendAck):
                self._record_ack(message)
            else:
                self._stashed_replies.append(message)

    # ------------------------------------------------------------------
    # synchronisation
    # ------------------------------------------------------------------
    def drain(
        self, strict: bool = True, clients: Iterable[str] | None = None
    ) -> dict[str, GenerationResult]:
        """Wait for every submitted batch, then return per-client results.

        Sends a drain sentinel down each shard (FIFO guarantees it runs
        after all pending appends) and gathers the workers' replies.  Each
        worker also publishes its sessions to the shared store first, when
        one is configured.  The pool stays usable afterwards — sessions
        keep their state and later submits keep appending.

        Args:
            strict: raise :class:`ServiceError` if any *append* failed
                (the per-client messages ride on the exception's
                ``failures``).  With ``strict=False`` failures are only
                visible through :meth:`acks` / :meth:`stats`.  Store-flush
                failures never gate result delivery — publication is an
                optimisation — and are reported via :meth:`flush_errors`.
            clients: restrict *failure* reporting/consumption to these
                client ids; other clients' failures stay pending for
                their owner's drain (the ``generate_many(pool=...)``
                contract on a shared pool).  Results are always the full
                barrier's — every client's latest.

        Returns:
            The latest :class:`GenerationResult` per client, for every
            client that has at least one successful append.

        Raises:
            ServiceError: per ``strict``, or when a worker died.
        """
        import queue as queue_mod

        self._require_open()
        drain_seq = next(self._seq)
        for inbox in self._inboxes:
            inbox.put((_OP_DRAIN, drain_seq))
        results: dict[str, GenerationResult] = {}
        replied = 0
        while replied < self.pool_size:
            if self._stashed_replies:
                message: Any = self._stashed_replies.pop(0)
            else:
                try:
                    message = self._outbox.get(timeout=1.0)
                except queue_mod.Empty:
                    # a dead worker mid-drain would otherwise hang us here
                    self._require_open()
                    continue
            if isinstance(message, AppendAck):
                self._record_ack(message)
                continue
            kind, _worker_id, seq, worker_results, worker_flush_errors = message
            if kind == "drained" and seq == drain_seq:
                replied += 1
                results.update(worker_results)
                self._flush_errors.extend(worker_flush_errors)
            # a reply for an older drain (stashed after its waiter gave
            # up) is obsolete; drop it
        client_filter = set(clients) if clients is not None else None
        reported = [
            ack
            for ack in self._unreported_failures
            if client_filter is None or ack.client_id in client_filter
        ]
        self._unreported_failures = [
            ack for ack in self._unreported_failures if ack not in reported
        ]
        if strict and reported:
            raise ServiceError(
                f"{len(reported)} append(s) failed in the pool",
                failures=[
                    f"{ack.client_id} (batch #{ack.seq}): {ack.error}"
                    for ack in reported
                ],
            )
        return results

    def flush_errors(self) -> list[str]:
        """Store-publication failures observed by drains so far.  These
        never fail a drain (the results exist regardless); a caller that
        needs durability checks here."""
        return list(self._flush_errors)

    def release(self, client_ids: Iterable[str]) -> None:
        """Drop the named clients' sessions from their workers.

        Freed memory, not a barrier: in-flight appends for a released
        client that are still queued will transparently start a fresh
        session.  Call after :meth:`drain` for a clean hand-off.
        """
        self._require_open()
        ids = list(client_ids)
        by_shard: dict[int, list[str]] = {}
        for client_id in ids:
            by_shard.setdefault(_shard_of(client_id, self.pool_size), []).append(
                client_id
            )
        for shard, shard_ids in by_shard.items():
            self._inboxes[shard].put((_OP_RELEASE, shard_ids))
        self._clients.difference_update(ids)

    # ------------------------------------------------------------------
    # async serving
    # ------------------------------------------------------------------
    async def serve(
        self,
        stream: Any,
        drain: bool = True,
        strict: bool = True,
        on_result: Callable[[AppendAck], Any] | None = None,
        compile: str | None = None,
    ) -> dict[str, GenerationResult]:
        """Consume a stream of ``(client_id, batch)`` events and serve
        them through the pool; the async replacement for per-session
        ``astream`` loops.

        ``stream`` may be a sync or an async iterable.  Every submit runs
        in a worker thread, so when a shard queue is full the *stream* is
        what stalls (bounded-queue backpressure) while the event loop
        stays responsive for other tasks.  With ``drain=True`` (default)
        the pool is drained after the stream ends and the per-client
        results are returned; ``drain=False`` returns an empty dict and
        leaves synchronisation to the caller.

        With ``on_result``, serving is **live**: the callback (sync or
        async, invoked on the event loop) receives each append's
        :class:`AppendAck` — with ``ack.result`` carrying the client's
        updated interface — *as the worker finishes it*, not at the
        drain barrier.  Every ack for a batch this call submitted is
        delivered before the final drain runs, so a subscriber always
        sees the live updates before the caller sees the drained
        results.  Failed appends are delivered too (``ack.ok`` false,
        ``ack.result`` ``None``) so a subscriber can surface them
        immediately even under ``strict=False``.

        With ``compile="patch"`` (or ``"page"``), each append is also
        compiled *in the worker* and the ack's ``compiled`` field carries
        the structural interface patch (or the full page HTML) — the
        opt-in that turns a serve into interface streaming.  Workers keep
        their sessions' incremental compilers across appends, so the
        steady-state compile cost is the dirty part of the page, and the
        emitted patch stream folds (:func:`repro.compiler.incremental.apply_patch`)
        into pages byte-identical to a full recompile.

        Raises:
            ServiceError: as :meth:`submit` / :meth:`drain`, and for an
                unknown ``compile`` mode.
        """
        if compile not in (None, "page", "patch"):
            raise ServiceError(
                f"compile must be 'page', 'patch', or None, got {compile!r}"
            )
        dispatched = 0

        async def _dispatch_new() -> None:
            """Deliver any newly arrived acks, in arrival order."""
            nonlocal dispatched
            if on_result is None:
                return
            self._collect_ready()
            while dispatched < len(self._acks):
                ack = self._acks[dispatched]
                dispatched += 1
                outcome = on_result(ack)
                if inspect.isawaitable(outcome):
                    await outcome

        if on_result is not None:
            self._attach_results = True
            dispatched = len(self._acks)  # past acks are not this serve's
        self._compile_mode = compile
        try:
            if hasattr(stream, "__aiter__"):
                async for client_id, batch in stream:
                    await asyncio.to_thread(self.submit, client_id, batch)
                    await _dispatch_new()
            else:
                for client_id, batch in stream:
                    await asyncio.to_thread(self.submit, client_id, batch)
                    await _dispatch_new()
            if on_result is not None:
                # deliver every outstanding ack *before* the drain barrier
                while self.pending() > 0:
                    await asyncio.to_thread(self._wait_for_message, 0.2)
                    await _dispatch_new()
                    self._require_open()
                await _dispatch_new()
        finally:
            self._attach_results = False
            self._compile_mode = None
        if not drain:
            return {}
        return await asyncio.to_thread(self.drain, strict)

    def _wait_for_message(self, timeout: float) -> None:
        """Block up to ``timeout`` for one outbox message and absorb it
        (acks recorded, drain replies stashed) — the blocking counterpart
        of :meth:`_collect_ready` for streaming waits."""
        import queue as queue_mod

        try:
            message = self._outbox.get(timeout=timeout)
        except queue_mod.Empty:
            return
        if isinstance(message, AppendAck):
            self._record_ack(message)
        else:
            self._stashed_replies.append(message)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def acks(self) -> list[AppendAck]:
        """All append acknowledgements received so far (submit order is
        not guaranteed across clients; per client it is)."""
        self._collect_ready()
        return list(self._acks)

    def stats(self) -> PoolStats:
        """Lifetime counters (see :class:`PoolStats`)."""
        self._collect_ready()
        n_failed = sum(1 for ack in self._acks if ack.error is not None)
        return PoolStats(
            pool_size=self.pool_size,
            queue_depth=self.queue_depth,
            n_submitted=self._n_submitted,
            n_completed=len(self._acks) - n_failed,
            n_failed=n_failed,
            n_clients=len(self._clients),
        )

    def unique_client_id(self, prefix: str = "client") -> str:
        """A client id no earlier submit of this pool has used (for
        callers like ``generate_many`` that invent ids per call)."""
        while True:
            candidate = f"{prefix}-{next(self._seq)}"
            if candidate not in self._clients:
                return candidate
