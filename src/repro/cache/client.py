"""Socket RPC client for a remote :class:`~repro.cache.store.GraphStore`
daemon.

Per-operation ``flock`` serialises every store write across the whole
fleet — each prune, each derived-table save queues on one advisory file
lock, and per-process recency batching makes the cross-process LRU only
approximate.  The store daemon (:mod:`repro.service.daemon`) removes
both costs: exactly one process owns the segment files, every other
process talks to it over a unix-domain socket, and the daemon's single
in-process lock replaces the fleet-wide ``flock`` convoy.  Because the
daemon sees *every* load, recency is exact at each eviction decision,
and the shared diff-memo/proof tables it serves are warmed by all
tenants at once.

This module is the client half: the wire protocol (length-prefixed JSON
header + raw payload bytes) and :class:`StoreClient`, the low-level
request/response socket wrapper.  ``GraphStore(root, remote=socket)``
builds on it — the store keeps its exact public API and merely moves
the *byte* operations (record get/put, prune, stats) over the socket;
encoding and decoding stay client-side, so the daemon never
deserialises a graph and its lock hold times stay tiny.

Failure semantics are deliberately fail-open: a client that cannot
reach the daemon (never started, crashed, stale socket file) falls back
to direct in-process store access — the cache degrades to the previous
per-op-``flock`` behaviour instead of taking requests down.  Only a
*quota* refusal does not fall back: the daemon said no, and routing
around it would defeat the quota.

Wire format (both directions)::

    [header_len u32 BE][header JSON utf-8][payload bytes][extra bytes]

``header["payload_len"]`` / ``header["extra_len"]`` give the two binary
segment lengths (both default 0).  Requests carry ``op``, ``client``,
and op-specific fields; responses carry ``ok`` plus op-specific fields.
``ok: false`` is reserved for protocol, usage, and quota errors —
domain outcomes ("key not found", "derived save skipped: no graph
entry") ride on ``ok: true`` responses with ``found``/``stored`` flags.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import threading
from typing import Any

from repro.errors import CacheError

__all__ = [
    "DaemonUnavailable",
    "QuotaExceeded",
    "StoreClient",
    "read_message",
    "write_message",
]

#: Upper bound on a header, as a sanity guard against framing bugs and
#: foreign writers; real headers are well under a kilobyte.
MAX_HEADER_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class DaemonUnavailable(CacheError):
    """Transport-level failure talking to the store daemon: the socket
    is missing, the connection was refused or dropped, or a frame could
    not be read.  :class:`~repro.cache.store.GraphStore` reacts by
    failing open to direct in-process store access."""


class QuotaExceeded(CacheError):
    """The daemon refused the operation because this client exhausted
    its request or byte quota.  Deliberately *not* a transport failure:
    the caller must not fall back to direct store access (that would
    route around the quota) — loads degrade to cache misses, saves
    surface the error."""


def write_message(
    sock: socket.socket,
    header: dict[str, Any],
    payload: bytes = b"",
    extra: bytes = b"",
) -> None:
    """Send one framed message (header sizes are filled in here)."""
    header = dict(header)
    header["payload_len"] = len(payload)
    header["extra_len"] = len(extra)
    raw = json.dumps(header, sort_keys=True).encode("utf-8")
    sock.sendall(_LEN.pack(len(raw)) + raw + payload + extra)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock: socket.socket) -> tuple[dict[str, Any], bytes, bytes]:
    """Read one framed message; returns ``(header, payload, extra)``.

    Raises:
        ConnectionError: on EOF mid-message (a clean EOF *before* any
            byte of a message raises :class:`EOFError` instead, so
            servers can tell "client hung up between requests" from a
            torn frame).
        ValueError: for an oversized or malformed header.
    """
    first = sock.recv(_LEN.size)
    if not first:
        raise EOFError("connection closed")
    while len(first) < _LEN.size:
        more = sock.recv(_LEN.size - len(first))
        if not more:
            raise ConnectionError("peer closed the connection mid-message")
        first += more
    (header_len,) = _LEN.unpack(first)
    if header_len > MAX_HEADER_BYTES:
        raise ValueError(f"header length {header_len} exceeds protocol maximum")
    try:
        header = json.loads(_recv_exact(sock, header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"malformed message header: {exc}") from exc
    if not isinstance(header, dict):
        raise ValueError(f"message header must be an object, got {type(header)}")
    payload = _recv_exact(sock, int(header.get("payload_len", 0)))
    extra = _recv_exact(sock, int(header.get("extra_len", 0)))
    return header, payload, extra


class StoreClient:
    """One persistent request/response connection to a store daemon.

    Args:
        socket_path: the daemon's unix-domain socket.
        client_id: name this client reports for per-client metrics and
            quotas; defaults to ``pid@hostname``, which groups a worker
            process's traffic under one meter.
        timeout: per-operation socket timeout in seconds.

    Thread-safe through a per-instance mutex (one in-flight request at a
    time — the protocol is strictly request/response).  A dropped
    connection is re-established once per call, so a daemon restart is
    invisible to the caller as long as the new daemon is up before the
    retry; a second failure raises :class:`DaemonUnavailable`.
    """

    def __init__(
        self,
        socket_path: str,
        client_id: str | None = None,
        timeout: float = 10.0,
    ) -> None:
        self.socket_path = str(socket_path)
        self.client_id = client_id or f"{os.getpid()}@{socket.gethostname()}"
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._mutex = threading.Lock()

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise DaemonUnavailable(
                f"cannot reach store daemon at {self.socket_path}: {exc}"
            ) from exc
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None

    def close(self) -> None:
        """Close the connection (the next call reconnects).  Idempotent."""
        with self._mutex:
            self._drop()

    def ping(self) -> dict[str, Any]:
        """Round-trip a no-op; returns the daemon's identity header
        (pid, store root, uptime).  Raises :class:`DaemonUnavailable`
        when no daemon answers."""
        header, _payload = self.call("ping")
        return header

    def call(
        self,
        op: str,
        payload: bytes = b"",
        extra: bytes = b"",
        **fields: Any,
    ) -> tuple[dict[str, Any], bytes]:
        """Send one request and return ``(response_header, payload)``.

        Raises:
            DaemonUnavailable: transport failure after one reconnect
                attempt.
            QuotaExceeded: the daemon refused for quota.
            CacheError: any other daemon-reported error.
        """
        request = {"op": op, "client": self.client_id, **fields}
        with self._mutex:
            last_exc: Exception | None = None
            for attempt in (0, 1):
                if self._sock is None:
                    self._sock = self._connect()
                try:
                    write_message(self._sock, request, payload, extra)
                    response, resp_payload, _ = read_message(self._sock)
                    break
                except (OSError, EOFError, ValueError) as exc:
                    # a dead daemon (or one restarted under us) shows up
                    # as a send/recv failure: reconnect once, then give up
                    self._drop()
                    last_exc = exc
            else:
                raise DaemonUnavailable(
                    f"store daemon at {self.socket_path} did not answer "
                    f"{op!r}: {last_exc}"
                ) from last_exc
        if not response.get("ok"):
            error = str(response.get("error", "unknown daemon error"))
            if response.get("code") == "quota":
                raise QuotaExceeded(error)
            raise CacheError(f"store daemon refused {op!r}: {error}")
        return response, resp_payload
