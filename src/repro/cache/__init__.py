"""Persistence and caching for mined interaction graphs.

Mining dominates generation cost; the graph it produces is a pure function
of (parsed log, options).  This package makes that artefact durable:

* :mod:`repro.cache.serialize` — versioned JSON/JSONL encoding of
  :class:`~repro.graph.interaction.InteractionGraph` +
  :class:`~repro.graph.build.BuildStats` (``graph_to_dict`` /
  ``save_graph`` and their inverses);
* :mod:`repro.cache.fingerprint` — process-stable SHA-256 fingerprints of
  a parsed log and of the mining-relevant options;
* :mod:`repro.cache.store` — :class:`GraphStore`, a content-addressed
  directory of cached graphs keyed by ``(log_fingerprint,
  options_fingerprint)`` with load/save/invalidate.

The pipeline consumes it through ``PipelineOptions.cache_dir`` (see
:class:`~repro.api.stages.CacheStage`): on a hit the Mine stage is skipped
entirely, and :meth:`repro.api.session.InterfaceSession.resume` restores a
session in a new process from a saved snapshot.
"""

from repro.cache.fingerprint import log_fingerprint, options_fingerprint
from repro.cache.serialize import (
    FORMAT_VERSION,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    node_from_dict,
    node_to_dict,
    save_graph,
)
from repro.cache.store import GraphStore

__all__ = [
    "FORMAT_VERSION",
    "GraphStore",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "node_to_dict",
    "node_from_dict",
    "log_fingerprint",
    "options_fingerprint",
]
