"""Persistence and caching for mined interaction graphs.

Mining dominates generation cost; the graph it produces is a pure function
of (parsed log, options).  This package makes that artefact durable:

* :mod:`repro.cache.serialize` — versioned JSON/JSONL encoding of
  :class:`~repro.graph.interaction.InteractionGraph` +
  :class:`~repro.graph.build.BuildStats` (``graph_to_dict`` /
  ``save_graph`` and their inverses), plus the derived *widget set*
  (``widgets_to_dict`` / ``save_widgets``: widgets encode as diff-table
  indices and decode by re-running the deterministic ``pickWidget``);
* :mod:`repro.cache.fingerprint` — process-stable SHA-256 fingerprints of
  a parsed log and of the mining-relevant options, with
  :class:`LogFingerprinter` for incrementally growing logs;
* :mod:`repro.cache.format` / :mod:`repro.cache.blockstore` — the packed
  on-disk format: CRC-checksummed, length-prefixed, block-compressed
  record framing (:mod:`~repro.cache.format`) and the append-only
  per-table segment files built on it (:class:`Segment` /
  :class:`SegmentReader`: mmap + footer-index lookups, tombstone
  eviction, threshold compaction);
* :mod:`repro.cache.store` — :class:`GraphStore`, a content-addressed
  directory holding four tables per ``(log_fingerprint,
  options_fingerprint)`` key — graph, widget set, closure proofs, diff
  memo — with load/save/invalidate, optional LRU size caps
  (``max_bytes``/``max_entries``, ``stats()``, ``prune()``), and two
  interchangeable layouts: packed segments (the default) and one JSON
  file per record (``format="json"``, byte-identical payloads,
  ``migrate()`` converts in place either way).

The pipeline consumes it through ``PipelineOptions.cache_dir`` (see
:class:`~repro.api.stages.CacheStage`): on a graph hit the Mine stage is
skipped, on a full hit (graph + widget set) Map and Merge are skipped
too, and :meth:`repro.api.session.InterfaceSession.resume` restores a
session in a new process from a saved snapshot.
"""

from repro.cache.blockstore import Segment, SegmentReader, SegmentStats
from repro.cache.fingerprint import (
    LogFingerprinter,
    log_fingerprint,
    options_fingerprint,
)
from repro.cache.serialize import (
    FORMAT_VERSION,
    diff_memo_from_dict,
    diff_memo_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_diff_memo,
    load_graph,
    load_widgets,
    node_from_dict,
    node_to_dict,
    save_diff_memo,
    save_graph,
    save_widgets,
    widgets_from_dict,
    widgets_to_dict,
)
from repro.cache.store import GraphStore

__all__ = [
    "FORMAT_VERSION",
    "GraphStore",
    "Segment",
    "SegmentReader",
    "SegmentStats",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "widgets_to_dict",
    "widgets_from_dict",
    "save_widgets",
    "load_widgets",
    "diff_memo_to_dict",
    "diff_memo_from_dict",
    "save_diff_memo",
    "load_diff_memo",
    "node_to_dict",
    "node_from_dict",
    "LogFingerprinter",
    "log_fingerprint",
    "options_fingerprint",
]
