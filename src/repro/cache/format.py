"""On-disk framing for the packed segment store (``*.seg`` files).

A segment is one append-only record log per store table.  Its layout
(see ``docs/store_format.md`` for the full spec and diagram)::

    MAGIC (8 bytes)
    META frame      -- versioned header: structured JSON metadata
    frame*          -- RECORD / TOMBSTONE / TOUCH / FOOTER / TRAILER

Every frame is length-prefixed and checksummed::

    [kind: u8] [body_len: u32 LE] [body] [crc: u64 LE]

so a reader can walk the file frame by frame and stop at the first
truncated or corrupt one — everything before a crash is still readable,
everything after loads as a miss, never as a wrong answer.

Frame kinds:

* ``RECORD`` — one table entry: key, append timestamp, and the payload
  block-compressed with zlib.  The payload bytes are exactly what the
  JSON codec writes to a standalone file, which is what makes the packed
  and JSON formats byte-identical interchange formats.
* ``BLOCK`` — many records sharing one zlib block: a struct-packed
  directory (count, key/payload lengths, timestamps) followed by the
  concatenated keys and payloads, compressed as one unit.  Bulk writers
  (migration, compaction) emit these so a warm load pays one
  decompression per ~64 records instead of one per record; the footer
  addresses a blocked record as ``(block offset, slot)``.
* ``TOMBSTONE`` — the key's entry is deleted (LRU eviction appends one
  of these instead of rewriting files; compaction reclaims the space).
* ``TOUCH`` — recency bump for a key (the packed store's equivalent of
  the JSON layout's mtime ``os.utime``), batched by the store.
* ``FOOTER`` — the segment's index: a zlib-compressed, sorted
  ``key -> (frame offset, frame length, slot, timestamp)`` table, so a
  lookup is an mmap + bisect + single-block decode instead of a
  directory walk (``slot`` >= 0 addresses a record inside a BLOCK).
* ``TRAILER`` — fixed-size locator at EOF pointing at the newest FOOTER
  and recording how much of the file that footer covers; frames after
  the covered length are the *tail* and are replayed sequentially.

The 64-bit record checksum follows SNIPPETS' zs format in width but is
computed as ``(crc32(data) << 32) | adler32(data)`` — two independent
C-speed stdlib checksums rather than a pure-Python CRC-64, which would
dominate the cost of every block read.  The goal is corruption
*detection* for cache integrity, not cryptographic authentication.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Iterator, NamedTuple

from repro.errors import CacheError

__all__ = [
    "SEGMENT_MAGIC",
    "SEGMENT_VERSION",
    "KIND_META",
    "KIND_RECORD",
    "KIND_TOMBSTONE",
    "KIND_TOUCH",
    "KIND_FOOTER",
    "KIND_TRAILER",
    "KIND_BLOCK",
    "FRAME_OVERHEAD",
    "TRAILER_FRAME_LEN",
    "SegmentFormatError",
    "IndexEntry",
    "RecordBody",
    "BlockBody",
    "FooterBody",
    "TrailerBody",
    "crc64",
    "encode_uvarint",
    "decode_uvarint",
    "encode_frame",
    "read_frame",
    "iter_frames",
    "encode_header",
    "read_header",
    "encode_record",
    "decode_record_body",
    "decompress_record",
    "encode_block",
    "decode_block_body",
    "encode_marker",
    "decode_marker_body",
    "encode_footer",
    "decode_footer_body",
    "encode_trailer",
    "decode_trailer_body",
]

#: First 8 bytes of every segment file.  The trailing newline makes an
#: accidental ``cat`` obvious and guarantees a text editor mangles it.
SEGMENT_MAGIC = b"RPRSEG1\n"

#: Bump on any incompatible change to the segment layout.  Readers treat
#: a foreign version as an empty (unreadable) segment — every lookup is a
#: miss — and writers refuse to append to it.
SEGMENT_VERSION = 1

KIND_META = 1
KIND_RECORD = 2
KIND_TOMBSTONE = 3
KIND_TOUCH = 4
KIND_FOOTER = 5
KIND_TRAILER = 6
KIND_BLOCK = 7

_KNOWN_KINDS = frozenset(
    (
        KIND_META,
        KIND_RECORD,
        KIND_TOMBSTONE,
        KIND_TOUCH,
        KIND_FOOTER,
        KIND_TRAILER,
        KIND_BLOCK,
    )
)

_LEN_STRUCT = struct.Struct("<I")
_CRC_STRUCT = struct.Struct("<Q")
_TS_STRUCT = struct.Struct("<d")
_TRAILER_STRUCT = struct.Struct("<QQQ")
_BLOCK_COUNT_STRUCT = struct.Struct("<I")

#: bytes of framing around every body: kind (1) + length (4) + crc (8)
FRAME_OVERHEAD = 1 + _LEN_STRUCT.size + _CRC_STRUCT.size

#: a TRAILER frame is fixed-size so readers can find it at EOF
TRAILER_FRAME_LEN = FRAME_OVERHEAD + _TRAILER_STRUCT.size


class SegmentFormatError(CacheError):
    """A frame or header that cannot be decoded (truncation, corruption,
    foreign version).  Stores treat it as a miss, never as data."""


class IndexEntry(NamedTuple):
    """One live record in a segment's index."""

    key: str
    #: absolute file offset of the RECORD or BLOCK frame
    offset: int
    #: total frame length in bytes (framing included)
    frame_len: int
    #: recency timestamp (seconds; last append or touch)
    ts: float
    #: position inside the BLOCK frame at ``offset``; -1 means ``offset``
    #: points at a standalone RECORD frame
    slot: int = -1


class RecordBody(NamedTuple):
    """Decoded RECORD frame body (payload still compressed)."""

    key: str
    ts: float
    raw_len: int
    compressed: bytes


class BlockBody(NamedTuple):
    """Decoded BLOCK frame body (payloads already decompressed)."""

    keys: list[str]
    tss: tuple[float, ...]
    payloads: list[bytes]


class FooterBody(NamedTuple):
    """Decoded FOOTER frame body."""

    entries: list[IndexEntry]
    n_tombstone_frames: int


class TrailerBody(NamedTuple):
    """Decoded TRAILER frame body."""

    footer_offset: int
    footer_frame_len: int
    #: prefix of the file the footer's index covers; frames at or past
    #: this offset are the tail and are replayed sequentially
    covered_len: int


def crc64(data: bytes) -> int:
    """64-bit composite checksum: ``(crc32 << 32) | adler32``.

    Both halves are C implementations from the stdlib, so checksumming
    never dominates a block read the way a table-driven pure-Python
    CRC-64 would.  Detection strength is that of two independent 32-bit
    checksums — ample for cache corruption detection.
    """
    return (zlib.crc32(data) << 32) | zlib.adler32(data)


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
def encode_uvarint(value: int) -> bytes:
    """LEB128 encoding of a non-negative integer."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; returns ``(value, next_offset)``.

    Raises:
        SegmentFormatError: on truncation or a varint longer than 64 bits.
    """
    value = 0
    shift = 0
    while True:
        if offset >= len(data) or shift > 63:
            raise SegmentFormatError("truncated or overlong varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_frame(kind: int, body: bytes) -> bytes:
    """Wrap a body in the ``[kind][len][body][crc]`` framing."""
    head = bytes((kind,)) + _LEN_STRUCT.pack(len(body))
    return head + body + _CRC_STRUCT.pack(crc64(bytes((kind,)) + body))


def read_frame(data: bytes, offset: int, end: int | None = None) -> tuple[int, bytes, int]:
    """Parse one frame at ``offset``; returns ``(kind, body, next_offset)``.

    ``data`` may be any buffer (bytes or mmap).  Validates bounds, the
    frame kind, and the checksum.

    Raises:
        SegmentFormatError: for anything that is not a complete, intact
            frame of a known kind.
    """
    limit = len(data) if end is None else end
    head_end = offset + 1 + _LEN_STRUCT.size
    if offset < 0 or head_end > limit:
        raise SegmentFormatError("truncated frame header")
    kind = data[offset]
    if kind not in _KNOWN_KINDS:
        raise SegmentFormatError(f"unknown frame kind {kind!r}")
    (body_len,) = _LEN_STRUCT.unpack(bytes(data[offset + 1 : head_end]))
    body_end = head_end + body_len
    frame_end = body_end + _CRC_STRUCT.size
    if frame_end > limit:
        raise SegmentFormatError("truncated frame body")
    body = bytes(data[head_end:body_end])
    (stored,) = _CRC_STRUCT.unpack(bytes(data[body_end:frame_end]))
    if stored != crc64(bytes((kind,)) + body):
        raise SegmentFormatError("frame checksum mismatch")
    return kind, body, frame_end


def iter_frames(
    data: bytes, offset: int, end: int | None = None
) -> Iterator[tuple[int, int, bytes, int]]:
    """Yield ``(offset, kind, body, next_offset)`` for every intact frame
    from ``offset``, stopping silently at the first bad or truncated one
    (crash-recovery semantics: the committed prefix is what exists)."""
    limit = len(data) if end is None else end
    while offset < limit:
        try:
            kind, body, next_offset = read_frame(data, offset, limit)
        except SegmentFormatError:
            return
        yield offset, kind, body, next_offset
        offset = next_offset


# ----------------------------------------------------------------------
# header
# ----------------------------------------------------------------------
def encode_header(table: str, level: int, payload_format: int) -> bytes:
    """The start of a fresh segment: magic + META frame.

    The META body is structured JSON so future versions can add fields
    without reframing; ``version`` is the layout version this module
    writes and the one :func:`read_header` requires.
    """
    meta = {
        "format": "repro-segment",
        "version": SEGMENT_VERSION,
        "table": table,
        "zlib_level": level,
        "payload_format": payload_format,
    }
    body = json.dumps(meta, sort_keys=True).encode("utf-8")
    return SEGMENT_MAGIC + encode_frame(KIND_META, body)


def read_header(data: bytes) -> tuple[dict[str, object], int]:
    """Validate magic + META frame; returns ``(metadata, body_end_offset)``.

    Raises:
        SegmentFormatError: for a foreign file, a corrupt header, or an
            unsupported segment version.
    """
    if bytes(data[: len(SEGMENT_MAGIC)]) != SEGMENT_MAGIC:
        raise SegmentFormatError("not a segment file (bad magic)")
    kind, body, next_offset = read_frame(data, len(SEGMENT_MAGIC))
    if kind != KIND_META:
        raise SegmentFormatError("segment does not start with a META frame")
    try:
        meta = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SegmentFormatError("malformed segment metadata") from exc
    if not isinstance(meta, dict) or meta.get("version") != SEGMENT_VERSION:
        raise SegmentFormatError(
            f"unsupported segment version {meta.get('version') if isinstance(meta, dict) else meta!r} "
            f"(this build reads version {SEGMENT_VERSION})"
        )
    return meta, next_offset


# ----------------------------------------------------------------------
# records, tombstones, touches
# ----------------------------------------------------------------------
def _encode_key_ts(key: str, ts: float) -> bytes:
    encoded = key.encode("utf-8")
    return encode_uvarint(len(encoded)) + encoded + _TS_STRUCT.pack(ts)


def _decode_key_ts(body: bytes, offset: int = 0) -> tuple[str, float, int]:
    key_len, offset = decode_uvarint(body, offset)
    key_end = offset + key_len
    ts_end = key_end + _TS_STRUCT.size
    if ts_end > len(body):
        raise SegmentFormatError("truncated key/timestamp")
    try:
        key = body[offset:key_end].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SegmentFormatError("malformed record key") from exc
    (ts,) = _TS_STRUCT.unpack(body[key_end:ts_end])
    return key, ts, ts_end


def encode_record(key: str, payload: bytes, ts: float, level: int) -> bytes:
    """A complete RECORD frame: key + timestamp + block-compressed payload."""
    compressed = zlib.compress(payload, level)
    body = (
        _encode_key_ts(key, ts)
        + encode_uvarint(len(payload))
        + compressed
    )
    return encode_frame(KIND_RECORD, body)


def decode_record_body(body: bytes) -> RecordBody:
    """Split a RECORD body into key, timestamp, raw length, and the still
    compressed payload block."""
    key, ts, offset = _decode_key_ts(body)
    raw_len, offset = decode_uvarint(body, offset)
    return RecordBody(key=key, ts=ts, raw_len=raw_len, compressed=body[offset:])


def decompress_record(record: RecordBody) -> bytes:
    """Decompress a record's payload block, verifying the declared length.

    Raises:
        SegmentFormatError: when the block does not decompress to exactly
            the declared number of bytes.
    """
    try:
        payload = zlib.decompress(record.compressed)
    except zlib.error as exc:
        raise SegmentFormatError("record payload does not decompress") from exc
    if len(payload) != record.raw_len:
        raise SegmentFormatError(
            f"record payload length {len(payload)} != declared {record.raw_len}"
        )
    return payload


def encode_block(
    records: list[tuple[str, bytes, float]], level: int
) -> bytes:
    """A BLOCK frame holding many ``(key, payload, ts)`` records.

    The uncompressed layout is one struct-packed directory followed by
    the concatenated keys and payloads::

        [n: u32] [key_len, payload_len: u32 x 2n] [ts: f64 x n]
        [keys utf-8, concatenated] [payloads, concatenated]

    so a reader decodes the whole directory with two ``struct`` calls
    and slices records out without per-record varint walks.  The body is
    the directory + data compressed as one zlib unit, prefixed with the
    raw length for decompression validation (mirroring RECORD frames).
    """
    if not records:
        raise ValueError("a BLOCK frame needs at least one record")
    keys = [key.encode("utf-8") for key, _payload, _ts in records]
    lens: list[int] = []
    for encoded, (_key, payload, _ts) in zip(keys, records):
        lens.append(len(encoded))
        lens.append(len(payload))
    plain = b"".join(
        [
            _BLOCK_COUNT_STRUCT.pack(len(records)),
            struct.pack(f"<{2 * len(records)}I", *lens),
            struct.pack(f"<{len(records)}d", *[ts for _k, _p, ts in records]),
            *keys,
            *[payload for _key, payload, _ts in records],
        ]
    )
    body = encode_uvarint(len(plain)) + zlib.compress(plain, level)
    return encode_frame(KIND_BLOCK, body)


def decode_block_body(body: bytes) -> BlockBody:
    """Decode a BLOCK body back into its keys, timestamps, and payloads.

    Raises:
        SegmentFormatError: when the block does not decompress to the
            declared length or its directory is inconsistent.
    """
    raw_len, offset = decode_uvarint(body, 0)
    try:
        raw = zlib.decompress(body[offset:])
    except zlib.error as exc:
        raise SegmentFormatError("block does not decompress") from exc
    if len(raw) != raw_len:
        raise SegmentFormatError(
            f"block length {len(raw)} != declared {raw_len}"
        )
    if len(raw) < _BLOCK_COUNT_STRUCT.size:
        raise SegmentFormatError("truncated block directory")
    (n,) = _BLOCK_COUNT_STRUCT.unpack_from(raw, 0)
    data_start = _BLOCK_COUNT_STRUCT.size + 8 * n + 8 * n
    if n == 0 or data_start > len(raw):
        raise SegmentFormatError("truncated block directory")
    lens = struct.unpack_from(f"<{2 * n}I", raw, _BLOCK_COUNT_STRUCT.size)
    tss = struct.unpack_from(f"<{n}d", raw, _BLOCK_COUNT_STRUCT.size + 8 * n)
    if data_start + sum(lens) != len(raw):
        raise SegmentFormatError("block directory does not match its data")
    keys: list[str] = []
    payloads: list[bytes] = []
    key_pos = data_start
    payload_pos = data_start + sum(lens[0::2])
    try:
        for i in range(n):
            key_len = lens[2 * i]
            payload_len = lens[2 * i + 1]
            keys.append(raw[key_pos : key_pos + key_len].decode("utf-8"))
            key_pos += key_len
            payloads.append(raw[payload_pos : payload_pos + payload_len])
            payload_pos += payload_len
    except UnicodeDecodeError as exc:
        raise SegmentFormatError("malformed block key") from exc
    return BlockBody(keys=keys, tss=tss, payloads=payloads)


def encode_marker(kind: int, key: str, ts: float) -> bytes:
    """A TOMBSTONE or TOUCH frame for ``key``."""
    if kind not in (KIND_TOMBSTONE, KIND_TOUCH):
        raise ValueError(f"not a marker kind: {kind}")
    return encode_frame(kind, _encode_key_ts(key, ts))


def decode_marker_body(body: bytes) -> tuple[str, float]:
    """Decode a TOMBSTONE/TOUCH body into ``(key, ts)``."""
    key, ts, _ = _decode_key_ts(body)
    return key, ts


# ----------------------------------------------------------------------
# footer + trailer
# ----------------------------------------------------------------------
def encode_footer(
    entries: list[IndexEntry], n_tombstone_frames: int, level: int
) -> bytes:
    """A FOOTER frame: the zlib-compressed sorted index of live records.

    ``entries`` must be sorted by key (the reader bisects).  Like BLOCK
    frames, the uncompressed layout is struct-packed column arrays —
    counts, then key lengths, offsets, frame lengths, slots, timestamps,
    then the concatenated keys — so decoding the whole index is a
    handful of ``struct`` calls plus one key-slicing pass, not a
    per-entry varint walk (cold opens of large segments are on the
    warm-load critical path).
    """
    n = len(entries)
    keys = [entry.key.encode("utf-8") for entry in entries]
    plain = b"".join(
        [
            struct.pack("<II", n, n_tombstone_frames),
            struct.pack(f"<{n}I", *[len(key) for key in keys]),
            struct.pack(f"<{n}Q", *[entry.offset for entry in entries]),
            struct.pack(f"<{n}I", *[entry.frame_len for entry in entries]),
            struct.pack(f"<{n}i", *[entry.slot for entry in entries]),
            struct.pack(f"<{n}d", *[entry.ts for entry in entries]),
            *keys,
        ]
    )
    return encode_frame(KIND_FOOTER, zlib.compress(plain, level))


def decode_footer_body(body: bytes) -> FooterBody:
    """Decode a FOOTER body back into its sorted index entries.

    Raises:
        SegmentFormatError: on any decoding failure, including an index
            that is not sorted by key (a reader must be able to bisect
            it blindly).
    """
    try:
        raw = zlib.decompress(body)
    except zlib.error as exc:
        raise SegmentFormatError("footer does not decompress") from exc
    try:
        n, n_tombstones = struct.unpack_from("<II", raw, 0)
        base = 8
        key_lens = struct.unpack_from(f"<{n}I", raw, base)
        base += 4 * n
        offsets = struct.unpack_from(f"<{n}Q", raw, base)
        base += 8 * n
        frame_lens = struct.unpack_from(f"<{n}I", raw, base)
        base += 4 * n
        slots = struct.unpack_from(f"<{n}i", raw, base)
        base += 4 * n
        tss = struct.unpack_from(f"<{n}d", raw, base)
        base += 8 * n
    except struct.error as exc:
        raise SegmentFormatError("truncated footer directory") from exc
    if base + sum(key_lens) != len(raw):
        raise SegmentFormatError("footer directory does not match its data")
    entries: list[IndexEntry] = []
    previous = None
    pos = base
    for i in range(n):
        key_end = pos + key_lens[i]
        try:
            key = raw[pos:key_end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SegmentFormatError("malformed footer key") from exc
        pos = key_end
        if previous is not None and key <= previous:
            raise SegmentFormatError("footer index is not sorted")
        previous = key
        entries.append(
            IndexEntry(
                key=key,
                offset=offsets[i],
                frame_len=frame_lens[i],
                ts=tss[i],
                slot=slots[i],
            )
        )
    return FooterBody(entries=entries, n_tombstone_frames=n_tombstones)


def encode_trailer(footer_offset: int, footer_frame_len: int, covered_len: int) -> bytes:
    """The fixed-size TRAILER frame written at EOF after every batch."""
    body = _TRAILER_STRUCT.pack(footer_offset, footer_frame_len, covered_len)
    frame = encode_frame(KIND_TRAILER, body)
    assert len(frame) == TRAILER_FRAME_LEN
    return frame


def decode_trailer_body(body: bytes) -> TrailerBody:
    """Decode a TRAILER body."""
    if len(body) != _TRAILER_STRUCT.size:
        raise SegmentFormatError("trailer body has the wrong size")
    footer_offset, footer_frame_len, covered_len = _TRAILER_STRUCT.unpack(body)
    return TrailerBody(
        footer_offset=footer_offset,
        footer_frame_len=footer_frame_len,
        covered_len=covered_len,
    )
