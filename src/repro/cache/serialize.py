"""Versioned serialisation for mined interaction graphs.

The interaction graph is the expensive artefact of a generation run —
``O(|Q| * window)`` tree alignments — and the one thing worth persisting
between sessions.  This module turns an :class:`~repro.graph.interaction.
InteractionGraph` (queries, edges, diffs) plus its
:class:`~repro.graph.build.BuildStats` into plain JSON values and back.

Two layouts share the same record encoders:

* ``graph_to_dict`` / ``graph_from_dict`` — one JSON object, convenient
  for embedding (the session snapshot uses it);
* ``save_graph`` / ``load_graph`` — JSON *lines*: a header record followed
  by one record per interned subtree, per query, per diff, and per edge.
  Large graphs stream line by line instead of materialising one giant
  document, and a truncated file fails loudly on the record count check.

Sharing is preserved, twice over:

* **Edges** do not re-embed their diffs: an edge's ``interaction`` tuple
  refers to the same :class:`~repro.treediff.diff.Diff` objects stored in
  the graph's ``diffs`` table, and the mapper's merge phase relies on that
  object identity.  Edges are encoded as *indices* into the diffs table,
  and decoding rebuilds the identity relationship exactly.
* **Subtrees** are interned: the diffs table embeds the same subtrees
  over and over (every ancestor diff carries a near-whole-query subtree),
  so queries and diff subtrees are stored once in a unique-tree table and
  referenced by index.  On real SDSS logs this shrinks the payload and
  the decode work by more than an order of magnitude — the property that
  makes a cache *hit* decisively cheaper than re-mining.

Every payload carries :data:`FORMAT_VERSION`; loaders reject any other
version with :class:`~repro.errors.CacheError` (stores treat that as a
miss and re-mine).
"""

from __future__ import annotations

import json
import os
from pathlib import Path as FilePath
from typing import TYPE_CHECKING, Any, Iterator, Sequence, TypeVar
from uuid import uuid4

from repro.errors import CacheError
from repro.graph.build import BuildStats
from repro.graph.interaction import Edge, InteractionGraph
from repro.paths import Path
from repro.sqlparser.astnodes import Node
from repro.treediff.diff import Diff

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sqlparser.grammar import GrammarAnnotations
    from repro.widgets.base import Widget, WidgetType

_T = TypeVar("_T")

__all__ = [
    "FORMAT_VERSION",
    "node_to_dict",
    "node_from_dict",
    "diff_to_dict",
    "diff_from_dict",
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "graph_to_jsonl_bytes",
    "graph_from_jsonl_bytes",
    "widgets_to_dict",
    "widgets_from_dict",
    "save_widgets",
    "load_widgets",
    "widgets_to_json_bytes",
    "widgets_from_json_bytes",
    "proofs_to_dict",
    "proofs_from_dict",
    "save_proofs",
    "load_proofs",
    "proofs_to_json_bytes",
    "proofs_from_json_bytes",
    "diff_memo_to_dict",
    "diff_memo_from_dict",
    "save_diff_memo",
    "load_diff_memo",
    "diff_memo_to_json_bytes",
    "diff_memo_from_json_bytes",
    "compiled_page_to_dict",
    "compiled_page_from_dict",
    "save_compiled_page",
    "load_compiled_page",
    "compiled_page_to_json_bytes",
    "compiled_page_from_json_bytes",
    "derived_interval_annotations",
]

#: Bump on any incompatible change to the encoded layout.  Loaders refuse
#: other versions; the :class:`~repro.cache.store.GraphStore` treats a
#: refused payload as a cache miss.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# AST nodes
# ----------------------------------------------------------------------
def node_to_dict(node: Node) -> dict[str, Any]:
    """Encode an AST subtree as ``{"t": type, "a": attrs, "c": children}``.

    Attribute values must already be JSON-representable (the SQL grammar
    uses strings and numbers); anything else raises :class:`CacheError`
    at save time rather than producing a payload that cannot round-trip.
    """
    for value in node.attributes.values():
        if not isinstance(value, (str, int, float, bool)) and value is not None:
            raise CacheError(
                f"attribute value {value!r} on {node.node_type} is not "
                "JSON-serialisable"
            )
    out: dict[str, Any] = {"t": node.node_type}
    if node.attributes:
        out["a"] = dict(node.attributes)
    if node.children:
        out["c"] = [node_to_dict(child) for child in node.children]
    return out


def node_from_dict(payload: dict[str, Any]) -> Node:
    """Decode a :func:`node_to_dict` payload back into a :class:`Node`."""
    try:
        return Node(
            payload["t"],
            payload.get("a"),
            [node_from_dict(child) for child in payload.get("c", ())],
        )
    except (KeyError, TypeError) as exc:
        raise CacheError(f"malformed node record: {payload!r}") from exc


def _at(table: Sequence[_T], index: Any, what: str) -> _T:
    """Strict table lookup for decoded index references.

    Plain ``table[index]`` would let a corrupt record's negative index
    silently alias the wrong entry (Python indexing wraps around); a
    cache must refuse such a file instead of returning a wrong graph.
    """
    if not isinstance(index, int) or isinstance(index, bool) or not (
        0 <= index < len(table)
    ):
        raise CacheError(f"{what} reference {index!r} is out of range")
    return table[index]


class _TreeInterner:
    """Assigns one index per structurally-unique subtree (writer side)."""

    def __init__(self) -> None:
        self.trees: list[Node] = []
        self._buckets: dict[int, list[tuple[Node, int]]] = {}

    def index_of(self, node: Node) -> int:
        """The node's index in the unique-tree table, interning it if new."""
        bucket = self._buckets.setdefault(node.fingerprint, [])
        for candidate, index in bucket:
            if candidate.equals(node):
                return index
        index = len(self.trees)
        self.trees.append(node)
        bucket.append((node, index))
        return index


# ----------------------------------------------------------------------
# diff records and edges
# ----------------------------------------------------------------------
def diff_to_dict(diff: Diff, interner: _TreeInterner | None = None) -> dict[str, Any]:
    """Encode one diff record; paths use the paper's slash notation
    (``"/"`` is the root).

    With an ``interner`` the subtrees become indices into the unique-tree
    table (the compact form used inside whole-graph payloads); without
    one they are embedded inline (the standalone form).
    """
    if interner is None:
        t1: Any = node_to_dict(diff.t1) if diff.t1 is not None else None
        t2: Any = node_to_dict(diff.t2) if diff.t2 is not None else None
    else:
        t1 = interner.index_of(diff.t1) if diff.t1 is not None else None
        t2 = interner.index_of(diff.t2) if diff.t2 is not None else None
    out: dict[str, Any] = {
        "q1": diff.q1,
        "q2": diff.q2,
        "path": str(diff.path),
        "t1": t1,
        "t2": t2,
        "kind": diff.kind,
        "leaf": diff.is_leaf,
    }
    if diff.source_path != diff.path:
        out["source_path"] = str(diff.source_path)
    return out


def diff_from_dict(
    payload: dict[str, Any], trees: list[Node] | None = None
) -> Diff:
    """Decode a :func:`diff_to_dict` payload back into a :class:`Diff`.

    ``trees`` is the decoded unique-tree table for the compact form;
    ``None`` decodes the standalone (inline-subtree) form.
    """

    def subtree(value: Any) -> Node | None:
        if value is None:
            return None
        if trees is None:
            return node_from_dict(value)
        return _at(trees, value, "tree")

    try:
        source = payload.get("source_path")
        return Diff(
            q1=int(payload["q1"]),
            q2=int(payload["q2"]),
            path=Path.parse(payload["path"]),
            t1=subtree(payload["t1"]),
            t2=subtree(payload["t2"]),
            kind=payload["kind"],
            is_leaf=bool(payload["leaf"]),
            source_path=Path.parse(source) if source is not None else None,
        )
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise CacheError(f"malformed diff record: {list(payload)!r}") from exc


def _edge_to_dict(edge: Edge, diff_index: dict[int, int]) -> dict[str, Any]:
    """Encode an edge; ``interaction`` becomes indices into the diffs table."""
    try:
        refs = [diff_index[id(d)] for d in edge.interaction]
    except KeyError as exc:
        raise CacheError(
            f"edge ({edge.q1}, {edge.q2}) references a diff that is not in "
            "the graph's diffs table"
        ) from exc
    return {"q1": edge.q1, "q2": edge.q2, "diffs": refs}


def _edge_from_dict(payload: dict[str, Any], diffs: list[Diff]) -> Edge:
    try:
        interaction = tuple(
            _at(diffs, index, "diff") for index in payload["diffs"]
        )
        return Edge(q1=int(payload["q1"]), q2=int(payload["q2"]), interaction=interaction)
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError(f"malformed edge record: {payload!r}") from exc


# ----------------------------------------------------------------------
# whole graphs
# ----------------------------------------------------------------------
def _encode_parts(
    graph: InteractionGraph,
) -> tuple[list[dict[str, Any]], list[int], list[dict[str, Any]], list[dict[str, Any]]]:
    """The four record lists of a graph payload: unique trees, query tree
    indices, diffs (compact form), and edges."""
    interner = _TreeInterner()
    query_refs = [interner.index_of(q) for q in graph.queries]
    diff_payloads = [diff_to_dict(d, interner) for d in graph.diffs]
    diff_index = {id(d): i for i, d in enumerate(graph.diffs)}
    edge_payloads = [_edge_to_dict(e, diff_index) for e in graph.edges]
    tree_payloads = [node_to_dict(t) for t in interner.trees]
    return tree_payloads, query_refs, diff_payloads, edge_payloads


def _stats_payload(stats: BuildStats | None) -> dict[str, Any] | None:
    if stats is None:
        return None
    return {
        "n_pairs_compared": stats.n_pairs_compared,
        "mining_seconds": stats.mining_seconds,
        "n_alignments_memoised": stats.n_alignments_memoised,
        "n_alignments_full": stats.n_alignments_full,
    }


def _stats_from(payload: dict[str, Any] | None) -> BuildStats:
    payload = payload or {}
    return BuildStats(
        n_pairs_compared=int(payload.get("n_pairs_compared", 0)),
        mining_seconds=float(payload.get("mining_seconds", 0.0)),
        n_alignments_memoised=int(payload.get("n_alignments_memoised", 0)),
        n_alignments_full=int(payload.get("n_alignments_full", 0)),
    )


def graph_to_dict(
    graph: InteractionGraph,
    stats: BuildStats | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Encode a graph (and optionally its build stats) as one JSON object.

    ``extra`` rides along verbatim under the ``"extra"`` key — the session
    snapshot stores its own metadata there.
    """
    trees, query_refs, diffs, edges = _encode_parts(graph)
    out: dict[str, Any] = {
        "version": FORMAT_VERSION,
        "trees": trees,
        "queries": query_refs,
        "diffs": diffs,
        "edges": edges,
    }
    stats_payload = _stats_payload(stats)
    if stats_payload is not None:
        out["stats"] = stats_payload
    if extra:
        out["extra"] = extra
    return out


def _decode_graph(
    tree_payloads: list[dict[str, Any]],
    query_refs: list[int],
    diff_payloads: list[dict[str, Any]],
    edge_payloads: list[dict[str, Any]],
) -> InteractionGraph:
    trees = [node_from_dict(t) for t in tree_payloads]
    queries = [_at(trees, i, "query tree") for i in query_refs]
    diffs = [diff_from_dict(d, trees) for d in diff_payloads]
    edges = [_edge_from_dict(e, diffs) for e in edge_payloads]
    return InteractionGraph(queries=queries, edges=edges, diffs=diffs)


def graph_from_dict(
    payload: dict[str, Any],
) -> tuple[InteractionGraph, BuildStats, dict[str, Any]]:
    """Decode a :func:`graph_to_dict` payload.

    Returns ``(graph, stats, extra)``; ``stats`` is zeroed when the payload
    carried none.

    Raises:
        CacheError: on a version mismatch or a malformed payload.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise CacheError(
            f"unsupported graph format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    try:
        graph = _decode_graph(
            payload["trees"], payload["queries"], payload["diffs"], payload["edges"]
        )
    except (KeyError, TypeError) as exc:
        raise CacheError("malformed graph payload") from exc
    return graph, _stats_from(payload.get("stats")), payload.get("extra", {})


# ----------------------------------------------------------------------
# JSONL files
# ----------------------------------------------------------------------
def _jsonl_lines(
    graph: InteractionGraph,
    stats: BuildStats | None,
    extra: dict[str, Any] | None,
) -> Iterator[str]:
    trees, query_refs, diff_payloads, edge_payloads = _encode_parts(graph)
    header: dict[str, Any] = {
        "rec": "header",
        "version": FORMAT_VERSION,
        "n_trees": len(trees),
        "n_queries": len(query_refs),
        "n_diffs": len(diff_payloads),
        "n_edges": len(edge_payloads),
    }
    stats_payload = _stats_payload(stats)
    if stats_payload is not None:
        header["stats"] = stats_payload
    if extra:
        header["extra"] = extra
    # sort_keys throughout: two processes persisting the same graph must
    # produce byte-identical files (the ROADMAP's checksummed block store
    # compares payloads by digest)
    yield json.dumps(header, sort_keys=True)
    for tree in trees:
        yield json.dumps({"rec": "tree", "node": tree}, sort_keys=True)
    for ref in query_refs:
        yield json.dumps({"rec": "query", "tree": ref}, sort_keys=True)
    for diff in diff_payloads:
        yield json.dumps({"rec": "diff", **diff}, sort_keys=True)
    for edge in edge_payloads:
        yield json.dumps({"rec": "edge", **edge}, sort_keys=True)


def graph_to_jsonl_bytes(
    graph: InteractionGraph,
    stats: BuildStats | None = None,
    extra: dict[str, Any] | None = None,
) -> bytes:
    """The exact bytes :func:`save_graph` would write for this graph.

    The packed store's record payloads go through here, so a packed entry
    and a JSON-file entry for the same graph are byte-identical by
    construction (the parity the migration and format tests assert).
    """
    return "".join(
        line + "\n" for line in _jsonl_lines(graph, stats, extra)
    ).encode("utf-8")


def save_graph(
    path: str | FilePath,
    graph: InteractionGraph,
    stats: BuildStats | None = None,
    extra: dict[str, Any] | None = None,
) -> None:
    """Write the graph as JSON lines (header, trees, queries, diffs, edges).

    The write is atomic: content lands in a writer-unique temp file first
    and is renamed into place, so concurrent readers (the sharded workers
    all share one cache directory) never observe a half-written file, and
    two writers racing on the same key each complete their own rename
    (last one wins) instead of scribbling over a shared temp path.
    """
    target = FilePath(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}-{uuid4().hex[:8]}.tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            for line in _jsonl_lines(graph, stats, extra):
                handle.write(line + "\n")
        tmp.replace(target)
    finally:
        tmp.unlink(missing_ok=True)


def load_graph(
    path: str | FilePath,
) -> tuple[InteractionGraph, BuildStats, dict[str, Any]]:
    """Read a :func:`save_graph` file back.

    Returns ``(graph, stats, extra)`` exactly as :func:`graph_from_dict`.

    Raises:
        CacheError: on version mismatch, malformed records, or a record
            count that disagrees with the header (truncated file).
    """
    file_path = FilePath(path)
    try:
        lines = file_path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise CacheError(f"cannot read graph file {file_path}") from exc
    return _graph_from_lines(lines, str(file_path))


def graph_from_jsonl_bytes(
    data: bytes, label: str = "<graph record>"
) -> tuple[InteractionGraph, BuildStats, dict[str, Any]]:
    """Decode :func:`graph_to_jsonl_bytes` output (the packed-store read
    path).  ``label`` names the source in error messages.

    Raises:
        CacheError: exactly as :func:`load_graph` for the same content.
    """
    try:
        lines = data.decode("utf-8").splitlines()
    except UnicodeDecodeError as exc:
        raise CacheError(f"{label} is not valid UTF-8") from exc
    return _graph_from_lines(lines, label)


def _graph_from_lines(
    lines: list[str], label: str
) -> tuple[InteractionGraph, BuildStats, dict[str, Any]]:
    records: list[dict[str, Any]] = []
    for line_number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise CacheError(f"bad JSON at {label}:{line_number}") from exc
    if not records or records[0].get("rec") != "header":
        raise CacheError(f"{label} is missing the header record")
    header = records[0]
    version = header.get("version")
    if version != FORMAT_VERSION:
        raise CacheError(
            f"unsupported graph format version {version!r} in {label} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    tree_payloads: list[dict[str, Any]] = []
    query_refs: list[int] = []
    diff_payloads: list[dict[str, Any]] = []
    edge_payloads: list[dict[str, Any]] = []
    for record in records[1:]:
        kind = record.get("rec")
        if kind == "tree":
            tree_payloads.append(record["node"])
        elif kind == "query":
            query_refs.append(record["tree"])
        elif kind == "diff":
            diff_payloads.append(record)
        elif kind == "edge":
            edge_payloads.append(record)
        else:
            raise CacheError(f"unknown record kind {kind!r} in {label}")
    if (
        len(tree_payloads) != header.get("n_trees")
        or len(query_refs) != header.get("n_queries")
        or len(diff_payloads) != header.get("n_diffs")
        or len(edge_payloads) != header.get("n_edges")
    ):
        raise CacheError(f"{label} is truncated (record counts disagree)")
    graph = _decode_graph(tree_payloads, query_refs, diff_payloads, edge_payloads)
    return graph, _stats_from(header.get("stats")), header.get("extra", {})


# ----------------------------------------------------------------------
# widget sets
# ----------------------------------------------------------------------
#
# A widget set is *derived* state: every widget the mapper ever produces —
# initial or merged — is ``pickWidget(D)`` for its diff subset ``D``
# (Initialize builds it that way, and every merge rebuild goes through
# ``pickWidget`` again).  So the durable encoding of a widget is just the
# indices of its ``D`` in the owning graph's diffs table, plus the picked
# type's name as an integrity check; decoding re-runs the deterministic
# ``pickWidget`` against the loaded graph.  This keeps the payload tiny,
# guarantees the decoded widgets share diff-object identity with the graph
# (the property the merge phase and the session rely on), and makes a
# stale file impossible to half-trust: a library/rule change re-picks a
# different type and the name check turns the entry into a miss.

def widgets_to_dict(widgets: list[Widget], graph: InteractionGraph) -> dict[str, Any]:
    """Encode a mapped widget set against its graph's diffs table.

    Raises:
        CacheError: when a widget references a diff that is not in the
            graph's diffs table (the widgets belong to a different graph).
    """
    diff_index = {id(d): i for i, d in enumerate(graph.diffs)}
    encoded: list[dict[str, Any]] = []
    for widget in widgets:
        try:
            refs = [diff_index[id(d)] for d in widget.D]
        except KeyError as exc:
            raise CacheError(
                f"widget at {widget.path} references a diff that is not in "
                "the graph's diffs table"
            ) from exc
        encoded.append({"type": widget.widget_type.name, "diffs": refs})
    return {"version": FORMAT_VERSION, "widgets": encoded}


def widgets_from_dict(
    payload: dict[str, Any],
    graph: InteractionGraph,
    library: list[WidgetType],
    annotations: GrammarAnnotations,
) -> list[Widget]:
    """Decode a :func:`widgets_to_dict` payload against a loaded graph.

    Re-runs ``pickWidget`` over the referenced diff subsets, so the
    returned widgets are bit-equivalent to what the mapper produced and
    share diff-object identity with ``graph``.

    Raises:
        CacheError: on a version mismatch, an out-of-range diff reference,
            or when re-picking yields a different widget type than the one
            recorded (a stale payload for the current library).
    """
    from repro.core.mapper import pick_widget
    from repro.errors import MappingError

    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise CacheError(
            f"unsupported widget-set format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    widgets: list[Widget] = []
    for record in payload.get("widgets", ()):
        try:
            refs = record["diffs"]
            expected = record["type"]
        except (KeyError, TypeError) as exc:
            raise CacheError(f"malformed widget record: {record!r}") from exc
        diffs = [_at(graph.diffs, index, "diff") for index in refs]
        try:
            widget = pick_widget(diffs, library, annotations)
        except MappingError as exc:
            raise CacheError(
                "cached widget set no longer maps under the current widget "
                "library"
            ) from exc
        if widget is None or widget.widget_type.name != expected:
            picked = widget.widget_type.name if widget else None
            raise CacheError(
                f"cached widget record expected type {expected!r} but the "
                f"current library picks {picked!r}"
            )
        widgets.append(widget)
    return widgets


def _json_doc_bytes(payload: dict[str, Any]) -> bytes:
    """The exact bytes :func:`_write_json_atomic` writes for ``payload`` —
    the packed store's record payloads for the derived tables go through
    here, keeping packed and JSON-file entries byte-identical."""
    # sort_keys: derived tables must be byte-deterministic across
    # processes for digest-based comparison
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _json_doc_from_bytes(data: bytes, label: str) -> dict[str, Any]:
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CacheError(f"bad JSON in {label}") from exc
    if not isinstance(payload, dict):
        raise CacheError(f"{label} is not a JSON object payload")
    return payload


def _write_json_atomic(path: str | FilePath, payload: dict[str, Any]) -> None:
    """Write one JSON document via a writer-unique temp file + rename, so
    concurrent readers never observe a half-written derived table."""
    target = FilePath(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}-{uuid4().hex[:8]}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(_json_doc_bytes(payload))
        tmp.replace(target)
    finally:
        tmp.unlink(missing_ok=True)


def save_widgets(
    path: str | FilePath, widgets: list[Widget], graph: InteractionGraph
) -> None:
    """Atomically write a widget-set payload next to its graph entry."""
    _write_json_atomic(path, widgets_to_dict(widgets, graph))


def load_widgets(
    path: str | FilePath,
    graph: InteractionGraph,
    library: list[WidgetType],
    annotations: GrammarAnnotations,
) -> list[Widget]:
    """Read a :func:`save_widgets` file back against its loaded graph.

    Raises:
        CacheError: on unreadable files, bad JSON, or any
            :func:`widgets_from_dict` failure.
    """
    file_path = FilePath(path)
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CacheError(f"cannot read widget-set file {file_path}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CacheError(f"bad JSON in widget-set file {file_path}") from exc
    if not isinstance(payload, dict):
        raise CacheError(f"{file_path} is not a widget-set payload")
    return widgets_from_dict(payload, graph, library, annotations)


def widgets_to_json_bytes(
    widgets: list[Widget], graph: InteractionGraph
) -> bytes:
    """The exact bytes :func:`save_widgets` would write (packed payload)."""
    return _json_doc_bytes(widgets_to_dict(widgets, graph))


def widgets_from_json_bytes(
    data: bytes,
    graph: InteractionGraph,
    library: list[WidgetType],
    annotations: GrammarAnnotations,
    label: str = "<widget-set record>",
) -> list[Widget]:
    """Decode :func:`widgets_to_json_bytes` output (packed read path).

    Raises:
        CacheError: exactly as :func:`load_widgets` for the same content.
    """
    return widgets_from_dict(
        _json_doc_from_bytes(data, label), graph, library, annotations
    )


# ----------------------------------------------------------------------
# closure proofs
# ----------------------------------------------------------------------
#
# A positive cover proof is a ``(current, target, base)`` triple: "these
# widgets can transform subtree *current* (rooted at absolute path *base*)
# into subtree *target*".  The in-memory key fingerprints the two subtrees
# with ``Node.fingerprint``, which is process-salted, so the durable form
# stores the subtrees themselves (interned — proof sets over one interface
# share most of their trees) and the loader re-fingerprints them.  Only
# positives are ever persisted: a negative memo can be a budget artefact,
# and ``ClosureCache`` never exports one.

def proofs_to_dict(triples: list[tuple[Node, Node, "Path"]]) -> dict[str, Any]:
    """Encode exported closure proofs (see
    :meth:`~repro.core.closure.ClosureCache.export_proofs`)."""
    interner = _TreeInterner()
    encoded = [
        {
            "c": interner.index_of(current),
            "t": interner.index_of(target),
            "base": str(base),
        }
        for current, target, base in triples
    ]
    return {
        "version": FORMAT_VERSION,
        "trees": [node_to_dict(t) for t in interner.trees],
        "proofs": encoded,
    }


def proofs_from_dict(payload: dict[str, Any]) -> list[tuple[Node, Node, "Path"]]:
    """Decode a :func:`proofs_to_dict` payload back into proof triples,
    ready for :meth:`~repro.core.closure.ClosureCache.import_proofs`.

    Raises:
        CacheError: on a version mismatch or malformed records.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise CacheError(
            f"unsupported proof-set format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    try:
        trees = [node_from_dict(t) for t in payload.get("trees", ())]
        triples: list[tuple[Node, Node, Path]] = []
        for record in payload.get("proofs", ()):
            triples.append(
                (
                    _at(trees, record["c"], "tree"),
                    _at(trees, record["t"], "tree"),
                    Path.parse(record["base"]),
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError("malformed proof-set payload") from exc
    return triples


def save_proofs(
    path: str | FilePath, triples: list[tuple[Node, Node, "Path"]]
) -> None:
    """Atomically write a proof-set payload next to its graph entry."""
    _write_json_atomic(path, proofs_to_dict(triples))


def load_proofs(path: str | FilePath) -> list[tuple[Node, Node, "Path"]]:
    """Read a :func:`save_proofs` file back.

    Raises:
        CacheError: on unreadable files, bad JSON, or any
            :func:`proofs_from_dict` failure.
    """
    file_path = FilePath(path)
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CacheError(f"cannot read proof-set file {file_path}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CacheError(f"bad JSON in proof-set file {file_path}") from exc
    if not isinstance(payload, dict):
        raise CacheError(f"{file_path} is not a proof-set payload")
    return proofs_from_dict(payload)


def proofs_to_json_bytes(triples: list[tuple[Node, Node, "Path"]]) -> bytes:
    """The exact bytes :func:`save_proofs` would write (packed payload)."""
    return _json_doc_bytes(proofs_to_dict(triples))


def proofs_from_json_bytes(
    data: bytes, label: str = "<proof-set record>"
) -> list[tuple[Node, Node, "Path"]]:
    """Decode :func:`proofs_to_json_bytes` output (packed read path).

    Raises:
        CacheError: exactly as :func:`load_proofs` for the same content.
    """
    return proofs_from_dict(_json_doc_from_bytes(data, label))


# ----------------------------------------------------------------------
# diff memos
# ----------------------------------------------------------------------
#
# A :class:`~repro.treediff.memo.DiffMemo` keys alignment plans by
# skeleton hashes, which build on ``hash()`` and are therefore
# process-salted — the keys cannot be persisted.  The durable form is the
# memo's *representative pairs*: one concrete ``(a, b, prune)`` triple
# per plan (trees interned — template shapes share most subtrees).
# Loading re-aligns each representative once with the current algorithm
# (O(unique shapes), exactly the steady-state cost the memo admits), so a
# stale file can never poison results — plans are always rebuilt natively.

def diff_memo_to_dict(pairs: list[tuple[Node, Node, bool]]) -> dict[str, Any]:
    """Encode a memo's representative pairs (see
    :meth:`~repro.treediff.memo.DiffMemo.export_pairs`)."""
    interner = _TreeInterner()
    encoded = [
        {
            "a": interner.index_of(a),
            "b": interner.index_of(b),
            "prune": bool(prune),
        }
        for a, b, prune in pairs
    ]
    return {
        "version": FORMAT_VERSION,
        "trees": [node_to_dict(t) for t in interner.trees],
        "pairs": encoded,
    }


def diff_memo_from_dict(payload: dict[str, Any]) -> list[tuple[Node, Node, bool]]:
    """Decode a :func:`diff_memo_to_dict` payload back into representative
    pairs, ready for :meth:`~repro.treediff.memo.DiffMemo.import_pairs`.

    Raises:
        CacheError: on a version mismatch or malformed records.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise CacheError(
            f"unsupported diff-memo format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    try:
        trees = [node_from_dict(t) for t in payload.get("trees", ())]
        pairs: list[tuple[Node, Node, bool]] = []
        for record in payload.get("pairs", ()):
            pairs.append(
                (
                    _at(trees, record["a"], "tree"),
                    _at(trees, record["b"], "tree"),
                    bool(record["prune"]),
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise CacheError("malformed diff-memo payload") from exc
    return pairs


def save_diff_memo(
    path: str | FilePath, pairs: list[tuple[Node, Node, bool]]
) -> None:
    """Atomically write a diff-memo payload next to its graph entry."""
    _write_json_atomic(path, diff_memo_to_dict(pairs))


def load_diff_memo(path: str | FilePath) -> list[tuple[Node, Node, bool]]:
    """Read a :func:`save_diff_memo` file back.

    Raises:
        CacheError: on unreadable files, bad JSON, or any
            :func:`diff_memo_from_dict` failure.
    """
    file_path = FilePath(path)
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CacheError(f"cannot read diff-memo file {file_path}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CacheError(f"bad JSON in diff-memo file {file_path}") from exc
    if not isinstance(payload, dict):
        raise CacheError(f"{file_path} is not a diff-memo payload")
    return diff_memo_from_dict(payload)


def diff_memo_to_json_bytes(pairs: list[tuple[Node, Node, bool]]) -> bytes:
    """The exact bytes :func:`save_diff_memo` would write (packed payload)."""
    return _json_doc_bytes(diff_memo_to_dict(pairs))


def diff_memo_from_json_bytes(
    data: bytes, label: str = "<diff-memo record>"
) -> list[tuple[Node, Node, bool]]:
    """Decode :func:`diff_memo_to_json_bytes` output (packed read path).

    Raises:
        CacheError: exactly as :func:`load_diff_memo` for the same content.
    """
    return diff_memo_from_dict(_json_doc_from_bytes(data, label))


# ----------------------------------------------------------------------
# compiled interface pages
# ----------------------------------------------------------------------
#
# The incremental compiler's page state (see
# :meth:`repro.compiler.incremental.CompiledPage.to_state`) is already a
# plain-JSON dict of rendered strings: widget blocks, closure SQL/results,
# and *content* fingerprints (sha256 over rendered text — never the
# process-salted ``Node.fingerprint``/``skeleton``, which lint rules
# RL002/RL006 keep out of every persisted payload).  The codec therefore
# only wraps the state in the versioned envelope every table shares.

def compiled_page_to_dict(state: dict[str, Any]) -> dict[str, Any]:
    """Encode a compiled-page state (see
    :meth:`~repro.compiler.incremental.CompiledPage.to_state`)."""
    return {"version": FORMAT_VERSION, "page": state}


def compiled_page_from_dict(payload: dict[str, Any]) -> dict[str, Any]:
    """Decode a :func:`compiled_page_to_dict` payload back into the page
    state dict, ready for
    :meth:`~repro.compiler.incremental.IncrementalCompiler.import_state`.

    Raises:
        CacheError: on a version mismatch or a malformed payload.
    """
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise CacheError(
            f"unsupported compiled-page format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    state = payload.get("page")
    if not isinstance(state, dict):
        raise CacheError("malformed compiled-page payload")
    return state


def save_compiled_page(path: str | FilePath, state: dict[str, Any]) -> None:
    """Atomically write a compiled-page payload next to its graph entry."""
    _write_json_atomic(path, compiled_page_to_dict(state))


def load_compiled_page(path: str | FilePath) -> dict[str, Any]:
    """Read a :func:`save_compiled_page` file back.

    Raises:
        CacheError: on unreadable files, bad JSON, or any
            :func:`compiled_page_from_dict` failure.
    """
    file_path = FilePath(path)
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CacheError(f"cannot read compiled-page file {file_path}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CacheError(f"bad JSON in compiled-page file {file_path}") from exc
    if not isinstance(payload, dict):
        raise CacheError(f"{file_path} is not a compiled-page payload")
    return compiled_page_from_dict(payload)


def compiled_page_to_json_bytes(state: dict[str, Any]) -> bytes:
    """The exact bytes :func:`save_compiled_page` would write (packed
    payload)."""
    return _json_doc_bytes(compiled_page_to_dict(state))


def compiled_page_from_json_bytes(
    data: bytes, label: str = "<compiled-page record>"
) -> dict[str, Any]:
    """Decode :func:`compiled_page_to_json_bytes` output (packed read path).

    Raises:
        CacheError: exactly as :func:`load_compiled_page` for the same
            content.
    """
    return compiled_page_from_dict(_json_doc_from_bytes(data, label))


# ----------------------------------------------------------------------
# interval annotations (derived — deliberately NOT a table)
# ----------------------------------------------------------------------

def derived_interval_annotations(
    graph: InteractionGraph,
) -> dict[str, tuple[int, int, int]]:
    """The canonical interval annotations of a graph's partition paths.

    The mapping layer annotates every diff-partition path with a
    ``(pre_order, post_order, subtree_size)`` triple (see
    :class:`~repro.treediff.paths.IntervalIndex`).  Those annotations are
    **derived state**: they are a pure function of the set of distinct
    diff paths, so this module never persists them — a serialised graph
    carries no interval table, and any format that did would just be a
    staleness hazard.  Instead, loaders rebuild them from the decoded
    diffs, and the round-trip suite asserts the rebuild is *identical* to
    the annotations of the pre-save graph by comparing this function's
    output on both sides.

    Returns ``{str(path): (pre_order, post_order, subtree_size)}`` —
    string keys so two snapshots compare with plain ``==`` and diff
    readably in test failures.
    """
    from repro.treediff.paths import IntervalIndex

    index = IntervalIndex()
    index.extend(diff.path for diff in graph.diffs)
    return {
        str(path): (
            interval.pre_order,
            interval.post_order,
            interval.subtree_size,
        )
        for path, interval in index.annotations().items()
    }
