"""Packed segment files: the block-compressed backing of ``GraphStore``.

One :class:`Segment` is one append-only ``*.seg`` record log (framing in
:mod:`repro.cache.format`).  The store keeps one segment per table —
``graphs.seg``, ``widgets.seg``, ``proofs.seg``, ``diffmemos.seg`` — so
a save appends one record instead of writing a file, eviction appends a
tombstone instead of unlinking, and ``stats``/``prune`` read one footer
per table instead of statting every entry in the directory.

Readers (:class:`SegmentReader`) are **lock-free**: they mmap the file,
locate the TRAILER at EOF, decode the FOOTER index it points at, and
replay the tail frames past the footer's covered length.  When the
trailer is missing or corrupt (a writer crashed mid-append) they fall
back to a sequential scan from the header that stops at the first bad
frame — every committed record stays readable, the torn tail is ignored.
A lookup is then a bisect over the sorted footer index plus a single
block decompression; bulk reads can decompress blocks on a thread pool
(zlib releases the GIL).

Two frame granularities coexist.  A plain ``save`` appends one RECORD
frame per key — cheap, one zlib unit per payload.  Bulk writers
(migration importing a whole store, compaction rewriting one) pack ~64
records into each BLOCK frame, so a bulk warm load pays one
decompression per block instead of one per record — that is where the
packed format's load speedup over per-key JSON files comes from.  The
index addresses a blocked record as ``(block offset, slot)``; a point
lookup decompresses its whole block (cached, so clustered lookups pay
once).

Writers are serialised by the store's :class:`~repro.cache.lock.
StoreLock` — the same lock instance the owning ``GraphStore`` uses, held
inside every mutating method here, so the lint's RL001 lock discipline
is checkable lexically and composed operations (a store save that
appends to two segments) nest reentrantly.  Because the file is
append-only and compaction replaces it atomically (write temp + rename),
a lock-free reader racing any writer sees either the old complete state
or the new one, never a torn middle.

Compaction: superseded records, tombstones, touches, and stale footers
accumulate as *dead bytes* (the segment's compaction debt, reported by
``stats``).  When the debt crosses a threshold after an append batch —
or unconditionally via :meth:`Segment.compact` during prune — the live
records are re-packed into BLOCK frames in a fresh file (checksums
verified on the way, corrupt records dropped) which atomically replaces
the old one.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path as FilePath
from typing import Iterable, Iterator, NamedTuple
from uuid import uuid4

from repro.cache import format as segformat
from repro.cache.format import (
    KIND_BLOCK,
    KIND_FOOTER,
    KIND_RECORD,
    KIND_TOMBSTONE,
    KIND_TOUCH,
    KIND_TRAILER,
    TRAILER_FRAME_LEN,
    IndexEntry,
    SegmentFormatError,
)
from repro.cache.lock import StoreLock
from repro.cache.serialize import FORMAT_VERSION as _PAYLOAD_FORMAT

__all__ = ["Segment", "SegmentReader", "SegmentStats", "DEFAULT_LEVEL"]

#: default zlib level: 6 is zlib's own default — measurably smaller than
#: 1 on JSON payloads while decompression (the hot path) costs the same
DEFAULT_LEVEL = 6

#: refresh the footer once the un-indexed tail outgrows this many bytes
#: (until then, batches append records plus a 37-byte trailer only)
DEFAULT_FOOTER_EVERY = 1 << 18

#: compaction triggers when dead bytes exceed both this floor and the
#: ratio below — small segments are left alone, churn stays bounded
DEFAULT_COMPACT_MIN_BYTES = 1 << 16
DEFAULT_COMPACT_RATIO = 0.5

#: records per BLOCK frame written by bulk paths (migration, compaction)
BLOCK_RECORDS = 64

#: an append batch at least this large is packed into BLOCK frames;
#: smaller batches (the per-save common case) stay standalone RECORDs
BLOCK_MIN_BATCH = 16


class SegmentStats(NamedTuple):
    """Occupancy snapshot of one segment."""

    #: size of the segment file (0 when it does not exist yet)
    file_bytes: int
    #: live (readable, non-tombstoned) records
    n_live: int
    #: tombstone frames not yet reclaimed by compaction
    n_tombstoned: int
    #: bytes of live record frames
    live_bytes: int
    #: compaction debt: bytes neither live nor structural (header/footer)
    dead_bytes: int


class _ReaderSeed(NamedTuple):
    """The index state a writer hands its own next reader (see
    :meth:`Segment.reader`): adopting it skips the footer re-decode a
    cold open would pay."""

    size: int
    footer_offset: int | None
    footer_frame_len: int
    covered_len: int
    n_tombstone_frames: int
    index: dict[str, IndexEntry]
    #: bytes of live frames, each BLOCK counted once however many of its
    #: records are live
    live_frame_bytes: int
    #: live-entry count per BLOCK frame offset
    block_refs: dict[int, int]


class _WriterState:
    """A :class:`Segment`'s private, mutable view of its own last write.

    Readers are immutable snapshots, so a naive writer would rebuild (or
    copy) the whole index on every append — O(index) per save.  Instead
    the segment keeps this one mutable state across appends, updates it
    in place (O(appended) per batch), and seeds readers from it lazily,
    copying only when a read actually follows a write.  ``stamp`` pins
    the state to the exact file it describes; any cross-process mutation
    changes the stamp (appends grow the size, compaction replaces the
    inode) and invalidates it.
    """

    __slots__ = (
        "stamp",
        "size",
        "footer_offset",
        "footer_frame_len",
        "covered_len",
        "had_footer",
        "n_tombstone_frames",
        "index",
        "live_frame_bytes",
        "block_refs",
    )

    def __init__(
        self,
        *,
        stamp: tuple[int, int, int] | None,
        size: int,
        footer_offset: int | None,
        footer_frame_len: int,
        covered_len: int,
        had_footer: bool,
        n_tombstone_frames: int,
        index: dict[str, IndexEntry],
        live_frame_bytes: int,
        block_refs: dict[int, int],
    ) -> None:
        self.stamp = stamp
        self.size = size
        self.footer_offset = footer_offset
        self.footer_frame_len = footer_frame_len
        self.covered_len = covered_len
        self.had_footer = had_footer
        self.n_tombstone_frames = n_tombstone_frames
        self.index = index
        self.live_frame_bytes = live_frame_bytes
        self.block_refs = block_refs


class SegmentReader:
    """A lock-free snapshot view of one segment file.

    Constructing the reader never raises: a missing file, an empty file,
    a foreign/corrupt header, or a torn tail all degrade to "fewer (or
    zero) live records".  ``foreign`` is True when the file exists but is
    not a readable segment of this version — writers rotate such a file
    aside instead of appending to it.
    """

    def __init__(
        self, path: FilePath, _seed: _ReaderSeed | None = None
    ) -> None:
        self.path = path
        self.foreign = False
        #: True when the index was rebuilt by sequential scan because the
        #: trailer was missing/invalid (a writer must persist a fresh
        #: footer so frames it appends are not shadowed by a torn tail)
        self.used_scan = False
        self.size = 0
        self.header_len = 0
        self.covered_len = 0
        self.footer_offset: int | None = None
        self.footer_frame_len = 0
        self.n_tombstone_frames = 0
        self._data: bytes = b""
        self._mm: object | None = None
        self._base_keys: list[str] = []
        self._base_entries: list[IndexEntry] = []
        self._overlay: dict[str, IndexEntry | None] = {}
        #: live frame bytes / per-block live-entry counts (see
        #: :class:`_ReaderSeed`); computed lazily on first use — bulk
        #: loads never need them, and a seeding writer hands them over
        self._lazy_live_bytes: int | None = None
        self._lazy_block_refs: dict[int, int] | None = None
        #: one-block decode cache for clustered point lookups
        self._block_cache: tuple[int, segformat.BlockBody] | None = None
        self._load(_seed)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def _load(self, seed: _ReaderSeed | None = None) -> None:
        try:
            handle = open(self.path, "rb")
        except OSError:
            return
        try:
            self.size = os.fstat(handle.fileno()).st_size
            if self.size == 0:
                return
            import mmap

            self._mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            self._data = self._mm  # type: ignore[assignment]
        except (OSError, ValueError):
            self.size = 0
            return
        finally:
            handle.close()
        try:
            _meta, self.header_len = segformat.read_header(self._data)
        except SegmentFormatError:
            self.foreign = True
            return
        if seed is not None and seed.size == self.size:
            # the writer that just produced this file handed us its index:
            # adopt it (ownership transfer, the writer copies before it
            # mutates) instead of re-decoding the footer; the owning
            # Segment's stat stamp guards against cross-process changes
            self.footer_offset = seed.footer_offset
            self.footer_frame_len = seed.footer_frame_len
            self.covered_len = seed.covered_len
            self.n_tombstone_frames = seed.n_tombstone_frames
            self._overlay = seed.index
            self._lazy_live_bytes = seed.live_frame_bytes
            self._lazy_block_refs = seed.block_refs
            return
        if not self._load_via_trailer():
            self.used_scan = True
            self._scan(self.header_len)

    @property
    def live_frame_bytes(self) -> int:
        """Bytes of frames still holding >= 1 live record."""
        if self._lazy_live_bytes is None:
            self._compute_live_accounting()
        assert self._lazy_live_bytes is not None
        return self._lazy_live_bytes

    @property
    def _block_refs(self) -> dict[int, int]:
        if self._lazy_block_refs is None:
            self._compute_live_accounting()
        assert self._lazy_block_refs is not None
        return self._lazy_block_refs

    def _compute_live_accounting(self) -> None:
        """One pass over the live index establishing ``live_frame_bytes``
        and the per-block refcounts (appends then maintain both in O(1))."""
        live = 0
        refs: dict[int, int] = {}
        for entry in self.index_unsorted().values():
            if entry.slot >= 0:
                if entry.offset not in refs:
                    live += entry.frame_len
                refs[entry.offset] = refs.get(entry.offset, 0) + 1
            else:
                live += entry.frame_len
        self._lazy_live_bytes = live
        self._lazy_block_refs = refs

    def _load_via_trailer(self) -> bool:
        """Index from the TRAILER/FOOTER at EOF; False -> caller scans."""
        if self.size < self.header_len + TRAILER_FRAME_LEN:
            return False
        try:
            kind, body, _ = segformat.read_frame(
                self._data, self.size - TRAILER_FRAME_LEN, self.size
            )
            if kind != KIND_TRAILER:
                return False
            trailer = segformat.decode_trailer_body(body)
            if not (
                self.header_len
                <= trailer.footer_offset
                < trailer.footer_offset + trailer.footer_frame_len
                <= self.size
            ) or not (self.header_len <= trailer.covered_len <= self.size):
                return False
            kind, body, _ = segformat.read_frame(
                self._data,
                trailer.footer_offset,
                trailer.footer_offset + trailer.footer_frame_len,
            )
            if kind != KIND_FOOTER:
                return False
            footer = segformat.decode_footer_body(body)
        except SegmentFormatError:
            return False
        self.footer_offset = trailer.footer_offset
        self.footer_frame_len = trailer.footer_frame_len
        self.covered_len = trailer.covered_len
        self.n_tombstone_frames = footer.n_tombstone_frames
        self._base_keys = [entry.key for entry in footer.entries]
        self._base_entries = footer.entries
        # replay the tail the footer does not cover yet
        self._scan(trailer.covered_len)
        return True

    def _scan(self, offset: int) -> None:
        """Replay frames sequentially from ``offset``; stops at the first
        bad/truncated frame (crash recovery: the committed prefix wins)."""
        for frame_offset, kind, body, next_offset in segformat.iter_frames(
            self._data, offset, self.size
        ):
            if kind == KIND_RECORD:
                try:
                    record = segformat.decode_record_body(body)
                except SegmentFormatError:
                    continue
                self._overlay[record.key] = IndexEntry(
                    key=record.key,
                    offset=frame_offset,
                    frame_len=next_offset - frame_offset,
                    ts=record.ts,
                )
            elif kind == KIND_BLOCK:
                try:
                    block = segformat.decode_block_body(body)
                except SegmentFormatError:
                    continue
                for slot, (key, ts) in enumerate(zip(block.keys, block.tss)):
                    self._overlay[key] = IndexEntry(
                        key=key,
                        offset=frame_offset,
                        frame_len=next_offset - frame_offset,
                        ts=ts,
                        slot=slot,
                    )
            elif kind == KIND_TOMBSTONE:
                try:
                    key, _ts = segformat.decode_marker_body(body)
                except SegmentFormatError:
                    continue
                self._overlay[key] = None
                self.n_tombstone_frames += 1
            elif kind == KIND_TOUCH:
                try:
                    key, ts = segformat.decode_marker_body(body)
                except SegmentFormatError:
                    continue
                current = self._lookup(key)
                if current is not None:
                    self._overlay[key] = current._replace(ts=max(current.ts, ts))
            # META/FOOTER/TRAILER frames in the tail carry no entries

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _lookup(self, key: str) -> IndexEntry | None:
        if key in self._overlay:
            return self._overlay[key]
        index = bisect_left(self._base_keys, key)
        if index < len(self._base_keys) and self._base_keys[index] == key:
            return self._base_entries[index]
        return None

    def index_unsorted(self) -> dict[str, IndexEntry]:
        """The live index (footer plus tail) in no particular order —
        the cheap form for callers that only need membership/values."""
        merged = {
            entry.key: entry
            for entry in self._base_entries
            if entry.key not in self._overlay
        }
        for key, entry in self._overlay.items():
            if entry is not None:
                merged[key] = entry
        return merged

    def index(self) -> dict[str, IndexEntry]:
        """The live index as one key-sorted dict (footer plus tail)."""
        return dict(sorted(self.index_unsorted().items()))

    def keys(self) -> list[str]:
        """Sorted keys of all live records."""
        return list(self.index())

    def has(self, key: str) -> bool:
        """True when a live record exists for ``key`` (it may still fail
        its checksum at read time)."""
        return self._lookup(key) is not None

    def entry(self, key: str) -> IndexEntry | None:
        """The live index entry for ``key``, or ``None``."""
        return self._lookup(key)

    def entry_cost(self, entry: IndexEntry) -> int:
        """Approximate on-disk bytes attributable to one entry: its frame
        length for a standalone record, its fair share of the block for a
        blocked one (eviction ranking must not charge each record a whole
        block)."""
        if entry.slot >= 0:
            return entry.frame_len // max(1, self._block_refs.get(entry.offset, 1))
        return entry.frame_len

    def _record_at(self, entry: IndexEntry) -> segformat.RecordBody | None:
        try:
            kind, body, _ = segformat.read_frame(
                self._data, entry.offset, min(entry.offset + entry.frame_len, self.size)
            )
            if kind != KIND_RECORD:
                return None
            record = segformat.decode_record_body(body)
        except SegmentFormatError:
            return None
        if record.key != entry.key:
            return None
        return record

    def _block_at(self, offset: int, frame_len: int) -> segformat.BlockBody | None:
        """Decode the BLOCK frame at ``offset``, caching the last decode
        (clustered point lookups hit the same block)."""
        cached = self._block_cache
        if cached is not None and cached[0] == offset:
            return cached[1]
        try:
            kind, body, _ = segformat.read_frame(
                self._data, offset, min(offset + frame_len, self.size)
            )
            if kind != KIND_BLOCK:
                return None
            block = segformat.decode_block_body(body)
        except SegmentFormatError:
            return None
        self._block_cache = (offset, block)
        return block

    def _payload_at(self, entry: IndexEntry) -> bytes | None:
        """The decompressed payload behind an index entry, or ``None``
        when its frame is corrupt or does not match the entry."""
        if entry.slot >= 0:
            block = self._block_at(entry.offset, entry.frame_len)
            if block is None or not (0 <= entry.slot < len(block.keys)):
                return None
            if block.keys[entry.slot] != entry.key:
                return None
            return block.payloads[entry.slot]
        record = self._record_at(entry)
        if record is None:
            return None
        try:
            return segformat.decompress_record(record)
        except SegmentFormatError:
            return None

    def get(self, key: str) -> bytes | None:
        """The decompressed payload for ``key``, or ``None``.

        A missing key, a tombstoned key, an index entry pointing at a
        frame that fails its checksum, or a block that does not
        decompress are all misses — corruption never raises out of here.
        """
        entry = self._lookup(key)
        if entry is None:
            return None
        return self._payload_at(entry)

    def items(self, parallel: int | None = None) -> Iterator[tuple[str, bytes]]:
        """Yield ``(key, payload)`` for every live record in key order.

        Each BLOCK frame is decompressed once however many live records
        it holds — the bulk warm-load path.  With ``parallel`` > 1 the
        decompression runs on a thread pool (zlib releases the GIL).
        Records that fail their checksum are skipped, not raised.
        """
        live = self.index()
        blocked: dict[int, list[IndexEntry]] = {}
        plain: list[IndexEntry] = []
        for entry in live.values():
            if entry.slot >= 0:
                blocked.setdefault(entry.offset, []).append(entry)
            else:
                plain.append(entry)

        def decode_block_group(
            group: tuple[int, list[IndexEntry]],
        ) -> list[tuple[str, bytes]]:
            # decodes without the shared one-block cache: pool workers
            # must not race on it
            offset, entries = group
            end = min(offset + entries[0].frame_len, self.size)
            try:
                kind, body, _ = segformat.read_frame(self._data, offset, end)
                if kind != KIND_BLOCK:
                    return []
                block = segformat.decode_block_body(body)
            except SegmentFormatError:
                return []
            out = []
            for entry in entries:
                if (
                    0 <= entry.slot < len(block.keys)
                    and block.keys[entry.slot] == entry.key
                ):
                    out.append((entry.key, block.payloads[entry.slot]))
            return out

        def decode_plain_batch(
            batch: list[IndexEntry],
        ) -> list[tuple[str, bytes]]:
            out = []
            for entry in batch:
                record = self._record_at(entry)
                if record is None:
                    continue
                try:
                    out.append((entry.key, segformat.decompress_record(record)))
                except SegmentFormatError:
                    continue
            return out

        results: dict[str, bytes] = {}
        if parallel is not None and parallel > 1 and len(live) > 64:
            # plain records are chunked so pool-dispatch overhead
            # amortises (one future per record would swamp the work);
            # each block group is already a naturally sized task
            chunk = max(32, len(plain) // (parallel * 8)) if plain else 1
            batches = [
                plain[start : start + chunk]
                for start in range(0, len(plain), chunk)
            ]
            tasks: list[tuple[str, object]] = [
                ("block", group) for group in blocked.items()
            ] + [("plain", batch) for batch in batches]

            def run(task: tuple[str, object]) -> list[tuple[str, bytes]]:
                tag, arg = task
                if tag == "block":
                    return decode_block_group(arg)  # type: ignore[arg-type]
                return decode_plain_batch(arg)  # type: ignore[arg-type]

            with ThreadPoolExecutor(max_workers=parallel) as pool:
                for decoded in pool.map(run, tasks):
                    results.update(decoded)
        else:
            for group in blocked.items():
                results.update(decode_block_group(group))
            results.update(decode_plain_batch(plain))
        for key in live:
            payload = results.get(key)
            if payload is not None:
                yield key, payload

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> SegmentStats:
        """Occupancy derived from the index — no directory walk.  A BLOCK
        frame counts as live while any of its records is (so debt from
        partially superseded blocks surfaces only once the whole block
        dies — compaction still reclaims it either way)."""
        live_bytes = self.live_frame_bytes
        structural = self.header_len
        if self.footer_offset is not None:
            structural += self.footer_frame_len + TRAILER_FRAME_LEN
        dead = max(0, self.size - structural - live_bytes)
        return SegmentStats(
            file_bytes=self.size,
            n_live=len(self.index_unsorted()),
            n_tombstoned=self.n_tombstone_frames,
            live_bytes=live_bytes,
            dead_bytes=dead,
        )

    def close(self) -> None:
        """Release the mmap (otherwise freed when the reader is GC'd)."""
        if self._mm is not None:
            try:
                self._mm.close()  # type: ignore[attr-defined]
            except (BufferError, ValueError):  # pragma: no cover - defensive
                pass
            self._mm = None
            self._data = b""


class Segment:
    """One table's append-only segment file, with a cached reader.

    All mutating methods hold ``lock`` (the owning store's
    :class:`StoreLock`) for their whole critical section; the lock is
    reentrant, so a store operation that already holds it composes.
    """

    def __init__(
        self,
        path: str | FilePath,
        lock: StoreLock,
        table: str,
        level: int = DEFAULT_LEVEL,
        footer_every_bytes: int = DEFAULT_FOOTER_EVERY,
        compact_min_bytes: int = DEFAULT_COMPACT_MIN_BYTES,
        compact_ratio: float = DEFAULT_COMPACT_RATIO,
    ) -> None:
        self.path = FilePath(path)
        self.table = table
        self.level = level
        self.footer_every_bytes = footer_every_bytes
        self.compact_min_bytes = compact_min_bytes
        self.compact_ratio = compact_ratio
        self._lock = lock
        self._reader: SegmentReader | None = None
        self._reader_stamp: tuple[int, int, int] | None = None
        self._wstate: _WriterState | None = None

    # ------------------------------------------------------------------
    # readers
    # ------------------------------------------------------------------
    def _stamp(self) -> tuple[int, int, int] | None:
        try:
            stat = self.path.stat()
        except OSError:
            return None
        return (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def reader(self) -> SegmentReader:
        """The current snapshot reader, re-opened only when the file
        changed (one ``stat`` per call — the warm-load fast path).  When
        the last change was this segment's own write, the reader is
        seeded from the writer state instead of re-decoding the footer.
        """
        stamp = self._stamp()
        if self._reader is not None and stamp == self._reader_stamp:
            return self._reader
        ws = self._wstate
        if ws is not None and stamp is not None and ws.stamp == stamp:
            seed = _ReaderSeed(
                size=ws.size,
                footer_offset=ws.footer_offset,
                footer_frame_len=ws.footer_frame_len,
                covered_len=ws.covered_len,
                n_tombstone_frames=ws.n_tombstone_frames,
                # copies: the writer keeps mutating its own dicts
                index=dict(ws.index),
                live_frame_bytes=ws.live_frame_bytes,
                block_refs=dict(ws.block_refs),
            )
            self._reader = SegmentReader(self.path, _seed=seed)
        else:
            self._reader = SegmentReader(self.path)
        self._reader_stamp = stamp
        return self._reader

    def invalidate_reader(self) -> None:
        """Drop the cached reader (after this process mutated the file)."""
        self._reader = None
        self._reader_stamp = None

    # ------------------------------------------------------------------
    # mutations (all under the store lock)
    # ------------------------------------------------------------------
    def append_records(
        self, items: Iterable[tuple[str, bytes, float | None]]
    ) -> None:
        """Append one RECORD per ``(key, payload, ts)`` (``ts=None`` means
        now).  A key whose live payload is byte-identical is demoted to a
        TOUCH — content-addressed saves of an unchanged artefact must not
        grow the segment."""
        self._apply(records=list(items))

    def append_tombstones(self, keys: Iterable[str]) -> None:
        """Append a TOMBSTONE per key (eviction: one append, no rewrite)."""
        self._apply(tombstones=list(keys))

    def append_touches(self, keys: Iterable[str]) -> None:
        """Append a TOUCH per live key (batched LRU recency bumps)."""
        self._apply(touches=list(keys))

    def compact(self) -> bool:
        """Rewrite the segment to live records only; True when rewritten.

        Copies live frames verbatim (re-verifying checksums, dropping any
        record that fails), writes a fresh footer/trailer, and atomically
        replaces the file.  A no-op on a missing or debt-free segment.
        """
        with self._lock.held():
            reader = self.reader()
            if reader.size == 0 or reader.foreign:
                return False
            if reader.stats().dead_bytes == 0 and not reader.used_scan:
                return False
            self._compact_locked(reader)
            return True

    def _writer_state(self) -> _WriterState:
        """The mutable writer view of the current file, rebuilt from a
        snapshot reader only when the file changed under us — another
        process's append grows the size, compaction changes the inode,
        so a matching stamp means the file is exactly as this segment
        left it.  Caller holds the lock."""
        stamp = self._stamp()
        ws = self._wstate
        if ws is not None and stamp is not None and ws.stamp == stamp:
            return ws
        reader = self.reader()
        if reader.foreign:
            # not a segment of this version: rotate it aside and start
            # fresh — the cache must fail open, never refuse to save
            # (the held() is re-entrant: callers already hold the lock)
            with self._lock.held():
                aside = self.path.with_name(self.path.name + ".corrupt")
                aside.unlink(missing_ok=True)
                self.path.replace(aside)
            self.invalidate_reader()
            reader = self.reader()
        ws = _WriterState(
            stamp=self._stamp(),
            size=reader.size,
            footer_offset=reader.footer_offset,
            footer_frame_len=reader.footer_frame_len,
            covered_len=reader.covered_len,
            had_footer=reader.footer_offset is not None and not reader.used_scan,
            n_tombstone_frames=reader.n_tombstone_frames,
            index=reader.index_unsorted(),
            live_frame_bytes=reader.live_frame_bytes,
            block_refs=dict(reader._block_refs),
        )
        self._wstate = ws
        return ws

    def _apply(
        self,
        records: list[tuple[str, bytes, float | None]] | None = None,
        tombstones: list[str] | None = None,
        touches: list[str] | None = None,
    ) -> None:
        records = records or []
        tombstones = tombstones or []
        touches = touches or []
        if not records and not tombstones and not touches:
            return
        with self._lock.held():
            ws = self._writer_state()
            try:
                self._apply_locked(ws, records, tombstones, touches)
            except BaseException:
                # the in-memory view may no longer match the file
                self._wstate = None
                self.invalidate_reader()
                raise

    def _apply_locked(
        self,
        ws: _WriterState,
        records: list[tuple[str, bytes, float | None]],
        tombstones: list[str],
        touches: list[str],
    ) -> None:
        index = ws.index
        refs = ws.block_refs
        live = ws.live_frame_bytes
        now = time.time()

        def drop(entry: IndexEntry) -> None:
            # a superseded/deleted entry stops counting as live; a
            # BLOCK frame stays live until its last record dies
            nonlocal live
            if entry.slot >= 0:
                refs[entry.offset] -= 1
                if refs[entry.offset] == 0:
                    del refs[entry.offset]
                    live -= entry.frame_len
            else:
                live -= entry.frame_len

        # an unchanged payload for a live key is a recency bump only
        filtered: list[tuple[str, bytes, float]] = []
        for key, payload, ts in records:
            if key in index and self.reader().get(key) == payload:
                touches = touches + [key]
            else:
                filtered.append((key, payload, now if ts is None else ts))

        n_tombstones = ws.n_tombstone_frames
        mode = "r+b" if ws.size > 0 else "wb"
        with open(self.path, mode) as handle:
            handle.seek(0, os.SEEK_END)
            pos = handle.tell()
            if pos == 0:
                header = segformat.encode_header(
                    self.table, self.level, _PAYLOAD_FORMAT
                )
                handle.write(header)
                pos = len(header)
                covered = pos
                had_footer = False
            else:
                covered = ws.covered_len
                had_footer = ws.had_footer

            if len(filtered) >= BLOCK_MIN_BATCH:
                # bulk batch (migration, import): pack into BLOCK
                # frames, key-sorted so a block holds a contiguous
                # key run and bulk reads decode it once
                deduped = {key: (key, payload, ts) for key, payload, ts in filtered}
                batch = [deduped[key] for key in sorted(deduped)]
                for start in range(0, len(batch), BLOCK_RECORDS):
                    chunk = batch[start : start + BLOCK_RECORDS]
                    frame = segformat.encode_block(chunk, self.level)
                    for slot, (key, _payload, ts) in enumerate(chunk):
                        old = index.get(key)
                        if old is not None:
                            drop(old)
                        index[key] = IndexEntry(
                            key=key,
                            offset=pos,
                            frame_len=len(frame),
                            ts=ts,
                            slot=slot,
                        )
                        refs[pos] = refs.get(pos, 0) + 1
                    live += len(frame)
                    handle.write(frame)
                    pos += len(frame)
            else:
                for key, payload, ts in filtered:
                    frame = segformat.encode_record(key, payload, ts, self.level)
                    old = index.get(key)
                    if old is not None:
                        drop(old)
                    index[key] = IndexEntry(
                        key=key, offset=pos, frame_len=len(frame), ts=ts
                    )
                    live += len(frame)
                    handle.write(frame)
                    pos += len(frame)
            for key in tombstones:
                popped = index.pop(key, None)
                if popped is None:
                    continue
                drop(popped)
                frame = segformat.encode_marker(KIND_TOMBSTONE, key, now)
                handle.write(frame)
                pos += len(frame)
                n_tombstones += 1
            for key in touches:
                entry = index.get(key)
                if entry is None:
                    continue
                frame = segformat.encode_marker(KIND_TOUCH, key, now)
                handle.write(frame)
                pos += len(frame)
                index[key] = entry._replace(ts=max(entry.ts, now))

            write_footer = (
                not had_footer
                or (pos - covered) > self.footer_every_bytes
            )
            if write_footer:
                entries = [index[key] for key in sorted(index)]
                footer = segformat.encode_footer(
                    entries, n_tombstones, self.level
                )
                footer_offset: int | None = pos
                footer_frame_len = len(footer)
                handle.write(footer)
                pos += len(footer)
                covered = pos + TRAILER_FRAME_LEN
                handle.write(
                    segformat.encode_trailer(
                        pos - len(footer), len(footer), covered
                    )
                )
                pos = covered
            else:
                assert ws.footer_offset is not None
                footer_offset = ws.footer_offset
                footer_frame_len = ws.footer_frame_len
                handle.write(
                    segformat.encode_trailer(
                        ws.footer_offset, ws.footer_frame_len, covered
                    )
                )
                pos += TRAILER_FRAME_LEN
        ws.size = pos
        ws.footer_offset = footer_offset
        ws.footer_frame_len = footer_frame_len
        ws.covered_len = covered
        ws.had_footer = True
        ws.n_tombstone_frames = n_tombstones
        ws.live_frame_bytes = live
        ws.stamp = self._stamp()
        self.invalidate_reader()

        # threshold-triggered compaction: reclaim once the debt is
        # both absolutely and proportionally worth a rewrite
        dead = max(0, pos - live)
        if dead >= self.compact_min_bytes and dead >= self.compact_ratio * pos:
            self._compact_locked(self.reader())

    def _compact_locked(self, reader: SegmentReader) -> None:
        """Rewrite to live records only, re-packed into BLOCK frames so
        the compacted segment bulk-loads at one decompression per ~64
        records; caller holds the lock."""
        with self._lock.held():
            index = reader.index()
            tmp = self.path.with_name(
                f"{self.path.name}.{os.getpid()}-{uuid4().hex[:8]}.tmp"
            )
            try:
                with open(tmp, "wb") as handle:
                    header = segformat.encode_header(
                        self.table, self.level, _PAYLOAD_FORMAT
                    )
                    handle.write(header)
                    pos = len(header)
                    survivors: list[tuple[str, bytes, float]] = []
                    for key, entry in index.items():  # index() is sorted
                        payload = reader._payload_at(entry)
                        if payload is None:
                            continue  # corrupt record: compaction drops it
                        survivors.append((key, payload, entry.ts))
                    entries: list[IndexEntry] = []
                    refs: dict[int, int] = {}
                    live = 0
                    for start in range(0, len(survivors), BLOCK_RECORDS):
                        chunk = survivors[start : start + BLOCK_RECORDS]
                        frame = segformat.encode_block(chunk, self.level)
                        for slot, (key, _payload, ts) in enumerate(chunk):
                            entries.append(
                                IndexEntry(
                                    key=key,
                                    offset=pos,
                                    frame_len=len(frame),
                                    ts=ts,
                                    slot=slot,
                                )
                            )
                        refs[pos] = len(chunk)
                        live += len(frame)
                        handle.write(frame)
                        pos += len(frame)
                    footer = segformat.encode_footer(entries, 0, self.level)
                    footer_offset = pos
                    handle.write(footer)
                    pos += len(footer)
                    handle.write(
                        segformat.encode_trailer(
                            footer_offset, len(footer), pos + TRAILER_FRAME_LEN
                        )
                    )
                tmp.replace(self.path)
            finally:
                tmp.unlink(missing_ok=True)
            self._wstate = _WriterState(
                stamp=self._stamp(),
                size=pos + TRAILER_FRAME_LEN,
                footer_offset=footer_offset,
                footer_frame_len=len(footer),
                covered_len=pos + TRAILER_FRAME_LEN,
                had_footer=True,
                n_tombstone_frames=0,
                index={entry.key: entry for entry in entries},
                live_frame_bytes=live,
                block_refs=refs,
            )
            self.invalidate_reader()

    def remove(self) -> None:
        """Delete the segment file (migration away from packed format)."""
        with self._lock.held():
            self.path.unlink(missing_ok=True)
            self._wstate = None
            self.invalidate_reader()

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def get(self, key: str) -> bytes | None:
        """Lock-free payload lookup via the cached reader."""
        return self.reader().get(key)

    def stats(self) -> SegmentStats:
        """Occupancy snapshot via the cached reader."""
        return self.reader().stats()
