"""Advisory cross-process file locking for shared store directories.

The :class:`~repro.cache.store.GraphStore` is shared by many processes —
the ``generate_many`` shards, every :class:`~repro.service.SessionPool`
worker, and any concurrently running CLI invocation.  Its *single-file*
operations are already safe through atomic write-then-rename, but the
*multi-file* operations are not: LRU eviction removes a key's graph,
widget-set, and proof files as one unit, and a save of a derived file
(widgets, proofs) must observe a consistent answer to "does this key's
graph entry still exist?".  Without mutual exclusion, two pruners can
interleave their scans and evictions, and a pruner can slip between a
worker's graph save and widget save, leaving an orphaned
``.widgets.json`` behind.

:class:`StoreLock` provides the mutual exclusion: an advisory ``flock``
on a dedicated ``.lock`` file inside the store directory.  Advisory is
enough because every writer in this codebase goes through
:class:`GraphStore`; foreign processes scribbling into the cache
directory are outside the threat model (the loaders treat whatever they
produce as corrupt entries, i.e. misses).

On platforms without ``fcntl`` (Windows), the lock degrades to a
process-local :class:`threading.Lock` — single-process correctness is
kept, and the cross-process guarantees match what the store offered
before locking existed (atomic single-file ops only).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from pathlib import Path as FilePath
from typing import Iterator

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - Windows fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["StoreLock"]

#: Name of the lock file inside a store directory.  Deliberately not
#: matching any entry suffix so stats/eviction never count it.
LOCK_FILE_NAME = ".lock"


class StoreLock:
    """An exclusive advisory lock scoped to one store directory.

    Usage::

        lock = StoreLock(store_root)
        with lock.held():
            ...  # multi-file invariant work

    Re-entrant within a process *per instance* (a thread that already
    holds the lock may nest ``held()`` calls — the store's save paths
    call each other), blocking across processes.  The lock file itself
    is created on first use and never removed; an empty ``.lock`` in a
    cache directory is not an entry.
    """

    def __init__(self, root: str | FilePath) -> None:
        self.path = FilePath(root) / LOCK_FILE_NAME
        self._local = threading.local()
        self._thread_lock = threading.Lock()

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    @contextmanager
    def held(self) -> Iterator[None]:
        """Hold the lock for the duration of the ``with`` block.

        Blocks until every other holder — in this process or another —
        releases it.  Nested acquisition by the same thread is a no-op
        (depth-counted), so composed store operations don't deadlock.
        """
        if self._depth() > 0:
            self._local.depth += 1
            try:
                yield
            finally:
                self._local.depth -= 1
            return
        # serialise threads of this process first, then processes
        self._thread_lock.acquire()
        handle = None
        try:
            if fcntl is not None:
                # "a+" creates the lock file without truncating a
                # concurrent creator's; the fd is what flock latches onto
                handle = open(self.path, "a+")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            self._local.depth = 1
            try:
                yield
            finally:
                self._local.depth = 0
        finally:
            if handle is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                finally:
                    handle.close()
            self._thread_lock.release()
