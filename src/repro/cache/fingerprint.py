"""Stable content fingerprints for cache keys.

The :class:`~repro.cache.store.GraphStore` keys cached graphs by
``(log fingerprint, options fingerprint)``: the same log mined under the
same options always reuses the same entry, and changing either the log or
any option that affects mining produces a different key (automatic
invalidation).

``Node.fingerprint`` cannot serve here — it is built on Python's ``hash``,
which is salted per process for strings, so it differs between the process
that saved a graph and the one loading it.  These fingerprints instead
hash the canonical JSON encoding of the content with SHA-256, which is
stable across processes, platforms, and Python versions.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Iterable

from repro.cache.serialize import FORMAT_VERSION, node_to_dict
from repro.sqlparser.astnodes import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.options import PipelineOptions

__all__ = ["LogFingerprinter", "log_fingerprint", "options_fingerprint"]


def _digest(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _rule_name(rule: Any) -> str:
    """A process-stable name for a widget rule callable.

    Never ``repr`` — the default object repr embeds a memory address,
    which would make the fingerprint differ in every process.  Callables
    without a ``__qualname__`` (partials, callable instances) are named
    by their type instead.
    """
    name = getattr(rule, "__qualname__", None)
    if name:
        return f"{getattr(rule, '__module__', '')}.{name}"
    kind = type(rule)
    return f"{kind.__module__}.{kind.__qualname__}"


class LogFingerprinter:
    """Incrementally maintained :func:`log_fingerprint` of a growing log.

    The log hash is a plain sequential digest, so a log that only ever
    *appends* queries — an :class:`~repro.api.session.InterfaceSession` —
    can keep one hasher alive and feed it each batch, instead of paying
    ``O(accumulated log)`` to re-fingerprint from scratch every time the
    accumulated fingerprint is needed (store adoption, ``flush_to_store``).
    ``hexdigest()`` may be read at any point; it equals
    ``log_fingerprint(everything consumed so far)``.
    """

    def __init__(self) -> None:
        self._hasher = hashlib.sha256()
        self._hasher.update(f"v{FORMAT_VERSION}".encode("ascii"))
        self.n_queries = 0

    def update(self, queries: Iterable[Node]) -> "LogFingerprinter":
        """Consume an appended batch (log order); returns self."""
        for query in queries:
            canonical = json.dumps(
                node_to_dict(query), sort_keys=True, separators=(",", ":")
            )
            self._hasher.update(b"\x00")
            self._hasher.update(canonical.encode("utf-8"))
            self.n_queries += 1
        return self

    def hexdigest(self) -> str:
        """The fingerprint of everything consumed so far."""
        return self._hasher.copy().hexdigest()


def log_fingerprint(queries: Iterable[Node]) -> str:
    """SHA-256 over the canonical encoding of a parsed log, in log order.

    Two logs fingerprint equal exactly when they are the same sequence of
    structurally-equal ASTs — whitespace and comment differences in the
    raw SQL do not matter, query order does.
    """
    return LogFingerprinter().update(queries).hexdigest()


def options_fingerprint(options: PipelineOptions) -> str:
    """SHA-256 over every option that can change what mining produces.

    Covers the mining knobs (window, LCA pruning), the mapping knobs
    (merge, coverage), the widget library (name, cost coefficients, flags,
    and the rule function's qualified name), and the grammar annotations.
    ``cache_dir`` and ``daemon_socket`` are deliberately excluded — where
    a graph is cached, and whether it travels through a store daemon, must
    not change whether it is found.
    """
    library_signature = [
        {
            "name": wt.name,
            "cost": list(wt.cost.as_tuple()),
            "rule": _rule_name(wt.rule),
            "extrapolates": wt.extrapolates,
            "unbounded": wt.unbounded,
            "accepts_kinds": sorted(wt.accepts_kinds),
            "html_tag": wt.html_tag,
        }
        for wt in options.library
    ]
    annotations = options.annotations
    annotations_signature = {
        "literal_types": dict(sorted(annotations.literal_types.items())),
        "value_attributes": dict(sorted(annotations.value_attributes.items())),
        "collection_types": sorted(annotations.collection_types),
        "statement_types": sorted(annotations.statement_types),
    }
    return _digest(
        {
            "format": FORMAT_VERSION,
            "window": options.window,
            "lca_pruning": options.lca_pruning,
            "merge": options.merge,
            "coverage": options.coverage,
            "library": library_signature,
            "annotations": annotations_signature,
        }
    )
