"""Content-addressed on-disk store for mined graphs, widget sets,
closure proofs, diff memos, and compiled interface pages.

A :class:`GraphStore` is a directory of cache entries keyed by
``(log fingerprint, options fingerprint)``.  Each key owns up to five
records — five content-addressed tables over the same key space:

* **graphs** — the mined interaction graph (JSONL payload, see
  :func:`~repro.cache.serialize.graph_to_jsonl_bytes`), skipping the Mine
  stage on a hit;
* **widget_sets** — the mapped-and-merged widget set, skipping Map and
  Merge too.  Widget records are only meaningful next to their graph
  record (they reference its diffs table by index), so
  :meth:`load_widget_set` takes the loaded graph;
* **proof_sets** — positive closure-cover proofs, so ``expresses()``
  memos survive session death and are shared across
  :class:`~repro.service.SessionPool` workers;
* **diff_memos** — the Mine stage's skeleton-level alignment plans as
  representative shape pairs, so resumed sessions and pool workers
  inherit a hot :class:`~repro.treediff.memo.DiffMemo`;
* **compiled** — the incremental compiler's page state (per-widget
  artifacts + closure table, see
  :mod:`repro.compiler.incremental`), so a resumed session serves its
  first page — and warms its closure-slice cache — without re-rendering
  anything.

Two on-disk formats carry the same payload bytes:

* ``format="packed"`` (the default for new stores) — one append-only
  block-compressed segment file per table (``graphs.seg``,
  ``widgets.seg``, ``proofs.seg``, ``diffmemos.seg``, ``compiled.seg``;
  see :mod:`repro.cache.blockstore`).  A save appends one record, a
  lookup is an mmap + bisect + single-block decode, eviction appends a
  tombstone, and ``stats()``/``prune()`` read five footers instead of
  statting every file in the directory;
* ``format="json"`` — the legacy one-file-per-table-per-key layout
  (``<key>.graph.jsonl`` + four ``.json`` derived files), kept as the
  interchange/debug path.  A packed record's payload is the *exact
  bytes* of the corresponding JSON file, so the two formats are
  byte-identical per entry and :meth:`migrate` converts either way
  losslessly.

``format="auto"`` (constructor default) opens whatever the directory
already holds — segments win when both are present (a migration that was
interrupted mid-way) — and picks packed for an empty directory.

The key is content-addressed, so there is no explicit invalidation
protocol for correctness: a changed log or changed options simply hashes
to a different entry and misses.  :meth:`GraphStore.invalidate` and
:meth:`GraphStore.clear` exist for space management and for forcing a
re-mine after a code change.

Space management is optional and LRU: construct the store with
``max_bytes`` and/or ``max_entries`` and every save evicts the
least-recently-*used* keys until the caps hold; :meth:`prune` applies
caps on demand and :meth:`stats` reports occupancy.  Eviction is per-key
— a key's graph, widget, proof, memo, and compiled records leave
together, never orphaning a derived entry.  Recency in packed mode is a record timestamp:
loads batch recency bumps in memory and the next save (or
:meth:`flush_recency`, or :meth:`prune`) appends them as TOUCH markers,
so cross-process recency is exact at every eviction decision.

Concurrency: the store is the shared backing of every worker process —
``generate_many`` shards, :class:`~repro.service.SessionPool` workers,
concurrent CLI invocations.  All *writes* to the shared segment files
are serialised by the advisory :class:`~repro.cache.lock.StoreLock` on
``<root>/.lock``; because segments are append-only and compaction
replaces them atomically, *loads* stay deliberately lock-free — a reader
racing an eviction simply misses.  In JSON mode single-file saves are
atomic (write-then-rename) and only multi-file operations take the lock,
exactly as before.

Remote mode: constructed with ``remote=<socket path>``, the store
becomes a thin client of a :class:`~repro.service.daemon.StoreDaemon` —
the same public API, but every byte operation (record get/put, prune,
stats) travels over a unix-domain socket to the one process that owns
the segment files.  Encoding/decoding stays in this process; the daemon
only moves bytes.  When no daemon answers (never started, crashed), the
store *fails open* to direct in-process access — behaviourally the
pre-daemon store — and keeps working; see
:mod:`repro.cache.client` for the transport and failure semantics.
"""

from __future__ import annotations

import os
from pathlib import Path as FilePath
from typing import TYPE_CHECKING, Any, Iterator
from uuid import uuid4

from repro.cache.blockstore import DEFAULT_LEVEL, Segment
from repro.cache.client import DaemonUnavailable, QuotaExceeded, StoreClient
from repro.cache.lock import StoreLock
from repro.cache.serialize import (
    compiled_page_from_json_bytes,
    compiled_page_to_json_bytes,
    diff_memo_from_json_bytes,
    diff_memo_to_json_bytes,
    graph_from_jsonl_bytes,
    graph_to_jsonl_bytes,
    load_compiled_page,
    load_diff_memo,
    load_graph,
    load_proofs,
    load_widgets,
    proofs_from_json_bytes,
    proofs_to_json_bytes,
    save_compiled_page,
    save_diff_memo,
    save_graph,
    save_proofs,
    save_widgets,
    widgets_from_json_bytes,
    widgets_to_json_bytes,
)
from repro.core.closure import ClosureCache
from repro.errors import CacheError
from repro.graph.build import BuildStats
from repro.graph.interaction import InteractionGraph
from repro.treediff.memo import DiffMemo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.paths import Path
    from repro.sqlparser.astnodes import Node
    from repro.sqlparser.grammar import GrammarAnnotations
    from repro.widgets.base import Widget, WidgetType

__all__ = ["GraphStore"]

#: Hex digits of each fingerprint kept in the key.  16 of each
#: (64 bits log + 64 bits options) keeps keys short while making
#: accidental collisions vanishingly unlikely for any realistic store.
_KEY_DIGITS = 16

_SUFFIX = ".graph.jsonl"
_WIDGETS_SUFFIX = ".widgets.json"
_PROOFS_SUFFIX = ".proofs.json"
_DIFFMEMO_SUFFIX = ".diffmemo.json"
_COMPILED_SUFFIX = ".compiled.json"

#: Suffixes of the derived tables — files that are only meaningful next
#: to their key's graph entry.
_DERIVED_SUFFIXES = (
    _WIDGETS_SUFFIX,
    _PROOFS_SUFFIX,
    _DIFFMEMO_SUFFIX,
    _COMPILED_SUFFIX,
)

#: stats() table names, keyed by entry-file suffix (JSON layout).
_TABLE_NAMES = {
    _SUFFIX: "graphs",
    _WIDGETS_SUFFIX: "widget_sets",
    _PROOFS_SUFFIX: "proof_sets",
    _DIFFMEMO_SUFFIX: "diff_memos",
    _COMPILED_SUFFIX: "compiled",
}

#: Table processing order: graphs first, so a derived record is never
#: written (or migrated) before the graph record it belongs to.
_TABLE_ORDER = ("graphs", "widget_sets", "proof_sets", "diff_memos", "compiled")

#: Segment file per table (packed layout).
_SEGMENT_FILES = {
    "graphs": "graphs.seg",
    "widget_sets": "widgets.seg",
    "proof_sets": "proofs.seg",
    "diff_memos": "diffmemos.seg",
    "compiled": "compiled.seg",
}

#: JSON entry-file suffix per table (inverse of _TABLE_NAMES).
_SUFFIX_BY_TABLE = {name: suffix for suffix, name in _TABLE_NAMES.items()}

#: Tables a caller may drop wholesale via invalidate_table (never the
#: graphs table — that would orphan every derived record).
_DERIVED_TABLES = ("widget_sets", "proof_sets", "diff_memos", "compiled")

#: Keys migrated per append batch.  Batching keeps json->packed
#: migration O(keys) instead of O(keys^2) footer rebuilds, while an
#: interruption loses at most one batch of progress (the source files of
#: a batch are only removed after its records are committed).
_MIGRATE_BATCH = 256

#: Sentinel returned by ``GraphStore._via_remote`` when the daemon
#: vanished mid-operation and the store fell open to direct access — the
#: caller then re-runs the operation against the local layout.
_FELL_BACK = object()


class GraphStore:
    """Load/save/invalidate cached graphs and widget sets under one
    directory.

    Args:
        root: the cache directory; created (with parents) if missing.
        max_bytes: optional cap on the total on-disk size of the store;
            exceeding saves evict least-recently-used keys.
        max_entries: optional cap on the number of distinct keys.
        format: ``"auto"`` (open whatever the directory holds, packed for
            a fresh one), ``"packed"``, or ``"json"``.
        zlib_level: compression level for packed segments (0-9).
        remote: unix-domain socket of a running
            :class:`~repro.service.daemon.StoreDaemon`; when set, all
            store operations go through the daemon (``format`` and the
            caps then describe the *fallback* store).  When no daemon
            answers — at construction or later — the store fails open to
            direct access on ``root``.
    """

    def __init__(
        self,
        root: str | FilePath,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        format: str = "auto",
        zlib_level: int = DEFAULT_LEVEL,
        remote: str | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if format not in ("auto", "packed", "json"):
            raise ValueError(
                f"format must be 'auto', 'packed', or 'json', got {format!r}"
            )
        if not 0 <= zlib_level <= 9:
            raise ValueError(f"zlib_level must be in 0..9, got {zlib_level}")
        self.root = FilePath(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.zlib_level = zlib_level
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = StoreLock(self.root)
        self._requested_format = format
        self._segments: dict[str, Segment] = {}
        #: loads record recency here; the next locked write appends the
        #: batch as TOUCH markers (see flush_recency)
        self._pending_touches: dict[str, set[str]] = {
            table: set() for table in _TABLE_ORDER
        }
        self._remote: StoreClient | None = None
        if remote is not None:
            client = StoreClient(remote)
            try:
                client.ping()
                self._remote = client
            except DaemonUnavailable:
                # fail open at construction: no daemon is a degraded
                # deployment, not an error
                client.close()
        if self._remote is not None:
            self._format = "remote"
        else:
            self._attach_local()

    def _attach_local(self) -> None:
        """Resolve the on-disk format and open it for direct access (the
        daemon-less constructor path, and the fail-open path)."""
        self._format = self._resolve_format(self._requested_format)
        if self._format == "packed":
            self._init_segments()
        self._heal_mixed_state()

    def _fail_open(self) -> None:
        """Drop an unreachable daemon and continue with direct access.

        One-way: once a store fell open it stays local for its lifetime
        (flip-flopping between a recovering daemon and direct access
        would interleave two writers' lock domains).  Constructing a new
        ``GraphStore(remote=...)`` re-attaches.
        """
        if self._remote is not None:
            self._remote.close()
            self._remote = None
        self._attach_local()

    def _via_remote(self, fn: Any, *args: Any) -> Any:
        """Run one remote operation; on transport failure fall open and
        return the :data:`_FELL_BACK` sentinel so the caller re-runs the
        operation against the local store."""
        try:
            return fn(*args)
        except DaemonUnavailable:
            self._fail_open()
            return _FELL_BACK

    def _resolve_format(self, requested: str) -> str:
        if requested != "auto":
            return requested
        # segments win over leftover json files: an interrupted
        # json->packed migration must resume as packed
        for name in _SEGMENT_FILES.values():
            if (self.root / name).exists():
                return "packed"
        if next(self.root.glob("*" + _SUFFIX), None) is not None:
            return "json"
        return "packed"

    def _init_segments(self) -> None:
        self._segments = {
            table: Segment(
                self.root / _SEGMENT_FILES[table],
                self._lock,
                table,
                level=self.zlib_level,
            )
            for table in _TABLE_ORDER
        }

    def _heal_mixed_state(self) -> None:
        """Finish an interrupted layout migration.

        A ``cache migrate`` killed between batches leaves *both* segment
        files and legacy per-key JSON files in the directory.  Opening
        such a store used to silently serve only one side — ``auto``
        resolves to packed, so the not-yet-migrated JSON keys became
        invisible misses, and an explicitly-``json`` open would write new
        entries that a later ``auto`` open (which prefers segments)
        would never see.  Now the mixed state is detected at open and
        the migration is *resumed* toward the resolved format, so the
        store always presents every key in exactly one layout.  Both
        directions are lossless: the torn run's already-converted keys
        and still-pending keys are disjoint (a batch's source files are
        only removed after its records commit), and payloads are
        byte-identical across layouts.
        """
        if self._format == "packed":
            strays = next(self.root.glob("*" + _SUFFIX), None) is not None or any(
                next(self.root.glob("*" + suffix), None) is not None
                for suffix in _DERIVED_SUFFIXES
            )
            if strays:
                self._migrate_to_packed()
        elif self._format == "json":
            if any(
                (self.root / name).exists() for name in _SEGMENT_FILES.values()
            ):
                self._migrate_to_json()

    @property
    def format(self) -> str:
        """The resolved on-disk format — ``"packed"`` or ``"json"`` —
        or ``"remote"`` while attached to a store daemon."""
        return self._format

    @property
    def remote(self) -> str | None:
        """The daemon socket this store is attached to, or ``None`` when
        operating directly on the local layout (including after a
        fail-open)."""
        return self._remote.socket_path if self._remote is not None else None

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def key(log_fingerprint: str, options_fingerprint: str) -> str:
        """The store key for a (log, options) pair."""
        return f"{log_fingerprint[:_KEY_DIGITS]}-{options_fingerprint[:_KEY_DIGITS]}"

    def path_for(self, log_fingerprint: str, options_fingerprint: str) -> FilePath:
        """Where the JSON-layout graph entry for this key lives (whether
        or not it exists; in packed mode the entry lives in
        ``graphs.seg`` instead)."""
        return self.root / (self.key(log_fingerprint, options_fingerprint) + _SUFFIX)

    def widgets_path_for(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> FilePath:
        """Where the JSON-layout widget-set entry for this key lives."""
        return self.root / (
            self.key(log_fingerprint, options_fingerprint) + _WIDGETS_SUFFIX
        )

    def proofs_path_for(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> FilePath:
        """Where the JSON-layout closure-proof entry for this key lives."""
        return self.root / (
            self.key(log_fingerprint, options_fingerprint) + _PROOFS_SUFFIX
        )

    def diffmemo_path_for(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> FilePath:
        """Where the JSON-layout diff-memo entry for this key lives."""
        return self.root / (
            self.key(log_fingerprint, options_fingerprint) + _DIFFMEMO_SUFFIX
        )

    def compiled_path_for(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> FilePath:
        """Where the JSON-layout compiled-page entry for this key lives."""
        return self.root / (
            self.key(log_fingerprint, options_fingerprint) + _COMPILED_SUFFIX
        )

    # ------------------------------------------------------------------
    # packed-mode plumbing
    # ------------------------------------------------------------------
    def _segment(self, table: str) -> Segment:
        return self._segments[table]

    def _load_record(self, table: str, key: str) -> bytes | None:
        """Lock-free packed lookup; a hit queues a recency touch."""
        payload = self._segment(table).get(key)
        if payload is not None:
            self._pending_touches[table].add(key)
        return payload

    def _flush_touches_locked(self) -> None:
        """Append pending recency bumps as TOUCH markers (under lock)."""
        with self._lock.held():
            for table in _TABLE_ORDER:
                keys = self._pending_touches[table]
                if keys:
                    self._segment(table).append_touches(sorted(keys))
                    keys.clear()

    def flush_recency(self) -> None:
        """Persist batched load-recency (packed mode; json loads touch
        mtimes directly, so this is a no-op there).

        Saves, :meth:`prune`, and the pipeline's cache stage call this
        automatically; long-running read-only consumers may call it so
        their hits count for cross-process LRU.
        """
        if self._remote is not None:
            # every load already went through the daemon, whose recency
            # is exact — there is nothing batched locally to flush
            return
        if self._format != "packed":
            return
        if any(self._pending_touches[table] for table in _TABLE_ORDER):
            with self._lock.held():
                self._flush_touches_locked()

    # ------------------------------------------------------------------
    # byte-level record surface
    # ------------------------------------------------------------------
    # The daemon serves these over its socket: records travel as raw
    # payload bytes (identical across layouts), so the daemon never
    # encodes or decodes a graph and its lock hold times stay tiny.

    def record_get(self, table: str, key: str) -> bytes | None:
        """Raw payload bytes of one record, or ``None`` on a miss.  A
        hit counts as recency (TOUCH marker / mtime bump)."""
        if table not in _TABLE_ORDER:
            raise ValueError(f"unknown table {table!r}")
        if self._remote is not None:
            outcome = self._via_remote(self._remote_record_get, table, key)
            if outcome is not _FELL_BACK:
                return outcome  # type: ignore[no-any-return]
        if self._format == "packed":
            return self._load_record(table, key)
        path = self.root / (key + _SUFFIX_BY_TABLE[table])
        try:
            data = path.read_bytes()
        except OSError:
            return None
        _touch(path)
        return data

    def record_has(self, table: str, key: str) -> bool:
        """True when a live record exists for ``key`` in ``table``."""
        if table not in _TABLE_ORDER:
            raise ValueError(f"unknown table {table!r}")
        if self._remote is not None:
            outcome = self._via_remote(self._remote_record_has, table, key)
            if outcome is not _FELL_BACK:
                return bool(outcome)
        if self._format == "packed":
            return self._segment(table).reader().has(key)
        return (self.root / (key + _SUFFIX_BY_TABLE[table])).exists()

    def record_put(
        self,
        table: str,
        key: str,
        payload: bytes,
        graph_payload: bytes | None = None,
    ) -> bool:
        """Store one record's raw payload bytes under ``key``.

        Derived tables keep the no-orphan invariant: when the key has no
        live graph record the save is refused (returns ``False``) unless
        ``graph_payload`` is supplied, in which case the graph record is
        written first under the same lock — the byte-level equivalent of
        :meth:`save_widget_set`'s re-save-if-evicted guarantee.
        """
        if table not in _TABLE_ORDER:
            raise ValueError(f"unknown table {table!r}")
        if self._remote is not None:
            outcome = self._via_remote(
                self._remote_record_put, table, key, payload, graph_payload
            )
            if outcome is not _FELL_BACK:
                return bool(outcome)
        if self._format == "packed":
            with self._lock.held():
                if table != "graphs" and not self._segment("graphs").reader().has(
                    key
                ):
                    if graph_payload is None:
                        return False
                    self._segment("graphs").append_records(
                        [(key, graph_payload, None)]
                    )
                self._segment(table).append_records([(key, payload, None)])
                self._flush_touches_locked()
            self._enforce_caps()
            return True
        graph_path = self.root / (key + _SUFFIX)
        with self._lock.held():
            writes: list[tuple[FilePath, bytes]] = []
            if table != "graphs" and not graph_path.exists():
                if graph_payload is None:
                    return False
                writes.append((graph_path, graph_payload))
            writes.append((self.root / (key + _SUFFIX_BY_TABLE[table]), payload))
            for target, data in writes:
                tmp = target.with_name(
                    f"{target.name}.{os.getpid()}-{uuid4().hex[:8]}.tmp"
                )
                try:
                    tmp.write_bytes(data)
                    tmp.replace(target)
                finally:
                    tmp.unlink(missing_ok=True)
        self._enforce_caps()
        return True

    # ------------------------------------------------------------------
    # remote dispatch (thin byte shims over StoreClient)
    # ------------------------------------------------------------------
    def _client(self) -> StoreClient:
        client = self._remote
        if client is None:  # pragma: no cover - guarded by callers
            raise CacheError("store is not attached to a daemon")
        return client

    def _remote_record_get(self, table: str, key: str) -> bytes | None:
        try:
            header, payload = self._client().call("get", table=table, key=key)
        except QuotaExceeded:
            # an over-quota client degrades to cache misses; it still
            # works, it just stops being accelerated
            return None
        return payload if header.get("found") else None

    def _remote_record_has(self, table: str, key: str) -> bool:
        try:
            header, _ = self._client().call("has", table=table, key=key)
        except QuotaExceeded:
            return False
        return bool(header.get("found"))

    def _remote_record_put(
        self,
        table: str,
        key: str,
        payload: bytes,
        graph_payload: bytes | None,
    ) -> bool:
        try:
            header, _ = self._client().call(
                "put",
                payload=payload,
                extra=graph_payload or b"",
                table=table,
                key=key,
                has_graph_payload=graph_payload is not None,
            )
        except QuotaExceeded:
            # saves are an optimisation; over quota they are skipped, and
            # the daemon's per-client counters make the denial visible
            return False
        return bool(header.get("stored"))

    def _remote_keys(self) -> list[str]:
        header, _ = self._client().call("keys", table="graphs")
        return [str(key) for key in header.get("keys", [])]

    def _remote_stats(self) -> dict[str, Any]:
        header, _ = self._client().call("stats")
        payload = dict(header.get("store", {}))
        payload["daemon"] = header.get("daemon", {})
        return payload

    def _remote_prune(
        self, max_bytes: int | None, max_entries: int | None
    ) -> int:
        header, _ = self._client().call(
            "prune", max_bytes=max_bytes, max_entries=max_entries
        )
        return int(header.get("removed", 0))

    def _remote_invalidate(
        self, log_fingerprint: str | None, options_fingerprint: str | None
    ) -> int:
        header, _ = self._client().call(
            "invalidate",
            log_fingerprint=log_fingerprint,
            options_fingerprint=options_fingerprint,
        )
        return int(header.get("removed", 0))

    def _remote_invalidate_table(self, table: str) -> int:
        header, _ = self._client().call("invalidate_table", table=table)
        return int(header.get("removed", 0))

    def _remote_compact(self) -> bool:
        header, _ = self._client().call("compact")
        return bool(header.get("rewritten"))

    # ------------------------------------------------------------------
    # graph table
    # ------------------------------------------------------------------
    def has(self, log_fingerprint: str, options_fingerprint: str) -> bool:
        """True when a graph entry exists for this key (it may still fail
        to load if written by an incompatible version)."""
        if self._remote is not None:
            return self.record_has(
                "graphs", self.key(log_fingerprint, options_fingerprint)
            )
        if self._format == "packed":
            key = self.key(log_fingerprint, options_fingerprint)
            return self._segment("graphs").reader().has(key)
        return self.path_for(log_fingerprint, options_fingerprint).exists()

    def load(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> tuple[InteractionGraph, BuildStats] | None:
        """Return the cached ``(graph, stats)`` for this key, or ``None``.

        A missing entry, a version mismatch, or a corrupt record all load
        as ``None`` (a miss): the caller re-mines and overwrites, which is
        always safe because the store is content-addressed.  A successful
        load touches the entry (LRU recency for eviction).
        """
        key = self.key(log_fingerprint, options_fingerprint)
        if self._remote is not None:
            payload = self.record_get("graphs", key)
            if payload is None:
                return None
            try:
                graph, stats, _extra = graph_from_jsonl_bytes(
                    payload, label=f"daemon:graphs[{key}]"
                )
            except CacheError:
                return None
            return graph, stats
        if self._format == "packed":
            payload = self._load_record("graphs", key)
            if payload is None:
                return None
            try:
                graph, stats, _extra = graph_from_jsonl_bytes(
                    payload, label=f"graphs.seg[{key}]"
                )
            except CacheError:
                return None
            return graph, stats
        path = self.path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            graph, stats, _extra = load_graph(path)
        except CacheError:
            return None
        _touch(path)
        return graph, stats

    def save(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        graph: InteractionGraph,
        stats: BuildStats | None = None,
    ) -> FilePath:
        """Persist a mined graph under this key; returns the file the
        entry landed in (the key's own file in JSON mode, ``graphs.seg``
        in packed mode)."""
        if self._remote is not None:
            key = self.key(log_fingerprint, options_fingerprint)
            self.record_put("graphs", key, graph_to_jsonl_bytes(graph, stats))
            if self._format == "json":  # fell open mid-save
                return self.path_for(log_fingerprint, options_fingerprint)
            return self.root / _SEGMENT_FILES["graphs"]
        if self._format == "packed":
            key = self.key(log_fingerprint, options_fingerprint)
            payload = graph_to_jsonl_bytes(graph, stats)
            with self._lock.held():
                self._segment("graphs").append_records([(key, payload, None)])
                self._flush_touches_locked()
            self._enforce_caps()
            return self.root / _SEGMENT_FILES["graphs"]
        path = self.path_for(log_fingerprint, options_fingerprint)
        # Deliberately lock-free: save_graph is a single-file atomic
        # write-then-rename, so a concurrent reader sees either the old
        # complete entry or the new one — the lock only serialises
        # *multi-file* operations (prune/invalidate/derived tables).
        # repro-lint: disable=RL001
        save_graph(path, graph, stats)
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # widget-set table
    # ------------------------------------------------------------------
    def load_widget_set(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        graph: InteractionGraph,
        library: list[WidgetType],
        annotations: GrammarAnnotations,
    ) -> list[Widget] | None:
        """Return the cached widget set for this key decoded against
        ``graph``, or ``None``.

        ``graph`` must be the graph loaded from the *same* key — widget
        records reference its diffs table by index.  Any decode failure
        (foreign version, stale library, corruption) is a miss.
        """
        key = self.key(log_fingerprint, options_fingerprint)
        if self._remote is not None:
            payload = self.record_get("widget_sets", key)
            if payload is None:
                return None
            try:
                return widgets_from_json_bytes(
                    payload,
                    graph,
                    library,
                    annotations,
                    label=f"daemon:widgets[{key}]",
                )
            except CacheError:
                return None
        if self._format == "packed":
            payload = self._load_record("widget_sets", key)
            if payload is None:
                return None
            try:
                return widgets_from_json_bytes(
                    payload,
                    graph,
                    library,
                    annotations,
                    label=f"widgets.seg[{key}]",
                )
            except CacheError:
                return None
        path = self.widgets_path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            widgets = load_widgets(path, graph, library, annotations)
        except CacheError:
            return None
        _touch(path)
        return widgets

    def save_widget_set(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        widgets: list[Widget],
        graph: InteractionGraph,
    ) -> FilePath:
        """Persist a mapped widget set under this key; returns the file
        the entry landed in.

        Taken under the store lock so a concurrent pruner cannot evict the
        key's graph entry between our check and our write: if the graph
        entry is gone (evicted since the caller loaded/saved it), it is
        re-saved together with the widgets — the caller holds the graph in
        hand — so a widget record never exists without its graph.

        Raises:
            CacheError: when the widgets do not belong to ``graph``.
        """
        if self._remote is not None:
            key = self.key(log_fingerprint, options_fingerprint)
            self.record_put(
                "widget_sets",
                key,
                widgets_to_json_bytes(widgets, graph),
                graph_payload=graph_to_jsonl_bytes(graph),
            )
            if self._format == "json":  # fell open mid-save
                return self.widgets_path_for(log_fingerprint, options_fingerprint)
            return self.root / _SEGMENT_FILES["widget_sets"]
        if self._format == "packed":
            key = self.key(log_fingerprint, options_fingerprint)
            payload = widgets_to_json_bytes(widgets, graph)
            with self._lock.held():
                if not self._segment("graphs").reader().has(key):
                    self._segment("graphs").append_records(
                        [(key, graph_to_jsonl_bytes(graph), None)]
                    )
                self._segment("widget_sets").append_records([(key, payload, None)])
                self._flush_touches_locked()
            self._enforce_caps()
            return self.root / _SEGMENT_FILES["widget_sets"]
        path = self.widgets_path_for(log_fingerprint, options_fingerprint)
        with self._lock.held():
            if not self.path_for(log_fingerprint, options_fingerprint).exists():
                save_graph(
                    self.path_for(log_fingerprint, options_fingerprint), graph
                )
            save_widgets(path, widgets, graph)
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # closure-proof table
    # ------------------------------------------------------------------
    def load_proof_triples(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> list[tuple[Node, Node, Path]] | None:
        """Return this key's decoded proof triples, or ``None``.

        The triples are only sound for the key's own (deterministic)
        widget set; feed them to
        :meth:`~repro.core.closure.ClosureCache.import_proofs` against
        exactly those widgets.  Any decode failure is a miss.
        """
        key = self.key(log_fingerprint, options_fingerprint)
        if self._remote is not None:
            payload = self.record_get("proof_sets", key)
            if payload is None:
                return None
            try:
                return proofs_from_json_bytes(
                    payload, label=f"daemon:proofs[{key}]"
                )
            except CacheError:
                return None
        if self._format == "packed":
            payload = self._load_record("proof_sets", key)
            if payload is None:
                return None
            try:
                return proofs_from_json_bytes(
                    payload, label=f"proofs.seg[{key}]"
                )
            except CacheError:
                return None
        path = self.proofs_path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            triples = load_proofs(path)
        except CacheError:
            return None
        _touch(path)
        return triples

    def load_closure_proofs(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        widgets: list[Widget],
    ) -> ClosureCache | None:
        """Return a :class:`~repro.core.closure.ClosureCache` armed for
        ``widgets`` with this key's persisted proofs, or ``None``.

        ``widgets`` must be the widget set belonging to the *same* key —
        the content-addressed key is what makes a persisted proof sound
        for them.
        """
        triples = self.load_proof_triples(log_fingerprint, options_fingerprint)
        if triples is None:
            return None
        cache = ClosureCache()
        cache.import_proofs(widgets, triples)
        return cache

    def save_closure_proofs(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        cache: ClosureCache,
        widgets: list[Widget],
    ) -> FilePath | None:
        """Persist the cache's positive proofs for ``widgets`` under this
        key; returns the file written, or ``None`` when nothing was.

        Nothing is written when the cache holds no proofs for exactly this
        widget set, or when the key's graph entry no longer exists (a
        pruner evicted it): proofs are a pure accelerator, and unlike
        :meth:`save_widget_set` the caller cannot re-create the graph
        entry from what it holds, so the save is skipped rather than
        orphaning a proof record.
        """
        triples = cache.export_proofs(widgets)
        if not triples:
            return None
        if self._remote is not None:
            key = self.key(log_fingerprint, options_fingerprint)
            if not self.record_put("proof_sets", key, proofs_to_json_bytes(triples)):
                return None
            if self._format == "json":  # fell open mid-save
                return self.proofs_path_for(log_fingerprint, options_fingerprint)
            return self.root / _SEGMENT_FILES["proof_sets"]
        if self._format == "packed":
            key = self.key(log_fingerprint, options_fingerprint)
            payload = proofs_to_json_bytes(triples)
            with self._lock.held():
                if not self._segment("graphs").reader().has(key):
                    return None
                self._segment("proof_sets").append_records([(key, payload, None)])
                self._flush_touches_locked()
            self._enforce_caps()
            return self.root / _SEGMENT_FILES["proof_sets"]
        path = self.proofs_path_for(log_fingerprint, options_fingerprint)
        with self._lock.held():
            if not self.path_for(log_fingerprint, options_fingerprint).exists():
                return None
            save_proofs(path, triples)
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # diff-memo table
    # ------------------------------------------------------------------
    def load_diff_memo_pairs(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> list[tuple[Node, Node, bool]] | None:
        """Return this key's decoded representative shape pairs, or
        ``None``.

        Feed them to :meth:`~repro.treediff.memo.DiffMemo.import_pairs`:
        each pair is re-aligned once by the current algorithm, so a stale
        or foreign record can cost time but never correctness.  Any decode
        failure is a miss.
        """
        key = self.key(log_fingerprint, options_fingerprint)
        if self._remote is not None:
            payload = self.record_get("diff_memos", key)
            if payload is None:
                return None
            try:
                return diff_memo_from_json_bytes(
                    payload, label=f"daemon:diffmemos[{key}]"
                )
            except CacheError:
                return None
        if self._format == "packed":
            payload = self._load_record("diff_memos", key)
            if payload is None:
                return None
            try:
                return diff_memo_from_json_bytes(
                    payload, label=f"diffmemos.seg[{key}]"
                )
            except CacheError:
                return None
        path = self.diffmemo_path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            pairs = load_diff_memo(path)
        except CacheError:
            return None
        _touch(path)
        return pairs

    def load_diff_memo(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> DiffMemo | None:
        """Return a warmed :class:`~repro.treediff.memo.DiffMemo` built
        from this key's persisted shape pairs, or ``None``."""
        pairs = self.load_diff_memo_pairs(log_fingerprint, options_fingerprint)
        if pairs is None:
            return None
        memo = DiffMemo()
        memo.import_pairs(pairs)
        return memo

    def save_diff_memo(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        memo: DiffMemo,
    ) -> FilePath | None:
        """Persist the memo's representative shape pairs under this key;
        returns the file written, or ``None`` when nothing was.

        Nothing is written for an empty memo, for a memo whose
        representative trees cannot be JSON-encoded, or when the key's
        graph entry no longer exists (a pruner evicted it): like closure
        proofs, a memo is a pure accelerator, so the save is skipped
        rather than orphaning a derived record.
        """
        pairs = memo.export_pairs()
        if not pairs:
            return None
        if self._remote is not None:
            key = self.key(log_fingerprint, options_fingerprint)
            try:
                payload = diff_memo_to_json_bytes(pairs)
            except CacheError:
                # a representative tree with non-JSON attribute values:
                # the memo stays in-memory only
                return None
            if not self.record_put("diff_memos", key, payload):
                return None
            if self._format == "json":  # fell open mid-save
                return self.diffmemo_path_for(log_fingerprint, options_fingerprint)
            return self.root / _SEGMENT_FILES["diff_memos"]
        if self._format == "packed":
            key = self.key(log_fingerprint, options_fingerprint)
            try:
                payload = diff_memo_to_json_bytes(pairs)
            except CacheError:
                # a representative tree with non-JSON attribute values:
                # the memo stays in-memory only
                return None
            with self._lock.held():
                if not self._segment("graphs").reader().has(key):
                    return None
                self._segment("diff_memos").append_records([(key, payload, None)])
                self._flush_touches_locked()
            self._enforce_caps()
            return self.root / _SEGMENT_FILES["diff_memos"]
        path = self.diffmemo_path_for(log_fingerprint, options_fingerprint)
        with self._lock.held():
            if not self.path_for(log_fingerprint, options_fingerprint).exists():
                return None
            try:
                save_diff_memo(path, pairs)
            except CacheError:
                # a representative tree with non-JSON attribute values:
                # the memo stays in-memory only
                return None
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # compiled-page table
    # ------------------------------------------------------------------
    def load_compiled_page(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> dict[str, Any] | None:
        """Return this key's persisted compiled-page state, or ``None``.

        Feed it to
        :meth:`~repro.compiler.incremental.IncrementalCompiler.import_state`:
        every adopted artifact and closure slice is revalidated against
        the session's own widgets by fingerprint, so a stale or foreign
        record can cost time but never correctness.  Any decode failure
        is a miss.
        """
        key = self.key(log_fingerprint, options_fingerprint)
        if self._remote is not None:
            payload = self.record_get("compiled", key)
            if payload is None:
                return None
            try:
                return compiled_page_from_json_bytes(
                    payload, label=f"daemon:compiled[{key}]"
                )
            except CacheError:
                return None
        if self._format == "packed":
            payload = self._load_record("compiled", key)
            if payload is None:
                return None
            try:
                return compiled_page_from_json_bytes(
                    payload, label=f"compiled.seg[{key}]"
                )
            except CacheError:
                return None
        path = self.compiled_path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            state = load_compiled_page(path)
        except CacheError:
            return None
        _touch(path)
        return state

    def save_compiled_page(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        state: dict[str, Any],
    ) -> FilePath | None:
        """Persist a compiled-page state under this key; returns the file
        written, or ``None`` when nothing was.

        Nothing is written when the key's graph entry no longer exists (a
        pruner evicted it): like closure proofs and diff memos, a
        compiled page is a pure accelerator, and the caller cannot
        re-create the graph entry from what it holds, so the save is
        skipped rather than orphaning a derived record.
        """
        if self._remote is not None:
            key = self.key(log_fingerprint, options_fingerprint)
            if not self.record_put(
                "compiled", key, compiled_page_to_json_bytes(state)
            ):
                return None
            if self._format == "json":  # fell open mid-save
                return self.compiled_path_for(log_fingerprint, options_fingerprint)
            return self.root / _SEGMENT_FILES["compiled"]
        if self._format == "packed":
            key = self.key(log_fingerprint, options_fingerprint)
            payload = compiled_page_to_json_bytes(state)
            with self._lock.held():
                if not self._segment("graphs").reader().has(key):
                    return None
                self._segment("compiled").append_records([(key, payload, None)])
                self._flush_touches_locked()
            self._enforce_caps()
            return self.root / _SEGMENT_FILES["compiled"]
        path = self.compiled_path_for(log_fingerprint, options_fingerprint)
        with self._lock.held():
            if not self.path_for(log_fingerprint, options_fingerprint).exists():
                return None
            save_compiled_page(path, state)
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """All keys with a live graph entry, sorted."""
        if self._remote is not None:
            outcome = self._via_remote(self._remote_keys)
            if outcome is not _FELL_BACK:
                return sorted(outcome)
        if self._format == "packed":
            return self._segment("graphs").reader().keys()
        return sorted(path.name[: -len(_SUFFIX)] for path in self.entries())

    def entries(self) -> list[FilePath]:
        """All JSON-layout graph entry files, sorted by name (always
        empty in packed mode — use :meth:`keys`)."""
        return sorted(self.root.glob("*" + _SUFFIX))

    def widget_entries(self) -> list[FilePath]:
        """All JSON-layout widget-set entry files, sorted."""
        return sorted(self.root.glob("*" + _WIDGETS_SUFFIX))

    def proof_entries(self) -> list[FilePath]:
        """All JSON-layout closure-proof entry files, sorted."""
        return sorted(self.root.glob("*" + _PROOFS_SUFFIX))

    def diffmemo_entries(self) -> list[FilePath]:
        """All JSON-layout diff-memo entry files, sorted."""
        return sorted(self.root.glob("*" + _DIFFMEMO_SUFFIX))

    def compiled_entries(self) -> list[FilePath]:
        """All JSON-layout compiled-page entry files, sorted."""
        return sorted(self.root.glob("*" + _COMPILED_SUFFIX))

    def __len__(self) -> int:
        return len(self.keys())

    def __iter__(self) -> Iterator[FilePath]:
        return iter(self.entries())

    def _files_by_key(self) -> dict[str, list[FilePath]]:
        """Group every JSON-layout entry file under its store key."""
        by_key: dict[str, list[FilePath]] = {}
        for path in self.entries():
            by_key.setdefault(path.name[: -len(_SUFFIX)], []).append(path)
        for suffix in _DERIVED_SUFFIXES:
            for path in sorted(self.root.glob("*" + suffix)):
                by_key.setdefault(path.name[: -len(suffix)], []).append(path)
        return by_key

    def stats(self) -> dict[str, Any]:
        """Occupancy counters: entry/record counts, total and *per-table*
        bytes, and caps.

        ``bytes_by_table`` breaks ``total_bytes`` down by table (graphs /
        widget_sets / proof_sets / diff_memos / compiled), so ``prune``
        caps are explainable — you can see which table the space went to.
        In packed mode a ``tables`` sub-report adds live vs tombstoned
        record counts, live bytes, and ``compaction_debt_bytes`` (bytes a
        compaction would reclaim) per segment — read from the five
        segment footers, not from statting every entry.

        Lock-free and therefore a *snapshot*: concurrent writers can move
        the numbers between two calls, but every individual report is
        internally consistent (``n_files`` covers exactly the files
        ``total_bytes`` and ``bytes_by_table`` sum).

        Through a daemon, the report is the daemon store's own (always
        packed) plus a ``daemon`` sub-report with uptime and the
        per-client request/byte meters.
        """
        if self._remote is not None:
            outcome = self._via_remote(self._remote_stats)
            if outcome is not _FELL_BACK:
                return dict(outcome)
        if self._format == "packed":
            return self._stats_packed()
        total_bytes = 0
        n_files = 0
        counts = dict.fromkeys(_TABLE_NAMES, 0)
        bytes_by_suffix = dict.fromkeys(_TABLE_NAMES, 0)
        surviving_keys: set[str] = set()
        for key, files in self._files_by_key().items():
            for path in files:
                try:
                    size = path.stat().st_size
                except OSError:
                    # racing delete between glob and stat: the file is
                    # gone, so it must not count anywhere — deriving every
                    # counter from surviving files is what keeps each
                    # snapshot internally consistent under concurrency
                    continue
                total_bytes += size
                n_files += 1
                surviving_keys.add(key)
                for suffix in counts:
                    if path.name.endswith(suffix):
                        counts[suffix] += 1
                        bytes_by_suffix[suffix] += size
                        break
        return {
            "format": "json",
            "n_keys": len(surviving_keys),
            "n_graphs": counts[_SUFFIX],
            "n_widget_sets": counts[_WIDGETS_SUFFIX],
            "n_proof_sets": counts[_PROOFS_SUFFIX],
            "n_diff_memos": counts[_DIFFMEMO_SUFFIX],
            "n_compiled": counts[_COMPILED_SUFFIX],
            "n_files": n_files,
            "total_bytes": total_bytes,
            "bytes_by_table": {
                _TABLE_NAMES[suffix]: bytes_by_suffix[suffix]
                for suffix in _TABLE_NAMES
            },
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
        }

    def _stats_packed(self) -> dict[str, Any]:
        counts: dict[str, int] = {}
        bytes_by_table: dict[str, int] = {}
        tables: dict[str, dict[str, int]] = {}
        surviving_keys: set[str] = set()
        total_bytes = 0
        n_files = 0
        for table in _TABLE_ORDER:
            segment = self._segment(table)
            reader = segment.reader()
            seg_stats = reader.stats()
            counts[table] = seg_stats.n_live
            bytes_by_table[table] = seg_stats.file_bytes
            total_bytes += seg_stats.file_bytes
            if seg_stats.file_bytes:
                n_files += 1
            surviving_keys.update(reader.keys())
            tables[table] = {
                "file_bytes": seg_stats.file_bytes,
                "n_live": seg_stats.n_live,
                "n_tombstoned": seg_stats.n_tombstoned,
                "live_bytes": seg_stats.live_bytes,
                "compaction_debt_bytes": seg_stats.dead_bytes,
            }
        return {
            "format": "packed",
            "n_keys": len(surviving_keys),
            "n_graphs": counts["graphs"],
            "n_widget_sets": counts["widget_sets"],
            "n_proof_sets": counts["proof_sets"],
            "n_diff_memos": counts["diff_memos"],
            "n_compiled": counts["compiled"],
            "n_files": n_files,
            "total_bytes": total_bytes,
            "bytes_by_table": dict(bytes_by_table),
            "tables": tables,
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
        }

    def compact(self) -> bool:
        """Rewrite every packed segment down to its live records, packing
        them into multi-record blocks (one decompression per ~64 records
        on a bulk warm load).  Returns True when any segment was
        rewritten; a no-op (False) on a JSON-format or debt-free store.

        The store compacts segments on its own when their debt crosses a
        threshold; calling this explicitly is maintenance — reclaim all
        dead bytes now and leave every segment in its densest, fastest
        to-bulk-load layout.
        """
        if self._remote is not None:
            outcome = self._via_remote(self._remote_compact)
            if outcome is not _FELL_BACK:
                return bool(outcome)
        if self._format != "packed":
            return False
        with self._lock.held():
            self._flush_touches_locked()
            rewritten = False
            for table in _TABLE_ORDER:
                rewritten = self._segment(table).compact() or rewritten
            return rewritten

    def prune(
        self, max_bytes: int | None = None, max_entries: int | None = None
    ) -> int:
        """Evict least-recently-used keys until the caps hold.

        Explicit caps override the store's own; with neither configured
        nor given, this is a no-op.  Returns the number of keys removed.

        Runs entirely under the store lock: concurrent pruners from other
        processes serialise instead of interleaving their scans, so a key
        is evicted (and counted) by exactly one of them, and a derived
        save cannot land between the scan and the removal.  Derived
        records whose graph entry is gone (left by a crashed writer
        mid-key) are swept regardless of recency.

        In packed mode eviction appends tombstones and compacts the
        segments, re-measuring real file sizes until the caps hold —
        recency comes from record/touch timestamps in the segment
        footers, so nothing ever stats per-entry files.

        Raises:
            ValueError: for negative caps (use ``clear()`` to empty the
                store deliberately).
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if self._remote is not None:
            # explicit caps travel as given; None defers to the *daemon*
            # store's configured caps, which own eviction fleet-wide
            outcome = self._via_remote(self._remote_prune, max_bytes, max_entries)
            if outcome is not _FELL_BACK:
                return int(outcome)
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_entries = max_entries if max_entries is not None else self.max_entries
        if max_bytes is None and max_entries is None:
            return 0
        if self._format == "packed":
            return self._prune_packed(max_bytes, max_entries)
        with self._lock.held():
            ranked: list[tuple[float, int, str, list[FilePath]]] = []
            for key, files in self._files_by_key().items():
                recency = 0.0
                size = 0
                alive: list[FilePath] = []
                has_graph = False
                for path in files:
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    alive.append(path)
                    recency = max(recency, stat.st_mtime)
                    size += stat.st_size
                    has_graph = has_graph or path.name.endswith(_SUFFIX)
                if not alive:
                    continue
                if not has_graph:
                    # orphaned derived files (crashed writer): evict first,
                    # regardless of recency — they can never hit
                    recency = -1.0
                ranked.append((recency, size, key, alive))
            ranked.sort()  # oldest recency first (orphans lead)
            n_keys = len(ranked)
            total = sum(size for _, size, _, _ in ranked)
            removed = 0
            for recency, size, _key, files in ranked:
                over_entries = max_entries is not None and n_keys > max_entries
                over_bytes = max_bytes is not None and total > max_bytes
                if not over_entries and not over_bytes and recency >= 0:
                    break
                for path in files:
                    path.unlink(missing_ok=True)
                n_keys -= 1
                total -= size
                removed += 1
            return removed

    def _prune_packed(
        self, max_bytes: int | None, max_entries: int | None
    ) -> int:
        """Tombstone + compact until the caps hold against *real* file
        sizes.  Each loop iteration either reclaims dead bytes or evicts
        at least one key, so it terminates."""
        removed = 0
        with self._lock.held():
            self._flush_touches_locked()
            while True:
                readers = {}
                for table in _TABLE_ORDER:
                    segment = self._segment(table)
                    segment.invalidate_reader()
                    readers[table] = segment.reader()
                indexes = {
                    table: reader.index() for table, reader in readers.items()
                }
                info: dict[str, tuple[float, int, bool]] = {}
                for table in _TABLE_ORDER:
                    for key, entry in indexes[table].items():
                        recency, size, has_graph = info.get(key, (0.0, 0, False))
                        info[key] = (
                            max(recency, entry.ts),
                            size + readers[table].entry_cost(entry),
                            has_graph or table == "graphs",
                        )
                actual_total = sum(r.size for r in readers.values())
                n_keys = len(info)
                orphans = any(not has_graph for _, _, has_graph in info.values())
                over_entries = max_entries is not None and n_keys > max_entries
                over_bytes = max_bytes is not None and actual_total > max_bytes
                if not over_entries and not over_bytes and not orphans:
                    break
                total_dead = sum(r.stats().dead_bytes for r in readers.values())
                if over_bytes and total_dead > 0 and not over_entries and not orphans:
                    # over-cap purely from garbage: reclaim before deciding
                    # to evict anything (cannot repeat — debt is 0 after)
                    for table in _TABLE_ORDER:
                        self._segment(table).compact()
                    continue
                ranked = sorted(
                    (
                        recency if has_graph else -1.0,
                        size,
                        key,
                    )
                    for key, (recency, size, has_graph) in info.items()
                )
                if not ranked:
                    # caps smaller than the empty segments' fixed overhead:
                    # nothing left to evict
                    for table in _TABLE_ORDER:
                        self._segment(table).compact()
                    break
                victims: list[str] = []
                sim_keys = n_keys
                sim_total = actual_total
                for recency, size, key in ranked:
                    sim_over_entries = (
                        max_entries is not None and sim_keys > max_entries
                    )
                    sim_over_bytes = max_bytes is not None and sim_total > max_bytes
                    if not sim_over_entries and not sim_over_bytes and recency >= 0:
                        break
                    victims.append(key)
                    sim_keys -= 1
                    sim_total -= size
                for table in _TABLE_ORDER:
                    doomed = [key for key in victims if key in indexes[table]]
                    if doomed:
                        self._segment(table).append_tombstones(doomed)
                removed += len(victims)
                for table in _TABLE_ORDER:
                    self._segment(table).compact()
                if not victims:
                    break
        return removed

    def _enforce_caps(self) -> None:
        """Apply the store's own caps after a save (no-op when uncapped)."""
        if self.max_bytes is not None or self.max_entries is not None:
            self.prune()

    def invalidate(
        self,
        log_fingerprint: str | None = None,
        options_fingerprint: str | None = None,
    ) -> int:
        """Remove keys matching either fingerprint prefix.

        With both arguments, removes the single exact key; with one,
        removes every key sharing that side; with neither, removes
        everything (same as :meth:`clear`).  A key's graph and derived
        records are removed together.  Returns the number of keys
        removed.
        """
        if self._remote is not None:
            outcome = self._via_remote(
                self._remote_invalidate, log_fingerprint, options_fingerprint
            )
            if outcome is not _FELL_BACK:
                return int(outcome)
        log_part = log_fingerprint[:_KEY_DIGITS] if log_fingerprint else None
        opts_part = (
            options_fingerprint[:_KEY_DIGITS] if options_fingerprint else None
        )

        def matches(key: str) -> bool:
            entry_log, _, entry_opts = key.partition("-")
            if log_part is not None and entry_log != log_part:
                return False
            if opts_part is not None and entry_opts != opts_part:
                return False
            return True

        if self._format == "packed":
            with self._lock.held():
                doomed_keys: set[str] = set()
                doomed_by_table: dict[str, list[str]] = {}
                for table in _TABLE_ORDER:
                    segment = self._segment(table)
                    segment.invalidate_reader()
                    table_keys = [
                        key for key in segment.reader().keys() if matches(key)
                    ]
                    doomed_by_table[table] = table_keys
                    doomed_keys.update(table_keys)
                for table in _TABLE_ORDER:
                    if doomed_by_table[table]:
                        self._segment(table).append_tombstones(
                            doomed_by_table[table]
                        )
                    self._pending_touches[table] -= set(doomed_by_table[table])
                for table in _TABLE_ORDER:
                    self._segment(table).compact()
                return len(doomed_keys)
        removed = 0
        with self._lock.held():
            for key, files in self._files_by_key().items():
                if not matches(key):
                    continue
                for path in files:
                    path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> int:
        """Remove every key; returns how many were removed."""
        return self.invalidate()

    def invalidate_table(self, table: str) -> int:
        """Drop every record of one *derived* table (widget_sets,
        proof_sets, diff_memos, or compiled), leaving graphs intact — the targeted
        version of :meth:`clear` for forcing a re-map/re-prove after a
        library or rule change.  Returns the number of records removed.

        Raises:
            ValueError: for the graphs table (dropping it would orphan
                every derived record — use :meth:`clear`) or an unknown
                table name.
        """
        if table not in _DERIVED_TABLES:
            raise ValueError(
                f"table must be one of {_DERIVED_TABLES}, got {table!r}"
            )
        if self._remote is not None:
            outcome = self._via_remote(self._remote_invalidate_table, table)
            if outcome is not _FELL_BACK:
                return int(outcome)
        if self._format == "packed":
            with self._lock.held():
                segment = self._segment(table)
                segment.invalidate_reader()
                doomed = segment.reader().keys()
                if doomed:
                    segment.append_tombstones(doomed)
                    segment.compact()
                self._pending_touches[table].clear()
                return len(doomed)
        suffix = _SUFFIX_BY_TABLE[table]
        removed = 0
        with self._lock.held():
            for path in sorted(self.root.glob("*" + suffix)):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def migrate(self, to: str) -> dict[str, Any]:
        """Convert the store's on-disk layout in place; returns a summary
        ``{"format", "migrated_keys", "orphans_dropped"}``.

        Payloads are moved as raw bytes (a packed record *is* the JSON
        file's content), so the conversion is lossless and byte-exact in
        both directions.  Each direction is atomic per batch and
        resumable: an interrupted ``json`` → ``packed`` run leaves
        already-converted keys in the segments and the rest as files
        (re-running finishes the job; ``format="auto"`` opens such a
        directory as packed), and an interrupted ``packed`` → ``json``
        run leaves the segments in place as the source of truth until the
        final removal.  Derived records whose graph entry is missing are
        dropped, not migrated.  Recency (LRU order) carries across via
        file mtimes / record timestamps.

        Raises:
            ValueError: for a target other than ``"packed"`` / ``"json"``.
        """
        if to not in ("packed", "json"):
            raise ValueError(f"migrate target must be 'packed' or 'json', got {to!r}")
        if self._remote is not None:
            raise CacheError(
                "cannot migrate a store through a daemon: the layout is the "
                "daemon's to own — stop it and migrate in-process"
            )
        if to == "packed":
            return self._migrate_to_packed()
        return self._migrate_to_json()

    def _migrate_to_packed(self) -> dict[str, Any]:
        migrated = 0
        orphans = 0
        with self._lock.held():
            if not self._segments:
                self._init_segments()
            groups = list(self._files_by_key().items())
            for start in range(0, len(groups), _MIGRATE_BATCH):
                batch = groups[start : start + _MIGRATE_BATCH]
                pending: dict[str, list[tuple[str, bytes, float | None]]] = {
                    table: [] for table in _TABLE_ORDER
                }
                batch_files: list[FilePath] = []
                for key, files in batch:
                    present = {
                        table: self.root / (key + _SUFFIX_BY_TABLE[table])
                        for table in _TABLE_ORDER
                    }
                    if not present["graphs"].exists():
                        # derived files without a graph can never hit:
                        # drop them instead of migrating an orphan
                        for path in files:
                            path.unlink(missing_ok=True)
                        orphans += 1
                        continue
                    for table in _TABLE_ORDER:
                        path = present[table]
                        try:
                            data = path.read_bytes()
                            ts = path.stat().st_mtime
                        except OSError:
                            continue
                        pending[table].append((key, data, ts))
                    batch_files.extend(files)
                    migrated += 1
                for table in _TABLE_ORDER:
                    if pending[table]:
                        self._segment(table).append_records(pending[table])
                # source files go only after their records are committed,
                # so an interruption never loses a key
                for path in batch_files:
                    path.unlink(missing_ok=True)
            self._format = "packed"
        return {
            "format": "packed",
            "migrated_keys": migrated,
            "orphans_dropped": orphans,
        }

    def _migrate_to_json(self) -> dict[str, Any]:
        migrated = 0
        orphans = 0
        with self._lock.held():
            if not self._segments:
                self._init_segments()
            graph_reader = self._segment("graphs").reader()
            graph_keys = set(graph_reader.keys())
            for table in _TABLE_ORDER:
                segment = self._segment(table)
                reader = segment.reader()
                suffix = _SUFFIX_BY_TABLE[table]
                for key in reader.keys():
                    if key not in graph_keys:
                        orphans += 1
                        continue
                    entry = reader.entry(key)
                    payload = reader.get(key)
                    if payload is None or entry is None:
                        continue
                    target = self.root / (key + suffix)
                    tmp = target.with_name(
                        f"{target.name}.{os.getpid()}-{uuid4().hex[:8]}.tmp"
                    )
                    try:
                        tmp.write_bytes(payload)
                        tmp.replace(target)
                    finally:
                        tmp.unlink(missing_ok=True)
                    try:
                        os.utime(target, (entry.ts, entry.ts))
                    except OSError:
                        pass
                    if table == "graphs":
                        migrated += 1
            # the files are all in place: the segments stop being the
            # source of truth only now
            for table in _TABLE_ORDER:
                self._segment(table).remove()
            self._segments = {}
            self._format = "json"
            for table in _TABLE_ORDER:
                self._pending_touches[table].clear()
        return {
            "format": "json",
            "migrated_keys": migrated,
            "orphans_dropped": orphans,
        }


def _touch(path: FilePath) -> None:
    """Best-effort mtime bump (LRU recency); racing deletes are fine."""
    try:
        os.utime(path)
    except OSError:
        pass
