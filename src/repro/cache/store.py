"""Content-addressed on-disk store for mined graphs, widget sets,
closure proofs, and diff memos.

A :class:`GraphStore` is a directory of cache entries keyed by
``(log fingerprint, options fingerprint)``.  Each key owns up to four
files — four content-addressed tables over the same key space:

* ``<key>.graph.jsonl`` — the mined interaction graph
  (:func:`~repro.cache.serialize.save_graph`), skipping the Mine stage on
  a hit;
* ``<key>.widgets.json`` — the mapped-and-merged widget set
  (:func:`~repro.cache.serialize.save_widgets`), skipping Map and Merge
  too.  Widget entries are only meaningful next to their graph entry
  (they reference its diffs table by index), so :meth:`load_widget_set`
  takes the loaded graph;
* ``<key>.proofs.json`` — positive closure-cover proofs
  (:func:`~repro.cache.serialize.save_proofs`), so ``expresses()`` memos
  survive session death and are shared across
  :class:`~repro.service.SessionPool` workers.  Proofs are valid exactly
  against the key's deterministic widget set, so
  :meth:`load_closure_proofs` takes the decoded widgets and arms a
  :class:`~repro.core.closure.ClosureCache` for them;
* ``<key>.diffmemo.json`` — the Mine stage's skeleton-level alignment
  plans as representative shape pairs
  (:func:`~repro.cache.serialize.save_diff_memo`), so resumed sessions
  and pool workers inherit a hot
  :class:`~repro.treediff.memo.DiffMemo` and steady-state appends of
  known templates do zero alignment-DP work.

The key is content-addressed, so there is no explicit invalidation
protocol for correctness: a changed log or changed options simply hashes
to a different entry and misses.  :meth:`GraphStore.invalidate` and
:meth:`GraphStore.clear` exist for space management and for forcing a
re-mine after a code change.

Space management is optional and LRU: construct the store with
``max_bytes`` and/or ``max_entries`` and every save evicts the
least-recently-*used* keys (loads touch an entry's mtime) until the caps
hold; :meth:`prune` applies caps on demand and :meth:`stats` reports
occupancy.  Eviction is per-key — a key's graph, widget, and proof files
leave together, never orphaning a derived entry.

Concurrency: the store is the shared backing of every worker process —
``generate_many`` shards, :class:`~repro.service.SessionPool` workers,
concurrent CLI invocations.  Single-file saves are atomic
(write-then-rename, see ``save_graph``): two workers mining the same key
race benignly — both write the same content and the second rename wins.
Multi-file invariants (a key's files evict as one unit; a derived file is
never written for a key whose graph entry is gone) are guarded by an
advisory :class:`~repro.cache.lock.StoreLock` on ``<root>/.lock``:
:meth:`prune`, :meth:`invalidate`, and the derived-table saves take it,
so concurrent pruners cannot interleave scans (no double-eviction
accounting) and a pruner cannot slip between a worker's graph save and
widget save to orphan the latter.  Loads are deliberately lock-free — a
reader racing an eviction simply misses.
"""

from __future__ import annotations

import os
from pathlib import Path as FilePath
from typing import TYPE_CHECKING, Any, Iterator

from repro.cache.lock import StoreLock
from repro.cache.serialize import (
    load_diff_memo,
    load_graph,
    load_proofs,
    load_widgets,
    save_diff_memo,
    save_graph,
    save_proofs,
    save_widgets,
)
from repro.core.closure import ClosureCache
from repro.errors import CacheError
from repro.graph.build import BuildStats
from repro.graph.interaction import InteractionGraph
from repro.treediff.memo import DiffMemo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.paths import Path
    from repro.sqlparser.astnodes import Node
    from repro.sqlparser.grammar import GrammarAnnotations
    from repro.widgets.base import Widget, WidgetType

__all__ = ["GraphStore"]

#: Hex digits of each fingerprint kept in the file name.  16 of each
#: (64 bits log + 64 bits options) keeps names short while making
#: accidental collisions vanishingly unlikely for any realistic store.
_KEY_DIGITS = 16

_SUFFIX = ".graph.jsonl"
_WIDGETS_SUFFIX = ".widgets.json"
_PROOFS_SUFFIX = ".proofs.json"
_DIFFMEMO_SUFFIX = ".diffmemo.json"

#: Suffixes of the derived tables — files that are only meaningful next
#: to their key's graph entry.
_DERIVED_SUFFIXES = (_WIDGETS_SUFFIX, _PROOFS_SUFFIX, _DIFFMEMO_SUFFIX)

#: stats() table names, keyed by entry-file suffix.
_TABLE_NAMES = {
    _SUFFIX: "graphs",
    _WIDGETS_SUFFIX: "widget_sets",
    _PROOFS_SUFFIX: "proof_sets",
    _DIFFMEMO_SUFFIX: "diff_memos",
}


class GraphStore:
    """Load/save/invalidate cached graphs and widget sets under one
    directory.

    Args:
        root: the cache directory; created (with parents) if missing.
        max_bytes: optional cap on the total size of all entry files;
            exceeding saves evict least-recently-used keys.
        max_entries: optional cap on the number of distinct keys.
    """

    def __init__(
        self,
        root: str | FilePath,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.root = FilePath(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = StoreLock(self.root)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def key(log_fingerprint: str, options_fingerprint: str) -> str:
        """The store key for a (log, options) pair."""
        return f"{log_fingerprint[:_KEY_DIGITS]}-{options_fingerprint[:_KEY_DIGITS]}"

    def path_for(self, log_fingerprint: str, options_fingerprint: str) -> FilePath:
        """Where the graph entry for this key lives (whether or not it
        exists)."""
        return self.root / (self.key(log_fingerprint, options_fingerprint) + _SUFFIX)

    def widgets_path_for(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> FilePath:
        """Where the widget-set entry for this key lives."""
        return self.root / (
            self.key(log_fingerprint, options_fingerprint) + _WIDGETS_SUFFIX
        )

    def proofs_path_for(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> FilePath:
        """Where the closure-proof entry for this key lives."""
        return self.root / (
            self.key(log_fingerprint, options_fingerprint) + _PROOFS_SUFFIX
        )

    def diffmemo_path_for(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> FilePath:
        """Where the diff-memo entry for this key lives."""
        return self.root / (
            self.key(log_fingerprint, options_fingerprint) + _DIFFMEMO_SUFFIX
        )

    # ------------------------------------------------------------------
    # graph table
    # ------------------------------------------------------------------
    def has(self, log_fingerprint: str, options_fingerprint: str) -> bool:
        """True when a graph entry exists for this key (it may still fail
        to load if written by an incompatible version)."""
        return self.path_for(log_fingerprint, options_fingerprint).exists()

    def load(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> tuple[InteractionGraph, BuildStats] | None:
        """Return the cached ``(graph, stats)`` for this key, or ``None``.

        A missing entry, a version mismatch, or a corrupt file all load as
        ``None`` (a miss): the caller re-mines and overwrites, which is
        always safe because the store is content-addressed.  A successful
        load touches the entry (LRU recency for eviction).
        """
        path = self.path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            graph, stats, _extra = load_graph(path)
        except CacheError:
            return None
        _touch(path)
        return graph, stats

    def save(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        graph: InteractionGraph,
        stats: BuildStats | None = None,
    ) -> FilePath:
        """Persist a mined graph under this key; returns the entry path."""
        path = self.path_for(log_fingerprint, options_fingerprint)
        # Deliberately lock-free: save_graph is a single-file atomic
        # write-then-rename, so a concurrent reader sees either the old
        # complete entry or the new one — the lock only serialises
        # *multi-file* operations (prune/invalidate/derived tables).
        # repro-lint: disable=RL001
        save_graph(path, graph, stats)
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # widget-set table
    # ------------------------------------------------------------------
    def load_widget_set(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        graph: InteractionGraph,
        library: list[WidgetType],
        annotations: GrammarAnnotations,
    ) -> list[Widget] | None:
        """Return the cached widget set for this key decoded against
        ``graph``, or ``None``.

        ``graph`` must be the graph loaded from the *same* key — widget
        records reference its diffs table by index.  Any decode failure
        (foreign version, stale library, corruption) is a miss.
        """
        path = self.widgets_path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            widgets = load_widgets(path, graph, library, annotations)
        except CacheError:
            return None
        _touch(path)
        return widgets

    def save_widget_set(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        widgets: list[Widget],
        graph: InteractionGraph,
    ) -> FilePath:
        """Persist a mapped widget set under this key; returns the path.

        Taken under the store lock so a concurrent pruner cannot evict the
        key's graph entry between our check and our write: if the graph
        entry is gone (evicted since the caller loaded/saved it), it is
        re-saved together with the widgets — the caller holds the graph in
        hand — so a widget file never exists without its graph.

        Raises:
            CacheError: when the widgets do not belong to ``graph``.
        """
        path = self.widgets_path_for(log_fingerprint, options_fingerprint)
        with self._lock.held():
            if not self.path_for(log_fingerprint, options_fingerprint).exists():
                save_graph(
                    self.path_for(log_fingerprint, options_fingerprint), graph
                )
            save_widgets(path, widgets, graph)
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # closure-proof table
    # ------------------------------------------------------------------
    def load_proof_triples(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> list[tuple[Node, Node, Path]] | None:
        """Return this key's decoded proof triples, or ``None``.

        The triples are only sound for the key's own (deterministic)
        widget set; feed them to
        :meth:`~repro.core.closure.ClosureCache.import_proofs` against
        exactly those widgets.  Any decode failure is a miss.
        """
        path = self.proofs_path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            triples = load_proofs(path)
        except CacheError:
            return None
        _touch(path)
        return triples

    def load_closure_proofs(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        widgets: list[Widget],
    ) -> ClosureCache | None:
        """Return a :class:`~repro.core.closure.ClosureCache` armed for
        ``widgets`` with this key's persisted proofs, or ``None``.

        ``widgets`` must be the widget set belonging to the *same* key —
        the content-addressed key is what makes a persisted proof sound
        for them.
        """
        triples = self.load_proof_triples(log_fingerprint, options_fingerprint)
        if triples is None:
            return None
        cache = ClosureCache()
        cache.import_proofs(widgets, triples)
        return cache

    def save_closure_proofs(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        cache: ClosureCache,
        widgets: list[Widget],
    ) -> FilePath | None:
        """Persist the cache's positive proofs for ``widgets`` under this
        key; returns the path, or ``None`` when nothing was written.

        Nothing is written when the cache holds no proofs for exactly this
        widget set, or when the key's graph entry no longer exists (a
        pruner evicted it): proofs are a pure accelerator, and unlike
        :meth:`save_widget_set` the caller cannot re-create the graph
        entry from what it holds, so the save is skipped rather than
        orphaning a proof file.
        """
        triples = cache.export_proofs(widgets)
        if not triples:
            return None
        path = self.proofs_path_for(log_fingerprint, options_fingerprint)
        with self._lock.held():
            if not self.path_for(log_fingerprint, options_fingerprint).exists():
                return None
            save_proofs(path, triples)
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # diff-memo table
    # ------------------------------------------------------------------
    def load_diff_memo_pairs(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> list[tuple[Node, Node, bool]] | None:
        """Return this key's decoded representative shape pairs, or
        ``None``.

        Feed them to :meth:`~repro.treediff.memo.DiffMemo.import_pairs`:
        each pair is re-aligned once by the current algorithm, so a stale
        or foreign file can cost time but never correctness.  Any decode
        failure is a miss.
        """
        path = self.diffmemo_path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            pairs = load_diff_memo(path)
        except CacheError:
            return None
        _touch(path)
        return pairs

    def load_diff_memo(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> DiffMemo | None:
        """Return a warmed :class:`~repro.treediff.memo.DiffMemo` built
        from this key's persisted shape pairs, or ``None``."""
        pairs = self.load_diff_memo_pairs(log_fingerprint, options_fingerprint)
        if pairs is None:
            return None
        memo = DiffMemo()
        memo.import_pairs(pairs)
        return memo

    def save_diff_memo(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        memo: DiffMemo,
    ) -> FilePath | None:
        """Persist the memo's representative shape pairs under this key;
        returns the path, or ``None`` when nothing was written.

        Nothing is written for an empty memo, for a memo whose
        representative trees cannot be JSON-encoded, or when the key's
        graph entry no longer exists (a pruner evicted it): like closure
        proofs, a memo is a pure accelerator, so the save is skipped
        rather than orphaning a derived file.
        """
        pairs = memo.export_pairs()
        if not pairs:
            return None
        path = self.diffmemo_path_for(log_fingerprint, options_fingerprint)
        with self._lock.held():
            if not self.path_for(log_fingerprint, options_fingerprint).exists():
                return None
            try:
                save_diff_memo(path, pairs)
            except CacheError:
                # a representative tree with non-JSON attribute values:
                # the memo stays in-memory only
                return None
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def entries(self) -> list[FilePath]:
        """All graph entry files currently in the store, sorted by name."""
        return sorted(self.root.glob("*" + _SUFFIX))

    def widget_entries(self) -> list[FilePath]:
        """All widget-set entry files currently in the store, sorted."""
        return sorted(self.root.glob("*" + _WIDGETS_SUFFIX))

    def proof_entries(self) -> list[FilePath]:
        """All closure-proof entry files currently in the store, sorted."""
        return sorted(self.root.glob("*" + _PROOFS_SUFFIX))

    def diffmemo_entries(self) -> list[FilePath]:
        """All diff-memo entry files currently in the store, sorted."""
        return sorted(self.root.glob("*" + _DIFFMEMO_SUFFIX))

    def __len__(self) -> int:
        return len(self.entries())

    def __iter__(self) -> Iterator[FilePath]:
        return iter(self.entries())

    def _files_by_key(self) -> dict[str, list[FilePath]]:
        """Group every entry file under its store key."""
        by_key: dict[str, list[FilePath]] = {}
        for path in self.entries():
            by_key.setdefault(path.name[: -len(_SUFFIX)], []).append(path)
        for suffix in _DERIVED_SUFFIXES:
            for path in sorted(self.root.glob("*" + suffix)):
                by_key.setdefault(path.name[: -len(suffix)], []).append(path)
        return by_key

    def stats(self) -> dict[str, Any]:
        """Occupancy counters: entry/file counts, total and *per-table*
        bytes, and caps.

        ``bytes_by_table`` breaks ``total_bytes`` down by table (graphs /
        widget_sets / proof_sets / diff_memos), so ``prune`` caps are
        explainable — you can see which table the space went to.

        Lock-free and therefore a *snapshot*: concurrent writers can move
        the numbers between two calls, but every individual report is
        internally consistent (files are stat'ed once, counters never go
        negative, ``n_files`` covers exactly the files ``total_bytes``
        and ``bytes_by_table`` sum).
        """
        total_bytes = 0
        n_files = 0
        counts = dict.fromkeys(_TABLE_NAMES, 0)
        bytes_by_suffix = dict.fromkeys(_TABLE_NAMES, 0)
        surviving_keys: set[str] = set()
        for key, files in self._files_by_key().items():
            for path in files:
                try:
                    size = path.stat().st_size
                except OSError:
                    # racing delete between glob and stat: the file is
                    # gone, so it must not count anywhere — deriving every
                    # counter from surviving files is what keeps each
                    # snapshot internally consistent under concurrency
                    continue
                total_bytes += size
                n_files += 1
                surviving_keys.add(key)
                for suffix in counts:
                    if path.name.endswith(suffix):
                        counts[suffix] += 1
                        bytes_by_suffix[suffix] += size
                        break
        return {
            "n_keys": len(surviving_keys),
            "n_graphs": counts[_SUFFIX],
            "n_widget_sets": counts[_WIDGETS_SUFFIX],
            "n_proof_sets": counts[_PROOFS_SUFFIX],
            "n_diff_memos": counts[_DIFFMEMO_SUFFIX],
            "n_files": n_files,
            "total_bytes": total_bytes,
            "bytes_by_table": {
                _TABLE_NAMES[suffix]: bytes_by_suffix[suffix]
                for suffix in _TABLE_NAMES
            },
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
        }

    def prune(
        self, max_bytes: int | None = None, max_entries: int | None = None
    ) -> int:
        """Evict least-recently-used keys until the caps hold.

        Explicit caps override the store's own; with neither configured
        nor given, this is a no-op.  Returns the number of keys removed.

        Runs entirely under the store lock: concurrent pruners from other
        processes serialise instead of interleaving their scans, so a key
        is evicted (and counted) by exactly one of them, and a derived
        save cannot land between the scan and the unlink.  Derived files
        whose graph entry is gone (left by a crashed writer mid-key) are
        swept as part of their keyless group.

        Raises:
            ValueError: for negative caps (use ``clear()`` to empty the
                store deliberately).
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_entries = max_entries if max_entries is not None else self.max_entries
        if max_bytes is None and max_entries is None:
            return 0
        with self._lock.held():
            ranked: list[tuple[float, int, str, list[FilePath]]] = []
            for key, files in self._files_by_key().items():
                recency = 0.0
                size = 0
                alive: list[FilePath] = []
                has_graph = False
                for path in files:
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    alive.append(path)
                    recency = max(recency, stat.st_mtime)
                    size += stat.st_size
                    has_graph = has_graph or path.name.endswith(_SUFFIX)
                if not alive:
                    continue
                if not has_graph:
                    # orphaned derived files (crashed writer): evict first,
                    # regardless of recency — they can never hit
                    recency = -1.0
                ranked.append((recency, size, key, alive))
            ranked.sort()  # oldest recency first (orphans lead)
            n_keys = len(ranked)
            total = sum(size for _, size, _, _ in ranked)
            removed = 0
            for recency, size, _key, files in ranked:
                over_entries = max_entries is not None and n_keys > max_entries
                over_bytes = max_bytes is not None and total > max_bytes
                if not over_entries and not over_bytes and recency >= 0:
                    break
                for path in files:
                    path.unlink(missing_ok=True)
                n_keys -= 1
                total -= size
                removed += 1
            return removed

    def _enforce_caps(self) -> None:
        """Apply the store's own caps after a save (no-op when uncapped)."""
        if self.max_bytes is not None or self.max_entries is not None:
            self.prune()

    def invalidate(
        self,
        log_fingerprint: str | None = None,
        options_fingerprint: str | None = None,
    ) -> int:
        """Remove keys matching either fingerprint prefix.

        With both arguments, removes the single exact key; with one,
        removes every key sharing that side; with neither, removes
        everything (same as :meth:`clear`).  A key's graph and widget-set
        files are removed together.  Returns the number of keys removed.
        """
        removed = 0
        log_part = log_fingerprint[:_KEY_DIGITS] if log_fingerprint else None
        opts_part = (
            options_fingerprint[:_KEY_DIGITS] if options_fingerprint else None
        )
        with self._lock.held():
            for key, files in self._files_by_key().items():
                entry_log, _, entry_opts = key.partition("-")
                if log_part is not None and entry_log != log_part:
                    continue
                if opts_part is not None and entry_opts != opts_part:
                    continue
                for path in files:
                    path.unlink(missing_ok=True)
                removed += 1
        return removed

    def clear(self) -> int:
        """Remove every key; returns how many were removed."""
        return self.invalidate()


def _touch(path: FilePath) -> None:
    """Best-effort mtime bump (LRU recency); racing deletes are fine."""
    try:
        os.utime(path)
    except OSError:
        pass
