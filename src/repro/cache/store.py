"""Content-addressed on-disk store for mined interaction graphs.

A :class:`GraphStore` is a directory of :func:`~repro.cache.serialize.
save_graph` files keyed by ``(log fingerprint, options fingerprint)``.
The key is content-addressed, so there is no explicit invalidation
protocol for correctness: a changed log or changed options simply hashes
to a different entry and misses.  :meth:`GraphStore.invalidate` and
:meth:`GraphStore.clear` exist for space management and for forcing a
re-mine after a code change.

Concurrency: saves are atomic (write-then-rename, see ``save_graph``), so
any number of processes — the sharded ``generate_many`` workers in
particular — can share one store directory.  Two workers mining the same
key race benignly: both write the same content and the second rename wins.
"""

from __future__ import annotations

from pathlib import Path as FilePath
from typing import Iterator

from repro.cache.serialize import load_graph, save_graph
from repro.errors import CacheError
from repro.graph.build import BuildStats
from repro.graph.interaction import InteractionGraph

__all__ = ["GraphStore"]

#: Hex digits of each fingerprint kept in the file name.  16 of each
#: (64 bits log + 64 bits options) keeps names short while making
#: accidental collisions vanishingly unlikely for any realistic store.
_KEY_DIGITS = 16

_SUFFIX = ".graph.jsonl"


class GraphStore:
    """Load/save/invalidate cached interaction graphs under one directory.

    Args:
        root: the cache directory; created (with parents) if missing.
    """

    def __init__(self, root: str | FilePath):
        self.root = FilePath(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def key(log_fingerprint: str, options_fingerprint: str) -> str:
        """The store key for a (log, options) pair."""
        return f"{log_fingerprint[:_KEY_DIGITS]}-{options_fingerprint[:_KEY_DIGITS]}"

    def path_for(self, log_fingerprint: str, options_fingerprint: str) -> FilePath:
        """Where the entry for this key lives (whether or not it exists)."""
        return self.root / (self.key(log_fingerprint, options_fingerprint) + _SUFFIX)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def has(self, log_fingerprint: str, options_fingerprint: str) -> bool:
        """True when an entry exists for this key (it may still fail to
        load if written by an incompatible version)."""
        return self.path_for(log_fingerprint, options_fingerprint).exists()

    def load(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> tuple[InteractionGraph, BuildStats] | None:
        """Return the cached ``(graph, stats)`` for this key, or ``None``.

        A missing entry, a version mismatch, or a corrupt file all load as
        ``None`` (a miss): the caller re-mines and overwrites, which is
        always safe because the store is content-addressed.
        """
        path = self.path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            graph, stats, _extra = load_graph(path)
        except CacheError:
            return None
        return graph, stats

    def save(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        graph: InteractionGraph,
        stats: BuildStats | None = None,
    ) -> FilePath:
        """Persist a mined graph under this key; returns the entry path."""
        path = self.path_for(log_fingerprint, options_fingerprint)
        save_graph(path, graph, stats)
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def entries(self) -> list[FilePath]:
        """All entry files currently in the store, sorted by name."""
        return sorted(self.root.glob("*" + _SUFFIX))

    def __len__(self) -> int:
        return len(self.entries())

    def __iter__(self) -> Iterator[FilePath]:
        return iter(self.entries())

    def invalidate(
        self,
        log_fingerprint: str | None = None,
        options_fingerprint: str | None = None,
    ) -> int:
        """Remove entries matching either fingerprint prefix.

        With both arguments, removes the single exact entry; with one,
        removes every entry sharing that side of the key; with neither,
        removes everything (same as :meth:`clear`).  Returns the number of
        entries removed.
        """
        removed = 0
        log_part = log_fingerprint[:_KEY_DIGITS] if log_fingerprint else None
        opts_part = (
            options_fingerprint[:_KEY_DIGITS] if options_fingerprint else None
        )
        for path in self.entries():
            name = path.name[: -len(_SUFFIX)]
            entry_log, _, entry_opts = name.partition("-")
            if log_part is not None and entry_log != log_part:
                continue
            if opts_part is not None and entry_opts != opts_part:
                continue
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        return self.invalidate()
