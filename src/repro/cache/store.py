"""Content-addressed on-disk store for mined graphs and widget sets.

A :class:`GraphStore` is a directory of cache entries keyed by
``(log fingerprint, options fingerprint)``.  Each key owns up to two
files — two content-addressed tables over the same key space:

* ``<key>.graph.jsonl`` — the mined interaction graph
  (:func:`~repro.cache.serialize.save_graph`), skipping the Mine stage on
  a hit;
* ``<key>.widgets.json`` — the mapped-and-merged widget set
  (:func:`~repro.cache.serialize.save_widgets`), skipping Map and Merge
  too.  Widget entries are only meaningful next to their graph entry
  (they reference its diffs table by index), so :meth:`load_widget_set`
  takes the loaded graph.

The key is content-addressed, so there is no explicit invalidation
protocol for correctness: a changed log or changed options simply hashes
to a different entry and misses.  :meth:`GraphStore.invalidate` and
:meth:`GraphStore.clear` exist for space management and for forcing a
re-mine after a code change.

Space management is optional and LRU: construct the store with
``max_bytes`` and/or ``max_entries`` and every save evicts the
least-recently-*used* keys (loads touch an entry's mtime) until the caps
hold; :meth:`prune` applies caps on demand and :meth:`stats` reports
occupancy.  Eviction is per-key — a key's graph and widget files leave
together, never orphaning a widget set.

Concurrency: saves are atomic (write-then-rename, see ``save_graph``), so
any number of processes — the sharded ``generate_many`` workers in
particular — can share one store directory.  Two workers mining the same
key race benignly: both write the same content and the second rename wins.
"""

from __future__ import annotations

import os
from pathlib import Path as FilePath
from typing import Any, Iterator

from repro.cache.serialize import (
    load_graph,
    load_widgets,
    save_graph,
    save_widgets,
)
from repro.errors import CacheError
from repro.graph.build import BuildStats
from repro.graph.interaction import InteractionGraph

__all__ = ["GraphStore"]

#: Hex digits of each fingerprint kept in the file name.  16 of each
#: (64 bits log + 64 bits options) keeps names short while making
#: accidental collisions vanishingly unlikely for any realistic store.
_KEY_DIGITS = 16

_SUFFIX = ".graph.jsonl"
_WIDGETS_SUFFIX = ".widgets.json"


class GraphStore:
    """Load/save/invalidate cached graphs and widget sets under one
    directory.

    Args:
        root: the cache directory; created (with parents) if missing.
        max_bytes: optional cap on the total size of all entry files;
            exceeding saves evict least-recently-used keys.
        max_entries: optional cap on the number of distinct keys.
    """

    def __init__(
        self,
        root: str | FilePath,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.root = FilePath(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    @staticmethod
    def key(log_fingerprint: str, options_fingerprint: str) -> str:
        """The store key for a (log, options) pair."""
        return f"{log_fingerprint[:_KEY_DIGITS]}-{options_fingerprint[:_KEY_DIGITS]}"

    def path_for(self, log_fingerprint: str, options_fingerprint: str) -> FilePath:
        """Where the graph entry for this key lives (whether or not it
        exists)."""
        return self.root / (self.key(log_fingerprint, options_fingerprint) + _SUFFIX)

    def widgets_path_for(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> FilePath:
        """Where the widget-set entry for this key lives."""
        return self.root / (
            self.key(log_fingerprint, options_fingerprint) + _WIDGETS_SUFFIX
        )

    # ------------------------------------------------------------------
    # graph table
    # ------------------------------------------------------------------
    def has(self, log_fingerprint: str, options_fingerprint: str) -> bool:
        """True when a graph entry exists for this key (it may still fail
        to load if written by an incompatible version)."""
        return self.path_for(log_fingerprint, options_fingerprint).exists()

    def load(
        self, log_fingerprint: str, options_fingerprint: str
    ) -> tuple[InteractionGraph, BuildStats] | None:
        """Return the cached ``(graph, stats)`` for this key, or ``None``.

        A missing entry, a version mismatch, or a corrupt file all load as
        ``None`` (a miss): the caller re-mines and overwrites, which is
        always safe because the store is content-addressed.  A successful
        load touches the entry (LRU recency for eviction).
        """
        path = self.path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            graph, stats, _extra = load_graph(path)
        except CacheError:
            return None
        _touch(path)
        return graph, stats

    def save(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        graph: InteractionGraph,
        stats: BuildStats | None = None,
    ) -> FilePath:
        """Persist a mined graph under this key; returns the entry path."""
        path = self.path_for(log_fingerprint, options_fingerprint)
        save_graph(path, graph, stats)
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # widget-set table
    # ------------------------------------------------------------------
    def load_widget_set(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        graph: InteractionGraph,
        library: list,
        annotations: Any,
    ) -> list | None:
        """Return the cached widget set for this key decoded against
        ``graph``, or ``None``.

        ``graph`` must be the graph loaded from the *same* key — widget
        records reference its diffs table by index.  Any decode failure
        (foreign version, stale library, corruption) is a miss.
        """
        path = self.widgets_path_for(log_fingerprint, options_fingerprint)
        if not path.exists():
            return None
        try:
            widgets = load_widgets(path, graph, library, annotations)
        except CacheError:
            return None
        _touch(path)
        return widgets

    def save_widget_set(
        self,
        log_fingerprint: str,
        options_fingerprint: str,
        widgets: list,
        graph: InteractionGraph,
    ) -> FilePath:
        """Persist a mapped widget set under this key; returns the path.

        Raises:
            CacheError: when the widgets do not belong to ``graph``.
        """
        path = self.widgets_path_for(log_fingerprint, options_fingerprint)
        save_widgets(path, widgets, graph)
        self._enforce_caps()
        return path

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def entries(self) -> list[FilePath]:
        """All graph entry files currently in the store, sorted by name."""
        return sorted(self.root.glob("*" + _SUFFIX))

    def widget_entries(self) -> list[FilePath]:
        """All widget-set entry files currently in the store, sorted."""
        return sorted(self.root.glob("*" + _WIDGETS_SUFFIX))

    def __len__(self) -> int:
        return len(self.entries())

    def __iter__(self) -> Iterator[FilePath]:
        return iter(self.entries())

    def _files_by_key(self) -> dict[str, list[FilePath]]:
        """Group every entry file under its store key."""
        by_key: dict[str, list[FilePath]] = {}
        for path in self.entries():
            by_key.setdefault(path.name[: -len(_SUFFIX)], []).append(path)
        for path in self.widget_entries():
            by_key.setdefault(path.name[: -len(_WIDGETS_SUFFIX)], []).append(path)
        return by_key

    def stats(self) -> dict[str, Any]:
        """Occupancy counters: entry/file counts, total bytes, and caps."""
        by_key = self._files_by_key()
        total_bytes = 0
        n_files = 0
        for files in by_key.values():
            for path in files:
                try:
                    total_bytes += path.stat().st_size
                    n_files += 1
                except OSError:
                    continue
        return {
            "n_keys": len(by_key),
            "n_graphs": len(self.entries()),
            "n_widget_sets": len(self.widget_entries()),
            "n_files": n_files,
            "total_bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
        }

    def prune(
        self, max_bytes: int | None = None, max_entries: int | None = None
    ) -> int:
        """Evict least-recently-used keys until the caps hold.

        Explicit caps override the store's own; with neither configured
        nor given, this is a no-op.  Returns the number of keys removed.

        Raises:
            ValueError: for negative caps (use ``clear()`` to empty the
                store deliberately).
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_entries is not None and max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_entries = max_entries if max_entries is not None else self.max_entries
        if max_bytes is None and max_entries is None:
            return 0
        ranked: list[tuple[float, int, str, list[FilePath]]] = []
        for key, files in self._files_by_key().items():
            recency = 0.0
            size = 0
            for path in files:
                try:
                    stat = path.stat()
                except OSError:
                    continue
                recency = max(recency, stat.st_mtime)
                size += stat.st_size
            ranked.append((recency, size, key, files))
        ranked.sort()  # oldest recency first
        n_keys = len(ranked)
        total = sum(size for _, size, _, _ in ranked)
        removed = 0
        for recency, size, _key, files in ranked:
            over_entries = max_entries is not None and n_keys > max_entries
            over_bytes = max_bytes is not None and total > max_bytes
            if not over_entries and not over_bytes:
                break
            for path in files:
                path.unlink(missing_ok=True)
            n_keys -= 1
            total -= size
            removed += 1
        return removed

    def _enforce_caps(self) -> None:
        """Apply the store's own caps after a save (no-op when uncapped)."""
        if self.max_bytes is not None or self.max_entries is not None:
            self.prune()

    def invalidate(
        self,
        log_fingerprint: str | None = None,
        options_fingerprint: str | None = None,
    ) -> int:
        """Remove keys matching either fingerprint prefix.

        With both arguments, removes the single exact key; with one,
        removes every key sharing that side; with neither, removes
        everything (same as :meth:`clear`).  A key's graph and widget-set
        files are removed together.  Returns the number of keys removed.
        """
        removed = 0
        log_part = log_fingerprint[:_KEY_DIGITS] if log_fingerprint else None
        opts_part = (
            options_fingerprint[:_KEY_DIGITS] if options_fingerprint else None
        )
        for key, files in self._files_by_key().items():
            entry_log, _, entry_opts = key.partition("-")
            if log_part is not None and entry_log != log_part:
                continue
            if opts_part is not None and entry_opts != opts_part:
                continue
            for path in files:
                path.unlink(missing_ok=True)
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove every key; returns how many were removed."""
        return self.invalidate()


def _touch(path: FilePath) -> None:
    """Best-effort mtime bump (LRU recency); racing deletes are fine."""
    try:
        os.utime(path)
    except OSError:
        pass
