"""repro — reproduction of *Mining Precision Interfaces From Query Logs*
(Zhang, Zhang, Sellam, Wu; SIGMOD 2019).

Precision Interfaces mines the recurring structural transformations in a
SQL query log and maps them onto interactive widgets, producing a
minimal-cost interface whose closure covers the log.

Quickstart::

    from repro import PrecisionInterfaces
    interface = PrecisionInterfaces().generate_from_sql(list_of_sql_strings)
    print(interface.describe())
"""

from repro.core.interface import Interface
from repro.core.options import PipelineOptions
from repro.core.pipeline import PipelineRun, PrecisionInterfaces
from repro.errors import ReproError
from repro.paths import Path
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql
from repro.sqlparser.render import render_sql

__version__ = "1.0.0"

__all__ = [
    "PrecisionInterfaces",
    "PipelineOptions",
    "PipelineRun",
    "Interface",
    "Node",
    "Path",
    "parse_sql",
    "render_sql",
    "ReproError",
    "__version__",
]
