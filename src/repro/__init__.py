"""repro — reproduction of *Mining Precision Interfaces From Query Logs*
(Zhang, Zhang, Sellam, Wu; SIGMOD 2019).

Precision Interfaces mines the recurring structural transformations in a
SQL query log and maps them onto interactive widgets, producing a
minimal-cost interface whose closure covers the log.

Quickstart (staged pipeline API)::

    from repro import generate
    result = generate(list_of_sql_strings)
    print(result.interface.describe())
    print(result.run.total_seconds, result.run.stage("mine").stats)

Batch, incremental, and streaming workloads::

    from repro import generate_many, InterfaceSession
    results = generate_many([log_a, log_b])
    session = InterfaceSession()
    session.append_sql(first_batch)       # later appends only mine new pairs
    for snapshot in session.stream(more_batches):
        ...                               # a GenerationResult per batch
"""

from repro.api import (
    GenerationResult,
    InterfaceSession,
    Pipeline,
    PipelineObserver,
    PipelineRun,
    StageReport,
    generate,
    generate_many,
    generate_segmented,
)
from repro.cache import GraphStore
from repro.core.closure import ClosureCache
from repro.service import SessionPool
from repro.core.interface import Interface
from repro.core.options import PipelineOptions
from repro.errors import ReproError
from repro.paths import Path
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql
from repro.sqlparser.render import render_sql

__version__ = "1.2.0"

__all__ = [
    "generate",
    "generate_many",
    "generate_segmented",
    "GenerationResult",
    "InterfaceSession",
    "Pipeline",
    "PipelineObserver",
    "StageReport",
    "PipelineOptions",
    "GraphStore",
    "PipelineRun",
    "ClosureCache",
    "SessionPool",
    "Interface",
    "Node",
    "Path",
    "parse_sql",
    "render_sql",
    "ReproError",
    "__version__",
]
