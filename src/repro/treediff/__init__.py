"""Tree differencing substrate: paths, ordered matching, diff extraction."""

from repro.treediff.diff import Diff, classify_change, diff_signature, extract_diffs
from repro.treediff.matching import AlignedPair, align_children, match_trees, tree_distance
from repro.treediff.paths import Path

__all__ = [
    "Path",
    "Diff",
    "extract_diffs",
    "classify_change",
    "diff_signature",
    "AlignedPair",
    "align_children",
    "match_trees",
    "tree_distance",
]
