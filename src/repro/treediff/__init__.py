"""Tree differencing substrate: paths, ordered matching, diff extraction,
and skeleton-level memoisation of the extraction."""

from repro.treediff.diff import Diff, classify_change, diff_signature, extract_diffs
from repro.treediff.matching import AlignedPair, align_children, match_trees, tree_distance
from repro.treediff.memo import DiffMemo, literal_pattern
from repro.treediff.paths import Path

__all__ = [
    "Path",
    "Diff",
    "extract_diffs",
    "classify_change",
    "diff_signature",
    "DiffMemo",
    "literal_pattern",
    "AlignedPair",
    "align_children",
    "match_trees",
    "tree_distance",
]
