"""Ordered tree matching.

The paper (Section 4.2, Implementation) uses a fast ordered tree matching
algorithm [Bille 2005] that preserves ancestor and left-to-right sibling
relationships.  We implement the same contract with a two-stage child
aligner:

1. **anchoring** — an LCS over structural fingerprints pins children that
   are *identical* subtrees, which is the overwhelmingly common case in
   analysis logs where consecutive queries share most of their structure;
2. **segment alignment** — the gaps between anchors are reconciled with a
   small edit-distance DP whose costs prefer pairing same-type nodes (so we
   recurse into them) over insert/delete, and prefer insert+delete over
   pairing nodes of different types *unless* the pairing is one-to-one
   (which is how a table reference swapped for a subquery is reported as a
   single replacement, as in Figure 5e).

Both stages preserve child order, so ancestor and sibling relationships are
preserved exactly as the paper requires.  Complexity is
``O(|a_children| * |b_children|)`` per node, i.e. bounded by
``O(T1 * T2 / depth)`` overall — comparable to the paper's
``O(sum_i T_i * min(L_i, D_i))`` bound for the logs we process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlparser.astnodes import Node

__all__ = ["AlignedPair", "align_children", "match_trees", "tree_distance"]

# Alignment costs.  See module docstring for the rationale; the invariants
# the tests pin down are:
#   equal          < same-type pairing < insert+delete < diff-type pairing
# with the exception that a 1:1 segment pairs regardless of type.
_COST_EQUAL = 0.0
_COST_SAME_HEAD = 0.6
_COST_SAME_TYPE = 1.9
_COST_DIFF_TYPE = 2.6
_COST_GAP = 1.25


@dataclass(frozen=True)
class AlignedPair:
    """One entry of a child alignment.

    ``a_index is None`` encodes an insertion (child only in ``b``);
    ``b_index is None`` encodes a deletion (child only in ``a``).
    """

    a_index: int | None
    b_index: int | None

    @property
    def is_insertion(self) -> bool:
        return self.a_index is None

    @property
    def is_deletion(self) -> bool:
        return self.b_index is None

    @property
    def is_match(self) -> bool:
        return self.a_index is not None and self.b_index is not None


def align_children(a_children: tuple[Node, ...], b_children: tuple[Node, ...]) -> list[AlignedPair]:
    """Align two ordered child lists, returning matches / inserts / deletes
    in left-to-right order."""
    if not a_children and not b_children:
        return []
    anchors = _lcs_anchors(a_children, b_children)
    out: list[AlignedPair] = []
    prev_a, prev_b = 0, 0
    for anchor_a, anchor_b in anchors + [(len(a_children), len(b_children))]:
        segment_a = list(range(prev_a, anchor_a))
        segment_b = list(range(prev_b, anchor_b))
        out.extend(_align_segment(a_children, b_children, segment_a, segment_b))
        if anchor_a < len(a_children):
            out.append(AlignedPair(anchor_a, anchor_b))
        prev_a, prev_b = anchor_a + 1, anchor_b + 1
    return out


def _lcs_anchors(a_children: tuple[Node, ...], b_children: tuple[Node, ...]) -> list[tuple[int, int]]:
    """Longest common subsequence over fingerprints; returns index pairs of
    anchored (structurally identical) children."""
    n, m = len(a_children), len(b_children)
    if n == 0 or m == 0:
        return []
    fa = [c.fingerprint for c in a_children]
    fb = [c.fingerprint for c in b_children]
    # classic O(n*m) LCS table; child lists are short (< ~20)
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        row, nxt = table[i], table[i + 1]
        for j in range(m - 1, -1, -1):
            if fa[i] == fb[j] and a_children[i].equals(b_children[j]):
                row[j] = nxt[j + 1] + 1
            else:
                row[j] = max(nxt[j], row[j + 1])
    anchors: list[tuple[int, int]] = []
    i = j = 0
    while i < n and j < m:
        if fa[i] == fb[j] and a_children[i].equals(b_children[j]):
            anchors.append((i, j))
            i += 1
            j += 1
        elif table[i + 1][j] >= table[i][j + 1]:
            i += 1
        else:
            j += 1
    return anchors


def _align_segment(
    a_children: tuple[Node, ...],
    b_children: tuple[Node, ...],
    segment_a: list[int],
    segment_b: list[int],
) -> list[AlignedPair]:
    """Edit-distance alignment of two (small) non-anchored segments."""
    if not segment_a:
        return [AlignedPair(None, j) for j in segment_b]
    if not segment_b:
        return [AlignedPair(i, None) for i in segment_a]
    # A lone node on each side is always paired: this reports "replace X
    # with Y" as one transformation, matching the paper's Figure 5e where a
    # table reference is swapped for a subquery.
    if len(segment_a) == 1 and len(segment_b) == 1:
        return [AlignedPair(segment_a[0], segment_b[0])]

    n, m = len(segment_a), len(segment_b)
    dp = [[0.0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        dp[i][0] = i * _COST_GAP
    for j in range(1, m + 1):
        dp[0][j] = j * _COST_GAP
    for i in range(1, n + 1):
        node_a = a_children[segment_a[i - 1]]
        for j in range(1, m + 1):
            node_b = b_children[segment_b[j - 1]]
            pair = dp[i - 1][j - 1] + _pair_cost(node_a, node_b)
            delete = dp[i - 1][j] + _COST_GAP
            insert = dp[i][j - 1] + _COST_GAP
            dp[i][j] = min(pair, delete, insert)
    # backtrack
    out: list[AlignedPair] = []
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            node_a = a_children[segment_a[i - 1]]
            node_b = b_children[segment_b[j - 1]]
            if dp[i][j] == dp[i - 1][j - 1] + _pair_cost(node_a, node_b):
                out.append(AlignedPair(segment_a[i - 1], segment_b[j - 1]))
                i -= 1
                j -= 1
                continue
        if i > 0 and dp[i][j] == dp[i - 1][j] + _COST_GAP:
            out.append(AlignedPair(segment_a[i - 1], None))
            i -= 1
            continue
        out.append(AlignedPair(None, segment_b[j - 1]))
        j -= 1
    out.reverse()
    return out


def _pair_cost(a: Node, b: Node) -> float:
    if a.fingerprint == b.fingerprint and a.equals(b):
        return _COST_EQUAL
    if a.node_type == b.node_type:
        # Prefer pairing nodes that share their "head" (first child or
        # attributes) — this aligns `Month = 9` with `Month = 4` rather
        # than with `Day = 3` when a conjunct list grows or shrinks.
        if a.children and b.children and a.children[0].equals(b.children[0]):
            return _COST_SAME_HEAD
        if not a.children and not b.children:
            return _COST_SAME_TYPE
        return _COST_SAME_TYPE
    return _COST_DIFF_TYPE


def match_trees(a: Node, b: Node) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Full-tree matching: the list of ``(path_in_a, path_in_b)`` step tuples
    for every pair of matched nodes, in preorder.

    The pair ``((), ())`` (the two roots) is always present.  Used mostly by
    tests and debugging tools; :mod:`repro.treediff.diff` runs the same
    recursion inline to collect diff records.
    """
    matched: list[tuple[tuple[int, ...], tuple[int, ...]]] = []

    def visit(node_a: Node, node_b: Node, path_a: tuple[int, ...], path_b: tuple[int, ...]) -> None:
        matched.append((path_a, path_b))
        if node_a.node_type != node_b.node_type:
            return
        for pair in align_children(node_a.children, node_b.children):
            a_index, b_index = pair.a_index, pair.b_index
            if a_index is not None and b_index is not None:
                visit(
                    node_a.children[a_index],
                    node_b.children[b_index],
                    path_a + (a_index,),
                    path_b + (b_index,),
                )

    visit(a, b, (), ())
    return matched


def tree_distance(a: Node, b: Node) -> float:
    """A cheap ordered-tree dissimilarity in [0, inf): 0 iff structurally
    equal.  Used by log analysis utilities (e.g. session segmentation), not
    by the mining pipeline itself."""
    if a.equals(b):
        return 0.0
    if a.node_type != b.node_type or a.attributes != b.attributes:
        return float(a.size + b.size)
    total = 0.0
    for pair in align_children(a.children, b.children):
        a_index, b_index = pair.a_index, pair.b_index
        if a_index is not None and b_index is not None:
            total += tree_distance(a.children[a_index], b.children[b_index])
        elif a_index is not None:
            total += a.children[a_index].size
        elif b_index is not None:
            total += b.children[b_index].size
    return total
