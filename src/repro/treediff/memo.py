"""Skeleton-level diff memoisation — alignment plans replayed by path.

Analysis logs are overwhelmingly *template-repetitive*: thousands of query
pairs differ only in literal values and share one structural skeleton.
:func:`~repro.treediff.diff.extract_diffs` nevertheless re-runs the full
child-alignment DP for every pair, so the Mine stage's cost is
proportional to raw pairs.  A :class:`DiffMemo` collapses that to *unique
shape pairs*: the first alignment of a shape pair records an **alignment
plan** — the matched paths, change classifications, and emission order of
its diff records — and every later concrete pair of the same shape
*replays* the plan by direct path lookup, emitting fully concrete
:class:`~repro.treediff.diff.Diff` records without touching
``align_children`` at all.

Result-equivalence is the hard requirement, and a skeleton pair alone is
not enough to guarantee it: the aligner's anchoring stage pins children
that are *concretely* equal, so two pairs with identical skeletons but a
different equality pattern among their literals can align differently
(``[x=0, x=0] vs [x=0, x=9]`` anchors the first conjunct; ``[x=1, x=2] vs
[x=3, x=2]`` anchors the second).  Plans are therefore validated by a
**literal pattern** — the canonical first-appearance numbering of both
trees' literal values.  Skeleton equality fixes everything about the pair
except literal values; the pattern fixes every equality between them.
Together they determine every predicate ``extract_diffs`` evaluates
(subtree equality, node-type equality, attribute equality), so a plan
replayed under a matching pattern is byte-identical to direct extraction.
A pair whose pattern was never seen, or whose replay hits a path or kind
mismatch (defence in depth — e.g. a hash collision between skeletons),
falls back to a full alignment and records a new plan.

The memo is in-memory and process-salted (skeleton hashes build on
``hash``), so it is persisted as *representative pairs*: one concrete
``(a, b, prune)`` triple per plan (see
:func:`repro.cache.serialize.save_diff_memo`).  Loading re-aligns each
representative once — O(unique shapes), the exact steady-state cost the
memo admits — and every subsequent pair of a known shape replays.
"""

from __future__ import annotations

from typing import Iterable

from repro.paths import Path
from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.treediff.diff import Diff, classify_change, extract_diffs

__all__ = ["DiffMemo", "literal_pattern"]

# plan-entry opcodes
_REPLACE = 0
_DELETE = 1
_INSERT = 2

#: one replayable diff: (path, source_path, opcode, kind, is_leaf)
_PlanEntry = tuple[Path, Path, int, str, bool]
_Plan = tuple[_PlanEntry, ...]
#: (skeleton(a), skeleton(b), prune)
_ShapeKey = tuple[int, int, bool]
#: canonical literal numbering of a pair (see :func:`literal_pattern`)
_Pattern = tuple[int, ...]


def literal_pattern(a: Node, b: Node) -> tuple[int, ...]:
    """Canonical numbering of the pair's literal values.

    Walks ``a`` then ``b`` in preorder and maps every literal value to the
    index of its first appearance.  Two pairs with equal skeletons and
    equal patterns have an identical subtree-equality matrix at every
    level, which is the property that makes plan replay exact.
    """
    ids: dict[object, int] = {}
    out: list[int] = []
    for value in a.literal_values + b.literal_values:
        index = ids.setdefault(value, len(ids))
        out.append(index)
    return tuple(out)


def _resolve(node: Node, path: Path) -> Node | None:
    """The subtree at ``path``, or ``None`` when the path walks off the
    tree (one walk — no separate ``has_path`` probe)."""
    for step in path.steps:
        if step >= len(node.children):
            return None
        node = node.children[step]
    return node


class DiffMemo:
    """Memoises :func:`~repro.treediff.diff.extract_diffs` by query shape.

    One memo serves one mining configuration: plans depend on the grammar
    annotations (change kinds) and the ``prune`` flag, so ``prune`` is
    part of the key and replay is disabled outright under non-default
    annotations (the cached :attr:`~repro.sqlparser.astnodes.Node.skeleton`
    is defined by :data:`~repro.sqlparser.grammar.SQL_ANNOTATIONS`).

    Under high-cardinality traffic (random literals, low template
    repetition) a shape pair accumulates one plan per distinct literal
    pattern without bound.  ``max_plans_per_shape`` caps each shape's
    pattern table with LRU order — a replay hit refreshes its plan, an
    insert past the cap evicts the least-recently-used pattern — so
    adversarial logs cost re-alignment, never unbounded memory.

    Args:
        max_plans_per_shape: optional cap (>= 1) on plans kept per shape
            pair; ``None`` (the default) keeps every pattern.

    Attributes:
        n_replayed: pairs answered by plan replay (no alignment DP).
        n_full: pairs that ran the full alignment (first of their shape,
            pattern misses, fallbacks, and non-default-annotation calls).
        n_warmed: plans rebuilt from imported representative pairs.
        n_evicted_plans: plans dropped by the per-shape LRU cap.
    """

    def __init__(self, max_plans_per_shape: int | None = None) -> None:
        if max_plans_per_shape is not None and max_plans_per_shape < 1:
            raise ValueError(
                f"max_plans_per_shape must be >= 1, got {max_plans_per_shape}"
            )
        self.max_plans_per_shape = max_plans_per_shape
        # (skeleton(a), skeleton(b), prune) -> {literal pattern ->
        # (plan, representative_a, representative_b)}; patterns are
        # hashable tuples, so a shape pair that accumulates many
        # patterns (non-template traffic) still looks up in O(1).  The
        # inner dicts are insertion-ordered, which is what makes them an
        # LRU when capped (hits reinsert, eviction pops the front).
        self._plans: dict[_ShapeKey, dict[_Pattern, tuple[_Plan, Node, Node]]] = {}
        self.n_replayed = 0
        self.n_full = 0
        self.n_warmed = 0
        self.n_evicted_plans = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_shapes(self) -> int:
        """Number of distinct ``(skeleton, skeleton, prune)`` shape pairs."""
        return len(self._plans)

    @property
    def n_plans(self) -> int:
        """Number of stored alignment plans (>= :attr:`n_shapes`: one per
        distinct literal pattern of a shape pair)."""
        return sum(len(entries) for entries in self._plans.values())

    def __len__(self) -> int:
        return self.n_plans

    # ------------------------------------------------------------------
    # the memoised extraction
    # ------------------------------------------------------------------
    def extract(
        self,
        a: Node,
        b: Node,
        q1: int = 0,
        q2: int = 1,
        prune: bool = True,
        annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    ) -> list[Diff]:
        """Drop-in :func:`~repro.treediff.diff.extract_diffs`, memoised.

        Returns exactly what direct extraction would return for
        ``(a, b)``; the only difference is where the answer comes from.
        """
        if annotations is not SQL_ANNOTATIONS and annotations != SQL_ANNOTATIONS:
            # skeletons are defined by the default annotations; a custom
            # grammar mines unmemoised rather than risking a wrong replay
            self.n_full += 1
            return extract_diffs(a, b, q1, q2, prune=prune, annotations=annotations)
        key = (a.skeleton, b.skeleton, prune)
        pattern = literal_pattern(a, b)
        entries = self._plans.get(key)
        if entries is not None:
            entry = entries.get(pattern)
            if entry is not None:
                plan, _ra, _rb = entry
                replayed = self._replay(plan, a, b, q1, q2, annotations)
                if replayed is not None:
                    self.n_replayed += 1
                    if self.max_plans_per_shape is not None:
                        # LRU refresh: reinsert at the back of the
                        # insertion-ordered pattern table
                        entries[pattern] = entries.pop(pattern)
                    return replayed
                # path/kind mismatch: the plan is wrong for this pair
                # (skeleton hash collision); drop it and re-align
                del entries[pattern]
        records = extract_diffs(a, b, q1, q2, prune=prune, annotations=annotations)
        self.n_full += 1
        self._store_plan(key, pattern, (_plan_from(records), a, b))
        return records

    def _store_plan(
        self,
        key: _ShapeKey,
        pattern: _Pattern,
        entry: tuple[_Plan, Node, Node],
    ) -> None:
        """Insert a plan as most-recently-used, evicting past the cap."""
        entries = self._plans.setdefault(key, {})
        entries[pattern] = entry
        cap = self.max_plans_per_shape
        if cap is not None:
            while len(entries) > cap:
                entries.pop(next(iter(entries)))
                self.n_evicted_plans += 1

    @staticmethod
    def _replay(
        plan: _Plan,
        a: Node,
        b: Node,
        q1: int,
        q2: int,
        annotations: GrammarAnnotations,
    ) -> list[Diff] | None:
        """Instantiate a plan against a concrete pair, or ``None`` on any
        path or kind mismatch (the caller falls back to full alignment)."""
        out: list[Diff] = []
        for path, source_path, op, kind, is_leaf in plan:
            if op == _INSERT:
                t1 = None
                t2 = _resolve(b, path)
                if t2 is None:
                    return None
            elif op == _DELETE:
                t1 = _resolve(a, source_path)
                t2 = None
                if t1 is None:
                    return None
            else:
                t1 = _resolve(a, source_path)
                t2 = _resolve(b, path)
                if t1 is None or t2 is None:
                    return None
            if classify_change(t1, t2, annotations) != kind:
                return None
            out.append(
                Diff(
                    q1=q1,
                    q2=q2,
                    path=path,
                    t1=t1,
                    t2=t2,
                    kind=kind,
                    is_leaf=is_leaf,
                    source_path=source_path,
                )
            )
        return out

    # ------------------------------------------------------------------
    # persistence (representative pairs)
    # ------------------------------------------------------------------
    def export_pairs(self) -> list[tuple[Node, Node, bool]]:
        """One representative concrete pair per stored plan.

        The trees are shared with whatever produced them (typically the
        graph's query list), so exporting allocates no tree copies.  Feed
        the result to :func:`repro.cache.serialize.save_diff_memo`.
        """
        out: list[tuple[Node, Node, bool]] = []
        for (_ska, _skb, prune), entries in self._plans.items():
            for _plan, rep_a, rep_b in entries.values():
                out.append((rep_a, rep_b, prune))
        return out

    def import_pairs(self, pairs: Iterable[tuple[Node, Node, bool]]) -> int:
        """Warm the memo from representative pairs (a loaded
        ``.diffmemo.json`` table).

        Each pair is re-aligned *once* with the current algorithm — plans
        are never trusted across processes or versions, only shapes are —
        so a stale file can cost time but never correctness.  Pairs whose
        shape and pattern are already covered are skipped.  Returns the
        number of plans added.
        """
        added = 0
        for rep_a, rep_b, prune in pairs:
            key = (rep_a.skeleton, rep_b.skeleton, bool(prune))
            pattern = literal_pattern(rep_a, rep_b)
            entries = self._plans.setdefault(key, {})
            if pattern in entries:
                continue
            records = extract_diffs(rep_a, rep_b, prune=bool(prune))
            self._store_plan(key, pattern, (_plan_from(records), rep_a, rep_b))
            self.n_warmed += 1
            added += 1
        return added


def _plan_from(records: list[Diff]) -> _Plan:
    """Abstract a concrete diff list into a replayable plan.

    Every diff a pair produces locates its subtrees at recorded paths
    (``t1`` at ``source_path`` in the source tree, ``t2`` at ``path`` in
    the target tree), so the plan is just the paths plus the emission
    metadata — subtrees are re-fetched from each concrete pair at replay.
    """
    plan: list[_PlanEntry] = []
    for diff in records:
        if diff.is_insertion:
            op = _INSERT
        elif diff.is_deletion:
            op = _DELETE
        else:
            op = _REPLACE
        source = diff.source_path
        assert source is not None  # set in __post_init__
        plan.append((diff.path, source, op, diff.kind, diff.is_leaf))
    return tuple(plan)
