"""AST-path interval annotations (the XPath-accelerator encoding).

``Path`` itself lives in :mod:`repro.paths` (a leaf module) so the AST
node model can use it without importing the treediff package; it is
re-exported here for backwards-compatible imports.

This module adds the *interval encoding* of a growing set of paths: every
indexed path carries a ``(pre_order, post_order, subtree_size)`` triple —
the classic XPath-accelerator annotation — so the ancestor/descendant
tests the mapping layer used to answer by step-prefix comparison become
O(1) interval containment, and "every indexed path under this subtree"
becomes a contiguous *window* of the pre-order instead of a prefix scan:

* ``a`` is a strict ancestor of ``b``  ⟺  ``pre(a) < pre(b)`` and
  ``post(b) < post(a)``  ⟺  ``pre(a) < pre(b) < pre(a) + size(a)``;
* the descendants-or-self of ``a`` are exactly the pre-order slice
  ``[pre(a), pre(a) + size(a))``.

The trick that makes the encoding cheap to maintain incrementally: for
tuples of child indices, *lexicographic order is pre-order* — a prefix
sorts before every extension, and all extensions of a prefix are
contiguous.  So the sorted list of indexed paths IS the pre-order, a new
path is a bisect-insert, and only insertions (new distinct paths — rare
in steady-state template traffic) trigger an O(n) renumbering; appends to
already-indexed paths never touch the annotations at all.

On top of the ordering the index keeps a Fenwick tree of per-path
*revision mass*, so the cumulative revision of a subtree window is an
O(log n) range sum.  Because revisions only ever increase, the window sum
is strictly monotone in time: an unchanged sum *proves* no partition in
the window changed, which is what lets the merge layer replay memoised
sub-results for clean sibling subtrees (see
:class:`repro.core.mapper.MapCache`) with staleness impossible by
construction.

Interval annotations are **derived state**: they are a function of the
indexed path set alone and are never persisted — a loaded graph rebuilds
them identically (asserted by
:func:`repro.cache.serialize.derived_interval_annotations`).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import PathError
from repro.paths import Path

__all__ = ["Path", "PathInterval", "IntervalIndex"]


@dataclass(frozen=True)
class PathInterval:
    """The XPath-accelerator triple annotated onto one indexed path.

    Attributes:
        pre_order: rank of the path in the pre-order (= lexicographic
            order of step tuples) of all indexed paths.
        post_order: rank at which a depth-first traversal *leaves* the
            path's subtree; descendants have strictly smaller post ranks.
        subtree_size: number of indexed paths in the subtree, the path
            itself included — the width of its pre-order window.
    """

    pre_order: int
    post_order: int
    subtree_size: int


class _Fenwick:
    """A Fenwick (binary-indexed) tree over the pre-order positions."""

    __slots__ = ("_tree",)

    def __init__(self, values: list[int]) -> None:
        # linear-time construction: seed the leaves, push partial sums up
        self._tree = [0] + list(values)
        n = len(values)
        for i in range(1, n + 1):
            parent = i + (i & -i)
            if parent <= n:
                self._tree[parent] += self._tree[i]

    def add(self, position: int, delta: int) -> None:
        """Add ``delta`` at 0-based ``position``."""
        i = position + 1
        while i < len(self._tree):
            self._tree[i] += delta
            i += i & -i

    def prefix_sum(self, count: int) -> int:
        """Sum of the first ``count`` positions."""
        total = 0
        i = count
        while i > 0:
            total += self._tree[i]
            i -= i & -i
        return total

    def range_sum(self, start: int, stop: int) -> int:
        """Sum over positions ``[start, stop)``."""
        return self.prefix_sum(stop) - self.prefix_sum(start)


class IntervalIndex:
    """Incrementally maintained interval annotations over a set of paths.

    The index answers three questions for the mapping layer:

    * containment — :meth:`strictly_contains` / :meth:`contains` in O(1);
    * window membership — :meth:`window_paths` returns the contiguous
      pre-order slice under a root;
    * window dirtiness — :meth:`window_revision` range-sums the revision
      mass under a root in O(log n); the sum is strictly monotone, so
      equality with a recorded value proves the window is clean.

    ``structure_rev`` counts renumberings (new distinct paths); it is
    exposed for introspection but deliberately **not** part of window
    signatures — a path inserted into a window always arrives with
    revision mass (its first diffs), so the window sum already moves.
    """

    def __init__(self) -> None:
        self._paths: list[Path] = []
        self._annot: dict[Path, PathInterval] = {}
        self._rev: dict[Path, int] = {}
        self._fenwick = _Fenwick([])
        self.structure_rev = 0

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def extend(self, paths: Iterable[Path]) -> int:
        """Index any not-yet-indexed paths; renumber if any were new.

        Returns the number of genuinely new paths.  Revision mass of new
        paths starts at 0 — callers record dirtiness via :meth:`bump`.
        """
        new = sorted({p for p in paths if p not in self._annot})
        if not new:
            return 0
        for path in new:
            self._paths.insert(bisect_left(self._paths, path), path)
        self._renumber()
        return len(new)

    def bump(self, path: Path, delta: int = 1) -> None:
        """Add revision mass at ``path`` (must already be indexed)."""
        interval = self._annot.get(path)
        if interval is None:
            raise PathError(f"cannot bump unindexed path {path}")
        self._rev[path] = self._rev.get(path, 0) + delta
        self._fenwick.add(interval.pre_order, delta)

    def _renumber(self) -> None:
        """Recompute every annotation from the sorted path list.

        Lexicographic order of step tuples is pre-order, so ``pre`` is
        just the list position; ``post`` and ``subtree_size`` fall out of
        one stack sweep (pop = leave the subtree).  O(n · depth); runs
        only when a new distinct path appears.
        """
        paths = self._paths
        n = len(paths)
        size = [1] * n
        post = [0] * n
        stack: list[int] = []
        counter = 0
        for i, path in enumerate(paths):
            while stack and not paths[stack[-1]].is_prefix_of(path):
                j = stack.pop()
                post[j] = counter
                counter += 1
                if stack:
                    size[stack[-1]] += size[j]
            stack.append(i)
        while stack:
            j = stack.pop()
            post[j] = counter
            counter += 1
            if stack:
                size[stack[-1]] += size[j]
        self._annot = {
            path: PathInterval(i, post[i], size[i])
            for i, path in enumerate(paths)
        }
        self._fenwick = _Fenwick(
            [self._rev.get(path, 0) for path in paths]
        )
        self.structure_rev += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def interval(self, path: Path) -> PathInterval:
        """The annotation triple of an indexed path.

        Raises:
            PathError: for a path that was never indexed.
        """
        interval = self._annot.get(path)
        if interval is None:
            raise PathError(f"path {path} is not in the interval index")
        return interval

    def __contains__(self, path: Path) -> bool:
        return path in self._annot

    def __len__(self) -> int:
        return len(self._paths)

    def ordered_paths(self) -> list[Path]:
        """All indexed paths in pre-order (a copy)."""
        return list(self._paths)

    def iter_preorder(self) -> Iterable[Path]:
        """All indexed paths in pre-order, without copying."""
        return iter(self._paths)

    def strictly_contains(self, ancestor: Path, descendant: Path) -> bool:
        """O(1) twin of ``ancestor.is_strict_prefix_of(descendant)`` for
        two indexed paths."""
        a = self.interval(ancestor)
        b = self.interval(descendant)
        return a.pre_order < b.pre_order and b.post_order < a.post_order

    def contains(self, ancestor: Path, descendant: Path) -> bool:
        """O(1) twin of ``ancestor.is_prefix_of(descendant)`` for two
        indexed paths."""
        a = self.interval(ancestor)
        b = self.interval(descendant)
        return a.pre_order <= b.pre_order and b.post_order <= a.post_order

    def window_paths(self, root: Path, strict: bool = False) -> list[Path]:
        """The indexed paths under ``root`` — its pre-order window.

        With ``strict=True`` the root itself is excluded.  This is the
        window query that replaces the mapping layer's prefix scans: the
        result is a contiguous slice, not a filter over every path.
        """
        interval = self.interval(root)
        start = interval.pre_order + (1 if strict else 0)
        return self._paths[start : interval.pre_order + interval.subtree_size]

    def window_revision(self, root: Path) -> int:
        """Cumulative revision mass of ``root``'s window (root included).

        Strictly monotone over the index's lifetime: any :meth:`bump`
        inside the window, and any new path inserted into it (which is
        always followed by its first bump), increases the sum.  Equality
        with a recorded value therefore proves the window is untouched —
        the staleness-impossible signature the merge memos key on.
        """
        interval = self.interval(root)
        return self._fenwick.range_sum(
            interval.pre_order, interval.pre_order + interval.subtree_size
        )

    def revision_of(self, path: Path) -> int:
        """Revision mass recorded at exactly ``path`` (0 if never bumped)."""
        return self._rev.get(path, 0)

    def annotations(self) -> dict[Path, PathInterval]:
        """Snapshot of every annotation (for tests and derived-state
        rebuild checks; see :mod:`repro.cache.serialize`)."""
        return dict(self._annot)

    # ------------------------------------------------------------------
    # self-check (property-test harness hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the interval invariants; raises ``AssertionError``.

        Checked: pre-order ranks are the sorted positions; any two
        indexed paths have nested or disjoint intervals (never partially
        overlapping), nesting exactly when one is a prefix of the other;
        ``subtree_size`` counts the indexed paths the interval contains;
        post-order agrees with the pre+size window.
        """
        paths = self._paths
        assert paths == sorted(paths), "pre-order is not sorted order"
        assert len(paths) == len(self._annot)
        for i, path in enumerate(paths):
            interval = self._annot[path]
            assert interval.pre_order == i, (path, interval)
            members = [
                q
                for q in paths
                if path.is_prefix_of(q)
            ]
            assert interval.subtree_size == len(members), (path, interval)
            window = paths[i : i + interval.subtree_size]
            assert window == members, (path, window, members)
        for i, a in enumerate(paths):
            ia = self._annot[a]
            for b in paths[i + 1 :]:
                ib = self._annot[b]
                nested_ab = (
                    ia.pre_order < ib.pre_order
                    and ib.post_order < ia.post_order
                )
                nested_ba = (
                    ib.pre_order < ia.pre_order
                    and ia.post_order < ib.post_order
                )
                disjoint = not nested_ab and not nested_ba
                if a.is_strict_prefix_of(b):
                    assert nested_ab, (a, b)
                elif b.is_strict_prefix_of(a):
                    assert nested_ba, (a, b)
                else:
                    assert disjoint, (a, b)
                    # disjoint means fully disjoint windows, not partial
                    # overlap: one window ends before the other begins
                    lo, hi = sorted(
                        (ia, ib), key=lambda iv: iv.pre_order
                    )
                    assert (
                        lo.pre_order + lo.subtree_size <= hi.pre_order
                    ), (a, b)
