"""Re-export of :class:`repro.paths.Path` for backwards-compatible imports.

``Path`` lives in :mod:`repro.paths` (a leaf module) so that the AST node
model can use it without importing the treediff package.
"""

from repro.paths import Path

__all__ = ["Path"]
