"""Subtree-difference extraction — the ``diffs`` table of Section 4.2.

A :class:`Diff` record ``d = (q1, q2, p, t1, t2)`` states that replacing the
subtree rooted at path ``p`` (subtree ``t1``) with ``t2`` transforms query
``q1`` toward query ``q2``.  Additions and deletions are represented with
``t1 = None`` / ``t2 = None`` respectively, exactly as in the paper.

:func:`extract_diffs` walks two ASTs with the ordered matcher and emits

* **leaf-diffs** — the minimally-sized changed subtrees, plus
* **ancestor diffs** — every matched ancestor of a leaf-diff up to the root
  (``prune=False``), or only ancestors that are the least common ancestor
  of two or more leaf-diff branches (``prune=True``, the LCA pruning of
  Section 6.2).

Each diff can be *applied*: ``d.apply(q)`` performs the subtree replacement
(or insert/delete) on an arbitrary query whose AST has a compatible path,
and ``d.invert()`` swaps the direction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.errors import DiffError
from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.treediff.matching import align_children
from repro.paths import Path

__all__ = ["Diff", "extract_diffs", "classify_change", "diff_signature"]


def classify_change(
    t1: Node | None,
    t2: Node | None,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
) -> str:
    """Type a transformation as ``"num"``, ``"str"`` or ``"tree"``.

    Following Section 4.3: numerics can be cast to strings and any type can
    be cast to a tree; a presence toggle (either side ``None``) is a tree
    change.
    """
    if t1 is None or t2 is None:
        return "tree"
    kind1 = annotations.kind_of(t1)
    kind2 = annotations.kind_of(t2)
    if kind1 == kind2:
        return kind1
    if {kind1, kind2} == {"num", "str"}:
        return "str"
    return "tree"


@dataclass(frozen=True)
class Diff:
    """One subtree transformation between two queries in the log.

    Attributes:
        q1: index of the source query in the log.
        q2: index of the target query in the log.
        path: path to the root of the changed subtree.  For insertions the
            path is the inserted node's position in the *target* tree; for
            deletions, its position in the *source* tree.
        t1: subtree in the source query (``None`` for an insertion).
        t2: subtree in the target query (``None`` for a deletion).
        kind: ``"num" | "str" | "tree"`` (see :func:`classify_change`).
        is_leaf: True for a minimal changed subtree, False for an ancestor
            transformation.
        source_path: the changed subtree's path in *source-tree*
            coordinates.  It differs from ``path`` only when structural
            insertions/deletions elsewhere in the pair shifted sibling
            indices; ``apply`` uses it so that replacements and deletions
            resolve on the source-shaped tree.
    """

    q1: int
    q2: int
    path: Path
    t1: Node | None
    t2: Node | None
    kind: str
    is_leaf: bool
    source_path: Path | None = None

    def __post_init__(self) -> None:
        if self.t1 is None and self.t2 is None:
            raise DiffError("a diff needs at least one non-null subtree")
        if self.source_path is None:
            object.__setattr__(self, "source_path", self.path)

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    @property
    def is_insertion(self) -> bool:
        return self.t1 is None

    @property
    def is_deletion(self) -> bool:
        return self.t2 is None

    @property
    def is_replacement(self) -> bool:
        return self.t1 is not None and self.t2 is not None

    def invert(self) -> "Diff":
        """The inverse transformation d⁻¹ (swaps source and target)."""
        source = self.source_path
        assert source is not None  # set in __post_init__
        return dc_replace(
            self,
            q1=self.q2,
            q2=self.q1,
            t1=self.t2,
            t2=self.t1,
            path=source,
            source_path=self.path,
        )

    def apply(self, query: Node) -> Node:
        """Apply this transformation to a source-shaped ``query``
        (interpreting ``d`` as the function ``d(q) = q'`` of Section 4.2).

        To compose the leaf diffs of a pair into the full transformation,
        apply replacements first, then deletions in descending
        ``source_path`` order, then insertions in ascending ``path`` order
        (each stage's coordinates are then valid).

        Raises:
            DiffError: when the path does not resolve in ``query``.
        """
        if self.is_insertion:
            parent = self.path.parent() if not self.path.is_root() else None
            if parent is None:
                raise DiffError("cannot insert at the root")
            index = self.path.steps[-1]
            if not query.has_path(parent):
                raise DiffError(f"insertion parent {parent} missing")
            index = min(index, len(query.get(parent).children))
            return query.insert_at(parent, index, self.t2)
        location = self.source_path
        assert location is not None
        if self.is_deletion:
            if not query.has_path(location):
                raise DiffError(f"deletion path {location} missing")
            return query.delete_at(location)
        if not query.has_path(location):
            raise DiffError(f"replacement path {location} missing")
        return query.replace_at(location, self.t2)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        left = self.t1.label() if self.t1 is not None else "∅"
        right = self.t2.label() if self.t2 is not None else "∅"
        return f"d(q{self.q1}->q{self.q2} @{self.path}: {left} -> {right} [{self.kind}])"


def diff_signature(diff: Diff) -> tuple[Path, int | None, int | None]:
    """Deduplication key: two diffs with the same signature express the same
    transformation regardless of which query pair produced them."""
    return (
        diff.path,
        diff.t1.fingerprint if diff.t1 is not None else None,
        diff.t2.fingerprint if diff.t2 is not None else None,
    )


def extract_diffs(
    a: Node,
    b: Node,
    q1: int = 0,
    q2: int = 1,
    prune: bool = True,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
) -> list[Diff]:
    """Compute the diff records between two ASTs.

    Args:
        a: source query AST.
        b: target query AST.
        q1: log index of ``a``.
        q2: log index of ``b``.
        prune: apply LCA pruning (Section 6.2).  When False, every matched
            ancestor of a leaf-diff (up to and including the root) is also
            emitted, which is the unoptimised semantics of Section 4.2.
        annotations: grammar annotations used to type the changes.

    Returns:
        The list of :class:`Diff` records (empty when the trees are equal).
    """
    out: list[Diff] = []

    def emit(
        path: Path,
        source_path: Path,
        t1: Node | None,
        t2: Node | None,
        is_leaf: bool,
    ) -> None:
        out.append(
            Diff(
                q1=q1,
                q2=q2,
                path=path,
                t1=t1,
                t2=t2,
                kind=classify_change(t1, t2, annotations),
                is_leaf=is_leaf,
                source_path=source_path,
            )
        )

    def walk(node_a: Node, node_b: Node, path_a: Path, path_b: Path) -> int:
        """Recurse over a matched pair; returns the number of leaf-diffs
        found strictly within this pair (including itself)."""
        if node_a.fingerprint == node_b.fingerprint and node_a.equals(node_b):
            return 0
        if node_a.node_type != node_b.node_type or node_a.attributes != node_b.attributes:
            emit(path_b, path_a, node_a, node_b, is_leaf=True)
            return 1

        leaf_count = 0
        branches = 0
        for pair in align_children(node_a.children, node_b.children):
            a_index, b_index = pair.a_index, pair.b_index
            if a_index is not None and b_index is not None:
                child_count = walk(
                    node_a.children[a_index],
                    node_b.children[b_index],
                    path_a.child(a_index),
                    path_b.child(b_index),
                )
                if child_count:
                    branches += 1
                    leaf_count += child_count
            elif a_index is not None:
                deleted = path_a.child(a_index)
                emit(deleted, deleted, node_a.children[a_index], None, True)
                branches += 1
                leaf_count += 1
            elif b_index is not None:
                inserted = path_b.child(b_index)
                emit(inserted, inserted, None, node_b.children[b_index], True)
                branches += 1
                leaf_count += 1

        if leaf_count and (not prune or branches >= 2):
            emit(path_b, path_a, node_a, node_b, is_leaf=False)
        return leaf_count

    walk(a, b, Path.root(), Path.root())
    return out
