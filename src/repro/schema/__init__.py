"""Schema substrate: catalog, validation, closure precision (Appendix D)."""

from repro.schema.catalog import ONTIME_CATALOG, SDSS_CATALOG, SchemaCatalog
from repro.schema.precision import ValidationResult, closure_precision, validate_query

__all__ = [
    "SchemaCatalog",
    "SDSS_CATALOG",
    "ONTIME_CATALOG",
    "validate_query",
    "ValidationResult",
    "closure_precision",
]
