"""Closure precision against a schema (Appendix D).

A purely syntactic interface can compose widget states into queries that
violate the schema — pick column ``specObjId`` but table ``PhotoObj``.  The
paper measures *precision*: the fraction of the closure whose queries the
schema accepts, and shows a simple filter — "keep a mapping from column
name to the names of tables that contain the column, and verify that all
column name node types have the containing table name node in the tree" —
restores 100 % precision.

:func:`validate_query` is the schema acceptance check (per-scope name
resolution, alias-aware, subqueries handled as nested scopes) and
:func:`closure_precision` the end-to-end measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interface import Interface
from repro.schema.catalog import SchemaCatalog
from repro.sqlparser.astnodes import Node

__all__ = ["ValidationResult", "validate_query", "closure_precision"]

#: Scalar functions the validator accepts without a catalog lookup.
_SCALAR_FUNCS = {
    "count", "sum", "avg", "min", "max", "floor", "ceil", "ceiling", "abs",
    "round", "sqrt", "log", "exp", "power", "str", "len", "upper", "lower",
    "cast",
}


@dataclass
class ValidationResult:
    """Outcome of schema validation for one query."""

    valid: bool
    errors: list[str]


def _scope_columns(from_clause: Node | None, catalog: SchemaCatalog) -> tuple[dict[str, frozenset[str]], bool]:
    """Build the name scope of one SELECT: alias/table -> columns.

    Returns ``(scope, opaque)`` where ``opaque`` is True when the scope
    contains a source we cannot resolve columns for (table function or
    subquery) — unqualified columns are then accepted permissively.
    """
    scope: dict[str, frozenset[str]] = {}
    opaque = False
    if from_clause is None:
        return scope, True

    def add_item(item: Node) -> None:
        nonlocal opaque
        if item.node_type == "TableRef":
            name = str(item.attributes["name"])
            alias = item.attributes.get("alias")
            if catalog.has_table(name):
                columns = catalog.columns_of(name)
                scope[name.lower()] = columns
                if alias:
                    scope[str(alias).lower()] = columns
            else:
                opaque = True
        elif item.node_type == "FuncTableRef":
            opaque = True
            alias = item.attributes.get("alias")
            if alias:
                scope[str(alias).lower()] = frozenset()
        elif item.node_type == "SubqueryRef":
            opaque = True
            alias = item.attributes.get("alias")
            if alias:
                scope[str(alias).lower()] = frozenset()
        elif item.node_type == "JoinRef":
            for child in item.children:
                if child.node_type != "OnClause":
                    add_item(child)

    for item in from_clause.children:
        add_item(item)
    return scope, opaque


def _check_column(
    name: str,
    scope: dict[str, frozenset[str]],
    opaque: bool,
    errors: list[str],
) -> None:
    if "." in name:
        qualifier, column = name.rsplit(".", 1)
        qualifier_key = qualifier.lower()
        if qualifier_key in scope:
            columns = scope[qualifier_key]
            # empty column set = opaque source (UDF/subquery): accept
            if columns and column.lower() not in columns:
                errors.append(f"column {column} not in {qualifier}")
        elif not opaque:
            errors.append(f"unknown qualifier {qualifier}")
        return
    if opaque:
        return
    if not any(name.lower() in columns for columns in scope.values()):
        errors.append(f"column {name} not found in any FROM table")


def _validate_select(select: Node, catalog: SchemaCatalog, errors: list[str]) -> None:
    from_clause = next(
        (c for c in select.children if c.node_type == "From"), None
    )
    # unknown tables are themselves errors
    if from_clause is not None:
        def check_tables(item: Node) -> None:
            if item.node_type == "TableRef":
                name = str(item.attributes["name"])
                if not catalog.has_table(name):
                    errors.append(f"unknown table {name}")
            elif item.node_type == "FuncTableRef":
                func = str(item.children[0].attributes["name"])
                if not catalog.has_table_function(func):
                    errors.append(f"unknown table function {func}")
            elif item.node_type == "JoinRef":
                for child in item.children:
                    if child.node_type != "OnClause":
                        check_tables(child)

        for item in from_clause.children:
            check_tables(item)

    scope, opaque = _scope_columns(from_clause, catalog)

    def walk(node: Node) -> None:
        if node.node_type == "SelectStmt":
            _validate_select(node, catalog, errors)
            return
        if node.node_type == "ColExpr":
            _check_column(str(node.attributes["name"]), scope, opaque, errors)
        for child in node.children:
            walk(child)

    for clause in select.children:
        if clause.node_type == "From":
            # only descend into subqueries within FROM
            for path_node in clause.preorder():
                if path_node is clause:
                    continue
                if path_node.node_type == "SelectStmt":
                    _validate_select(path_node, catalog, errors)
        else:
            walk(clause)


def validate_query(query: Node, catalog: SchemaCatalog) -> ValidationResult:
    """Schema-check one query AST (tables exist, columns resolve)."""
    errors: list[str] = []
    if query.node_type == "SetOpStmt":
        for child in query.children:
            result = validate_query(child, catalog)
            errors.extend(result.errors)
    elif query.node_type == "SelectStmt":
        _validate_select(query, catalog, errors)
    else:
        errors.append(f"not a statement: {query.node_type}")
    return ValidationResult(valid=not errors, errors=errors)


def closure_precision(
    interface: Interface,
    catalog: SchemaCatalog,
    limit: int = 20_000,
    filtered: bool = False,
) -> tuple[float, int]:
    """Measure closure precision (Appendix D, Figure 15).

    Args:
        interface: the generated interface.
        catalog: schema to validate against.
        limit: cap on closure enumeration.
        filtered: when True, apply the paper's column↔table consistency
            filter *before* counting — the filter suppresses invalid
            combinations, so precision over the surviving queries is 1.0
            by construction (reported as such, with the surviving count).

    Returns:
        ``(precision, n_enumerated)`` where precision is the valid fraction
        of the (possibly filtered) closure.
    """
    total = 0
    valid = 0
    for query in interface.closure(limit=limit):
        accepted = validate_query(query, catalog).valid
        if filtered and not accepted:
            continue  # the filter refuses to generate this query
        total += 1
        if accepted:
            valid += 1
    if total == 0:
        return 1.0, 0
    return valid / total, total
