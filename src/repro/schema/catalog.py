"""Schema catalog.

Appendix D's precision experiment builds "a local database with a schema
consistent with the tables and attributes found in the queries — a small
subset of the SDSS database schema" and checks which closure queries the
schema accepts.  :class:`SchemaCatalog` is that database-without-data: a
table → columns map with alias-aware name resolution.

:data:`SDSS_CATALOG` ships the SDSS subset our synthetic log generators
query, and :data:`ONTIME_CATALOG` the OnTime flight-delays table of the
OLAP and ad-hoc logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

__all__ = ["SchemaCatalog", "SDSS_CATALOG", "ONTIME_CATALOG"]


@dataclass
class SchemaCatalog:
    """Tables, their columns, and known table-valued functions."""

    tables: dict[str, frozenset[str]] = field(default_factory=dict)
    table_functions: dict[str, int] = field(default_factory=dict)

    def add_table(self, name: str, columns: list[str]) -> None:
        """Register a table (case-insensitive name).

        Raises:
            SchemaError: for duplicate registration or empty columns.
        """
        key = name.lower()
        if key in self.tables:
            raise SchemaError(f"table {name} already registered")
        if not columns:
            raise SchemaError(f"table {name} needs at least one column")
        self.tables[key] = frozenset(col.lower() for col in columns)

    def add_table_function(self, name: str, arity: int) -> None:
        """Register a table-valued function (e.g. ``dbo.fGetNearbyObjEq``)."""
        self.table_functions[name.lower()] = arity

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def has_table_function(self, name: str) -> bool:
        return name.lower() in self.table_functions

    def columns_of(self, table: str) -> frozenset[str]:
        """Columns of a table.

        Raises:
            SchemaError: for an unknown table.
        """
        key = table.lower()
        if key not in self.tables:
            raise SchemaError(f"unknown table {table}")
        return self.tables[key]

    def has_column(self, table: str, column: str) -> bool:
        key = table.lower()
        return key in self.tables and column.lower() in self.tables[key]

    def tables_with_column(self, column: str) -> list[str]:
        """All tables containing ``column`` — the "mapping from column name
        to the names of tables that contain the column" the precision
        filter uses."""
        needle = column.lower()
        return [name for name, cols in self.tables.items() if needle in cols]


def _sdss_subset() -> SchemaCatalog:
    catalog = SchemaCatalog()
    catalog.add_table("SpecLineIndex", ["specObjId", "z", "ew", "sigma"])
    catalog.add_table("XCRedshift", ["specObjId", "z", "r", "peak"])
    catalog.add_table(
        "SpecObj", ["specObjId", "bestObjId", "z", "ra", "dec", "plateId", "mjd"]
    )
    catalog.add_table(
        "PhotoObj",
        ["objID", "ra", "dec", "u", "g", "r", "i", "type", "flags"],
    )
    catalog.add_table("Galaxy", ["objID", "ra", "dec", "u", "g", "r", "i", "petroRad"])
    catalog.add_table("Star", ["objID", "ra", "dec", "u", "g", "r", "i", "extinction"])
    catalog.add_table("Neighbors", ["objID", "neighborObjID", "distance", "mode"])
    catalog.add_table("SpecLine", ["specObjId", "wave", "waveMin", "waveMax", "height"])
    catalog.add_table("PlateX", ["plateID", "ra", "dec", "mjd", "nExp"])
    catalog.add_table("Field", ["fieldID", "run", "camcol", "quality"])
    catalog.add_table_function("dbo.fGetNearbyObjEq", 3)
    catalog.add_table_function("dbo.fGetObjFromRect", 4)
    return catalog


def _ontime() -> SchemaCatalog:
    catalog = SchemaCatalog()
    catalog.add_table(
        "ontime",
        [
            "Year", "Month", "DayofMonth", "Day", "DayOfWeek", "FlightDate",
            "UniqueCarrier", "carrier", "FlightNum", "Origin", "OriginState",
            "Dest", "DestState", "DepTime", "DepDelay", "ArrTime", "ArrDelay",
            "Delay", "Cancelled", "canceled", "Diverted", "distance", "flights",
            "AirTime",
        ],
    )
    return catalog


#: SDSS-subset catalog used by the SDSS log generator and Appendix D.
SDSS_CATALOG = _sdss_subset()

#: OnTime flight-delays catalog used by the OLAP and ad-hoc generators.
ONTIME_CATALOG = _ontime()
