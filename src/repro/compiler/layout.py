"""Widget grid layout (Section 5.3).

"After generating I*, an editor interface renders the widgets in a grid.
The user can optionally edit, add labels, or change the widget type for
each widget."  This module computes the default grid placement and exposes
the editing operations; the HTML compiler consumes the resulting
:class:`LayoutPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.interface import Interface, as_interface
from repro.errors import CompileError
from repro.sqlparser.render import render_sql
from repro.widgets.base import Widget

__all__ = ["WidgetCell", "LayoutPlan", "grid_layout"]


@dataclass
class WidgetCell:
    """One widget's placement in the editor grid."""

    widget: Widget
    row: int
    column: int
    label: str
    width: int = 1

    def describe(self) -> str:
        return f"({self.row},{self.column}) {self.label} [{self.widget.widget_type.name}]"


@dataclass
class LayoutPlan:
    """A grid of widget cells plus the visualization placeholder."""

    cells: list[WidgetCell] = field(default_factory=list)
    columns: int = 2

    def cell_for(self, widget: Widget) -> WidgetCell:
        for cell in self.cells:
            if cell.widget is widget:
                return cell
        raise CompileError("widget is not part of this layout")

    # ------------------------------------------------------------------
    # editor operations
    # ------------------------------------------------------------------
    def relabel(self, widget: Widget, label: str) -> None:
        """Rename a widget's display label."""
        self.cell_for(widget).label = label
        widget.label = label

    def move(self, widget: Widget, row: int, column: int) -> None:
        """Reposition a widget cell.

        Raises:
            CompileError: for out-of-grid positions.
        """
        if row < 0 or column < 0 or column >= self.columns:
            raise CompileError(f"bad grid position ({row}, {column})")
        cell = self.cell_for(widget)
        cell.row, cell.column = row, column


def _default_label(widget: Widget) -> str:
    """Derive a human-readable label from the widget's domain."""
    subtrees = list(widget.domain.subtrees())
    if not subtrees:
        return f"option @{widget.path}"
    sample = subtrees[0]
    if sample.node_type == "Top":
        return "Toggle TOP" if widget.domain.includes_none else "TOP limit"
    if sample.node_type in ("TableRef",):
        return "table"
    if sample.node_type in ("ColExpr", "FuncName"):
        values = sorted(str(s.attributes.get("name", "")) for s in subtrees[:3])
        return " / ".join(values) if values else "column"
    if sample.node_type in ("NumExpr", "HexExpr"):
        return f"value @{widget.path}"
    if sample.node_type == "StrExpr":
        return f"choice @{widget.path}"
    if sample.node_type == "BetweenExpr":
        target = sample.children[0]
        name = target.attributes.get("name", "range")
        return f"{name} range"
    if widget.domain.includes_none:
        return f"toggle {sample.node_type}"
    return f"{sample.node_type} @{widget.path}"


def grid_layout(interface: Interface, columns: int = 2) -> LayoutPlan:
    """Place widgets into a grid, shallow paths first (the most global
    controls at the top), two per row by default.

    Raises:
        CompileError: for a non-positive column count.
    """
    if columns <= 0:
        raise CompileError(f"columns must be positive, got {columns}")
    interface = as_interface(interface)
    plan = LayoutPlan(columns=columns)
    ordered = sorted(interface.widgets, key=lambda w: (w.path.depth, w.path))
    for index, widget in enumerate(ordered):
        label = widget.label or _default_label(widget)
        plan.cells.append(
            WidgetCell(
                widget=widget,
                row=index // columns,
                column=index % columns,
                label=label,
            )
        )
    return plan


def describe_layout(interface: Interface) -> str:
    """Editor-style summary: the grid plus the initial query."""
    interface = as_interface(interface)
    plan = grid_layout(interface)
    lines = [f"initial: {render_sql(interface.initial_query)}"]
    lines.extend(cell.describe() for cell in plan.cells)
    return "\n".join(lines)
