"""Interface compilation: grid layout, HTML generation, exec/render
runtime, and incremental (dirty-driven) page maintenance."""

from repro.compiler.html import compile_html
from repro.compiler.incremental import (
    CompiledPage,
    CompileStats,
    IncrementalCompiler,
    WidgetArtifact,
    apply_patch,
    make_patch,
    page_html,
    widget_fingerprint,
)
from repro.compiler.layout import LayoutPlan, WidgetCell, describe_layout, grid_layout
from repro.compiler.runtime import Database, Table, execute, render_text

__all__ = [
    "compile_html",
    "grid_layout",
    "describe_layout",
    "LayoutPlan",
    "WidgetCell",
    "Database",
    "Table",
    "execute",
    "render_text",
    "IncrementalCompiler",
    "CompiledPage",
    "CompileStats",
    "WidgetArtifact",
    "widget_fingerprint",
    "make_patch",
    "apply_patch",
    "page_html",
]
