"""Interface compilation: grid layout, HTML generation, exec/render runtime."""

from repro.compiler.html import compile_html
from repro.compiler.layout import LayoutPlan, WidgetCell, describe_layout, grid_layout
from repro.compiler.runtime import Database, Table, execute, render_text

__all__ = [
    "compile_html",
    "grid_layout",
    "describe_layout",
    "LayoutPlan",
    "WidgetCell",
    "Database",
    "Table",
    "execute",
    "render_text",
]
