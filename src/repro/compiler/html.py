"""Interface → standalone HTML+JavaScript web application (Section 5.3).

"We then compile the interface into a web application that executes an
internal query q by running the provided exec() function, and renders the
results using the user provided render() method."

Offline we have no query server, so the compiler *pre-evaluates* the
interface closure: every combination of widget states (sliders sampled at
their initialising values) is rendered to SQL — and, when a
:class:`~repro.compiler.runtime.Database` is supplied, executed — and the
results are embedded in the page.  The generated file is fully
self-contained: interacting with a widget looks up the composed query and
updates the SQL view and the result table, exactly the interaction loop of
Figure 2b.

The compilation is factored into pure per-widget units so the incremental
compiler (:mod:`repro.compiler.incremental`) can reuse them verbatim:

* :func:`build_choice_list` — a widget's enumerable states;
* :func:`render_control_body` — the expensive per-widget rendering (the
  ``<option>`` labels, or the checkbox ``data-on`` index for presence
  toggles);
* :func:`render_widget_block` — the cheap per-widget block assembly;
* :func:`render_closure_entry` — one closure combination's SQL (and,
  with a database, its executed result);
* :func:`assemble_page` — the page template, with a canonical closure
  key order so any route to the same closure yields identical bytes.

:func:`compile_html` is the one-shot composition of those units; the
incremental compiler produces byte-identical output by construction
because it calls the same units.
"""

from __future__ import annotations

import html as html_escape
import json
from itertools import product

from repro.compiler.layout import LayoutPlan, grid_layout
from repro.compiler.runtime import Database, execute, render_text
from repro.core.closure import apply_widget_choice
from repro.core.interface import Interface, as_interface
from repro.errors import CompileError
from repro.sqlparser.astnodes import Node
from repro.sqlparser.render import render_sql
from repro.widgets.base import Widget

__all__ = [
    "compile_html",
    "build_choice_list",
    "render_control_body",
    "render_widget_block",
    "render_closure_entry",
    "assemble_page",
]

_UNCHANGED = "(unchanged)"
_ABSENT = "(none)"

_PAGE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 2em; background: #fafafa; }}
h1 {{ font-size: 1.3em; }}
.grid {{ display: grid; grid-template-columns: repeat({columns}, minmax(220px, 1fr));
        gap: 1em; max-width: 60em; }}
.widget {{ background: white; border: 1px solid #ddd; border-radius: 6px;
          padding: 0.8em; }}
.widget label {{ display: block; font-weight: bold; margin-bottom: 0.4em;
               font-size: 0.9em; }}
#sql {{ font-family: monospace; background: #272822; color: #f8f8f2;
       padding: 1em; border-radius: 6px; max-width: 60em; margin-top: 1em;
       white-space: pre-wrap; }}
#result {{ font-family: monospace; white-space: pre; background: white;
          border: 1px solid #ddd; padding: 1em; border-radius: 6px;
          max-width: 60em; margin-top: 1em; overflow-x: auto; }}
.miss {{ color: #b00; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div class="grid">
{widgets}
</div>
<div id="sql"></div>
<div id="result"></div>
<script>
const CLOSURE = {closure_json};
const WIDGET_IDS = {widget_ids_json};
function currentKey() {{
  return WIDGET_IDS.map(id => {{
    const el = document.getElementById(id);
    if (el.type === "checkbox") return el.checked ? (el.dataset.on || "1") : "0";
    return el.value;
  }}).join("|");
}}
function refresh() {{
  const entry = CLOSURE[currentKey()];
  const sqlDiv = document.getElementById("sql");
  const resultDiv = document.getElementById("result");
  if (!entry) {{
    sqlDiv.innerHTML = '<span class="miss">-- combination not pre-evaluated --</span>';
    resultDiv.textContent = "";
    return;
  }}
  sqlDiv.textContent = entry.sql;
  resultDiv.textContent = entry.result || "(no result pre-computed)";
}}
for (const id of WIDGET_IDS) {{
  document.getElementById(id).addEventListener("input", refresh);
  document.getElementById(id).addEventListener("change", refresh);
}}
refresh();
</script>
</body>
</html>
"""


def _option_label(entry: Node | None) -> str:
    if entry is None:
        return _ABSENT
    return render_sql(entry) if entry.node_type in ("SelectStmt", "SetOpStmt") else _render_fragment(entry)


def _render_fragment(entry: Node) -> str:
    """Best-effort SQL text for a subtree (fall back to the node label)."""
    from repro.sqlparser.render import _Renderer  # local: shares expr logic

    renderer = _Renderer()
    try:
        if entry.node_type in ("SelectStmt", "SetOpStmt"):
            return renderer.statement(entry)
        if entry.node_type == "Top":
            return f"TOP {renderer.expr(entry.children[0])}"
        if entry.node_type == "ProjClause":
            return renderer._proj(entry)
        if entry.node_type in ("TableRef", "FuncTableRef", "SubqueryRef", "JoinRef"):
            return renderer._from_item(entry)
        if entry.node_type == "GroupClause":
            return renderer.expr(entry.children[0])
        return renderer.expr(entry)
    except CompileError:
        return entry.label()


# ----------------------------------------------------------------------
# per-widget units (shared with repro.compiler.incremental)
# ----------------------------------------------------------------------
def build_choice_list(widget: Widget) -> list[Node | None | str]:
    """A widget's enumerable states: index 0 is always "(unchanged)",
    then the domain entries (extrapolating widgets sampled at their first
    five initialising subtrees, as enumeration cannot cover a range)."""
    choices: list[Node | None | str] = [_UNCHANGED]
    entries = list(widget.domain.entries())
    if widget.widget_type.extrapolates and len(entries) > 5:
        entries = entries[:5]
    choices.extend(entries)
    return choices


def _checkbox_on_index(widget: Widget, choices: list[Node | None | str]) -> int | None:
    """The choice index a presence toggle's checkbox selects when checked,
    or None when the widget is not a presence toggle."""
    if widget.widget_type.name != "toggle_button":
        return None
    if len(choices) != 3 or None not in choices:
        return None
    return next(i for i, c in enumerate(choices) if isinstance(c, Node))


def render_control_body(
    widget: Widget, choices: list[Node | None | str]
) -> tuple[str, str]:
    """The expensive, position-independent part of a widget's control.

    Returns ``(kind, body)``: ``("checkbox", on_index)`` for a presence
    toggle (checkbox semantics over {unchanged, on} — checked swaps the
    element in, unchecked leaves the query unchanged), or
    ``("select", options_html)`` with every domain entry rendered to an
    escaped ``<option>`` label.
    """
    on_index = _checkbox_on_index(widget, choices)
    if on_index is not None:
        return ("checkbox", str(on_index))
    options = "".join(
        f'<option value="{i}">{html_escape.escape(_option_label(c) if not isinstance(c, str) else c)}</option>'
        for i, c in enumerate(choices)
    )
    return ("select", options)


def render_widget_block(
    widget_id: str, label: str, tag: str, kind: str, body: str
) -> str:
    """Assemble one widget's HTML block from its rendered control body.

    Cheap by design (string concatenation only): the incremental compiler
    re-runs this for every widget on every page — the element id depends
    on grid position — while ``(kind, body)`` is reused from the artifact
    cache.
    """
    if kind == "checkbox":
        control = f'<input type="checkbox" id="{widget_id}" data-on="{body}">'
    else:
        control = f'<select id="{widget_id}">{body}</select>'
    return (
        f'<div class="widget"><label>{html_escape.escape(label)} '
        f'<small>({tag})</small></label>{control}</div>'
    )


def compose_query(
    initial_query: Node,
    ordered: list[Widget],
    choice_lists: list[list[Node | None | str]],
    combo: tuple[int, ...],
) -> Node:
    """Apply one combination of widget states to the initial query."""
    query = initial_query
    for widget, choices, choice_index in zip(ordered, choice_lists, combo):
        choice = choices[choice_index]
        if choice == _UNCHANGED:
            continue
        query = apply_widget_choice(query, widget, choice)  # type: ignore[arg-type]
    return query


def render_closure_entry(query: Node, database: Database | None) -> dict[str, str]:
    """One closure combination: rendered SQL plus, with a database, the
    executed result (execution failures are surfaced in the page)."""
    entry: dict[str, str] = {"sql": render_sql(query)}
    if database is not None:
        try:
            entry["result"] = render_text(execute(query, database))
        except Exception as exc:  # noqa: BLE001 - surface in the page
            entry["result"] = f"(execution failed: {exc})"
    return entry


def _combo_sort_key(key: str) -> tuple[int, ...]:
    return tuple(int(part) for part in key.split("|"))


def assemble_page(
    title: str,
    columns: int,
    widget_blocks: list[str],
    closure: dict[str, dict[str, str]],
    widget_ids: list[str],
) -> str:
    """Fill the page template.  The closure is emitted in canonical
    (numeric combination) order — the enumeration order of
    :func:`compile_html` — so a closure reassembled from patches renders
    byte-identically to a one-shot compile."""
    ordered_closure = {key: closure[key] for key in sorted(closure, key=_combo_sort_key)}
    return _PAGE.format(
        title=html_escape.escape(title),
        columns=columns,
        widgets="\n".join(widget_blocks),
        closure_json=json.dumps(ordered_closure),
        widget_ids_json=json.dumps(widget_ids),
    )


def compile_html(
    interface: Interface,
    title: str = "Precision Interface",
    database: Database | None = None,
    limit: int = 2048,
    columns: int = 2,
    layout: LayoutPlan | None = None,
) -> str:
    """Compile an interface into a self-contained HTML application.

    Args:
        interface: the generated interface (or a
            :class:`~repro.api.result.GenerationResult`, which is unwrapped).
        title: page title.
        database: optional in-memory database; when given, every closure
            query is executed and its rendered result embedded.
        limit: cap on pre-evaluated widget-state combinations.
        columns: grid columns.
        layout: optional custom layout (defaults to :func:`grid_layout`).

    Returns:
        The HTML document as a string.

    Raises:
        CompileError: when the interface has no widgets.
    """
    interface = as_interface(interface)
    if not interface.widgets:
        raise CompileError("cannot compile an interface with no widgets")
    plan = layout or grid_layout(interface, columns=columns)
    ordered = [cell.widget for cell in plan.cells]

    choice_lists = [build_choice_list(widget) for widget in ordered]

    closure: dict[str, dict[str, str]] = {}
    for combo in product(*(range(len(c)) for c in choice_lists)):
        if len(closure) >= limit:
            break
        query = compose_query(interface.initial_query, ordered, choice_lists, combo)
        closure["|".join(str(i) for i in combo)] = render_closure_entry(query, database)

    widget_blocks = []
    widget_ids = []
    for index, (cell, choices) in enumerate(zip(plan.cells, choice_lists)):
        widget_id = f"w{index}"
        widget_ids.append(widget_id)
        kind, body = render_control_body(cell.widget, choices)
        widget_blocks.append(
            render_widget_block(
                widget_id, cell.label, cell.widget.widget_type.name, kind, body
            )
        )

    return assemble_page(title, plan.columns, widget_blocks, closure, widget_ids)
