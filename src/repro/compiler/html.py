"""Interface → standalone HTML+JavaScript web application (Section 5.3).

"We then compile the interface into a web application that executes an
internal query q by running the provided exec() function, and renders the
results using the user provided render() method."

Offline we have no query server, so the compiler *pre-evaluates* the
interface closure: every combination of widget states (sliders sampled at
their initialising values) is rendered to SQL — and, when a
:class:`~repro.compiler.runtime.Database` is supplied, executed — and the
results are embedded in the page.  The generated file is fully
self-contained: interacting with a widget looks up the composed query and
updates the SQL view and the result table, exactly the interaction loop of
Figure 2b.
"""

from __future__ import annotations

import html as html_escape
import json
from itertools import product

from repro.compiler.layout import LayoutPlan, grid_layout
from repro.compiler.runtime import Database, execute, render_text
from repro.core.closure import apply_widget_choice
from repro.core.interface import Interface, as_interface
from repro.errors import CompileError
from repro.sqlparser.astnodes import Node
from repro.sqlparser.render import render_sql

__all__ = ["compile_html"]

_UNCHANGED = "(unchanged)"
_ABSENT = "(none)"

_PAGE = """<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 2em; background: #fafafa; }}
h1 {{ font-size: 1.3em; }}
.grid {{ display: grid; grid-template-columns: repeat({columns}, minmax(220px, 1fr));
        gap: 1em; max-width: 60em; }}
.widget {{ background: white; border: 1px solid #ddd; border-radius: 6px;
          padding: 0.8em; }}
.widget label {{ display: block; font-weight: bold; margin-bottom: 0.4em;
               font-size: 0.9em; }}
#sql {{ font-family: monospace; background: #272822; color: #f8f8f2;
       padding: 1em; border-radius: 6px; max-width: 60em; margin-top: 1em;
       white-space: pre-wrap; }}
#result {{ font-family: monospace; white-space: pre; background: white;
          border: 1px solid #ddd; padding: 1em; border-radius: 6px;
          max-width: 60em; margin-top: 1em; overflow-x: auto; }}
.miss {{ color: #b00; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div class="grid">
{widgets}
</div>
<div id="sql"></div>
<div id="result"></div>
<script>
const CLOSURE = {closure_json};
const WIDGET_IDS = {widget_ids_json};
function currentKey() {{
  return WIDGET_IDS.map(id => {{
    const el = document.getElementById(id);
    if (el.type === "checkbox") return el.checked ? "1" : "0";
    return el.value;
  }}).join("|");
}}
function refresh() {{
  const entry = CLOSURE[currentKey()];
  const sqlDiv = document.getElementById("sql");
  const resultDiv = document.getElementById("result");
  if (!entry) {{
    sqlDiv.innerHTML = '<span class="miss">-- combination not pre-evaluated --</span>';
    resultDiv.textContent = "";
    return;
  }}
  sqlDiv.textContent = entry.sql;
  resultDiv.textContent = entry.result || "(no result pre-computed)";
}}
for (const id of WIDGET_IDS) {{
  document.getElementById(id).addEventListener("input", refresh);
  document.getElementById(id).addEventListener("change", refresh);
}}
refresh();
</script>
</body>
</html>
"""


def _option_label(entry: Node | None) -> str:
    if entry is None:
        return _ABSENT
    return render_sql(entry) if entry.node_type in ("SelectStmt", "SetOpStmt") else _render_fragment(entry)


def _render_fragment(entry: Node) -> str:
    """Best-effort SQL text for a subtree (fall back to the node label)."""
    from repro.sqlparser.render import _Renderer  # local: shares expr logic

    renderer = _Renderer()
    try:
        if entry.node_type in ("SelectStmt", "SetOpStmt"):
            return renderer.statement(entry)
        if entry.node_type == "Top":
            return f"TOP {renderer.expr(entry.children[0])}"
        if entry.node_type == "ProjClause":
            return renderer._proj(entry)
        if entry.node_type in ("TableRef", "FuncTableRef", "SubqueryRef", "JoinRef"):
            return renderer._from_item(entry)
        if entry.node_type == "GroupClause":
            return renderer.expr(entry.children[0])
        return renderer.expr(entry)
    except CompileError:
        return entry.label()


def compile_html(
    interface: Interface,
    title: str = "Precision Interface",
    database: Database | None = None,
    limit: int = 2048,
    columns: int = 2,
    layout: LayoutPlan | None = None,
) -> str:
    """Compile an interface into a self-contained HTML application.

    Args:
        interface: the generated interface (or a
            :class:`~repro.api.result.GenerationResult`, which is unwrapped).
        title: page title.
        database: optional in-memory database; when given, every closure
            query is executed and its rendered result embedded.
        limit: cap on pre-evaluated widget-state combinations.
        columns: grid columns.
        layout: optional custom layout (defaults to :func:`grid_layout`).

    Returns:
        The HTML document as a string.

    Raises:
        CompileError: when the interface has no widgets.
    """
    interface = as_interface(interface)
    if not interface.widgets:
        raise CompileError("cannot compile an interface with no widgets")
    plan = layout or grid_layout(interface, columns=columns)
    ordered = [cell.widget for cell in plan.cells]

    # per-widget choice lists: index 0 is always "(unchanged)"
    choice_lists: list[list[Node | None | str]] = []
    for widget in ordered:
        choices: list[Node | None | str] = [_UNCHANGED]
        entries = list(widget.domain.entries())
        if widget.widget_type.extrapolates and len(entries) > 5:
            entries = entries[:5]
        choices.extend(entries)
        choice_lists.append(choices)

    closure: dict[str, dict[str, str]] = {}
    for combo in product(*(range(len(c)) for c in choice_lists)):
        if len(closure) >= limit:
            break
        query = interface.initial_query
        for widget, choices, choice_index in zip(ordered, choice_lists, combo):
            choice = choices[choice_index]
            if choice == _UNCHANGED:
                continue
            query = apply_widget_choice(query, widget, choice)  # type: ignore[arg-type]
        sql = render_sql(query)
        entry: dict[str, str] = {"sql": sql}
        if database is not None:
            try:
                entry["result"] = render_text(execute(query, database))
            except Exception as exc:  # noqa: BLE001 - surface in the page
                entry["result"] = f"(execution failed: {exc})"
        closure["|".join(str(i) for i in combo)] = entry

    widget_blocks = []
    widget_ids = []
    for index, (cell, choices) in enumerate(zip(plan.cells, choice_lists)):
        widget_id = f"w{index}"
        widget_ids.append(widget_id)
        label = html_escape.escape(cell.label)
        tag = cell.widget.widget_type.name
        if tag == "toggle_button" and len(choices) == 3 and None in choices:
            # presence toggle: checkbox semantics over {unchanged, on}
            pass
        options = "".join(
            f'<option value="{i}">{html_escape.escape(_option_label(c) if not isinstance(c, str) else c)}</option>'
            for i, c in enumerate(choices)
        )
        control = f'<select id="{widget_id}">{options}</select>'
        widget_blocks.append(
            f'<div class="widget"><label>{label} '
            f'<small>({tag})</small></label>{control}</div>'
        )

    return _PAGE.format(
        title=html_escape.escape(title),
        columns=plan.columns,
        widgets="\n".join(widget_blocks),
        closure_json=json.dumps(closure),
        widget_ids_json=json.dumps(widget_ids),
    )
