"""In-memory ``exec()`` / ``render()`` runtime (Section 3.3).

The paper assumes two user-provided functions: ``exec()`` executes a query
AST, ``render()`` visualises the result.  This module provides working
defaults: a tiny columnar table store and a SQL evaluator covering the
query surface our generated interfaces produce — single-table SELECT with
projections, scalar arithmetic, CASE/CAST/FLOOR, WHERE (AND/OR/NOT,
comparisons, BETWEEN, IN, LIKE, IS NULL), GROUP BY with the standard
aggregates, HAVING, ORDER BY, LIMIT/TOP and DISTINCT.

It is intentionally not a full DBMS: FROM-clause subqueries are evaluated
recursively, but joins and correlated subqueries raise
:class:`~repro.errors.CompileError` — interfaces that need them should be
wired to a real engine through the same two callables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import CompileError, SchemaError
from repro.sqlparser.astnodes import Node

__all__ = ["Table", "Database", "execute", "render_text"]

_AGGREGATES = {"count", "sum", "avg", "min", "max"}


@dataclass
class Table:
    """A tiny in-memory table: named columns over row tuples."""

    name: str
    columns: list[str]
    rows: list[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(set(c.lower() for c in self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate columns in table {self.name}")

    def column_index(self, name: str) -> int:
        """Case-insensitive column lookup (qualifiers stripped).

        Raises:
            SchemaError: for an unknown column.
        """
        bare = name.rsplit(".", 1)[-1].lower()
        for index, column in enumerate(self.columns):
            if column.lower() == bare:
                return index
        raise SchemaError(f"no column {name} in table {self.name}")

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class Database:
    """A named collection of tables."""

    tables: dict[str, Table] = field(default_factory=dict)

    def add(self, table: Table) -> None:
        self.tables[table.name.lower()] = table

    def get(self, name: str) -> Table:
        key = name.lower()
        if key not in self.tables:
            raise SchemaError(f"unknown table {name}")
        return self.tables[key]


# ----------------------------------------------------------------------
# scalar expression evaluation
# ----------------------------------------------------------------------
def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with % and _ wildcards."""
    import re

    regex = "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$"
    return re.match(regex, value, flags=re.IGNORECASE) is not None


def _scalar(node: Node, table: Table, row: tuple):
    kind = node.node_type
    if kind == "NumExpr":
        return node.attributes["value"]
    if kind == "HexExpr":
        return node.attributes["value"]
    if kind == "StrExpr":
        return node.attributes["value"]
    if kind == "NullExpr":
        return None
    if kind == "BoolExpr":
        return node.attributes["value"] == "TRUE"
    if kind == "ColExpr":
        return row[table.column_index(str(node.attributes["name"]))]
    if kind == "BiExpr":
        return _binary(node, table, row)
    if kind == "UnaryExpr":
        value = _scalar(node.children[0], table, row)
        return None if value is None else -value
    if kind == "AndExpr":
        return all(_truthy(_scalar(c, table, row)) for c in node.children)
    if kind == "OrExpr":
        return any(_truthy(_scalar(c, table, row)) for c in node.children)
    if kind == "NotExpr":
        return not _truthy(_scalar(node.children[0], table, row))
    if kind == "BetweenExpr":
        value = _scalar(node.children[0], table, row)
        low = _scalar(node.children[1], table, row)
        high = _scalar(node.children[2], table, row)
        if value is None:
            return False
        return low <= value <= high
    if kind == "InExpr":
        value = _scalar(node.children[0], table, row)
        rhs = node.children[1]
        if rhs.node_type != "InList":
            raise CompileError("IN over subqueries is not supported by the toy runtime")
        return any(value == _scalar(c, table, row) for c in rhs.children)
    if kind == "IsNullExpr":
        value = _scalar(node.children[0], table, row)
        is_null = value is None
        return not is_null if node.attributes.get("negated") else is_null
    if kind == "CaseExpr":
        return _case(node, table, row)
    if kind == "CastExpr":
        value = _scalar(node.children[0], table, row)
        if len(node.children) > 1:
            target = str(node.children[1].attributes["name"]).lower()
            if value is None:
                return None
            if target.startswith(("int", "bigint", "smallint")):
                return int(float(value))
            if target.startswith(("float", "real", "double", "decimal", "numeric")):
                return float(value)
            return str(value)
        return value
    if kind == "FuncExpr":
        return _scalar_function(node, table, row)
    raise CompileError(f"cannot evaluate expression {kind}")


def _truthy(value) -> bool:
    return bool(value)


def _binary(node: Node, table: Table, row: tuple):
    op = str(node.attributes["op"])
    left = _scalar(node.children[0], table, row)
    right = _scalar(node.children[1], table, row)
    if op == "LIKE":
        if left is None or right is None:
            return False
        return _like_match(str(left), str(right))
    if left is None or right is None:
        return None if op in "+-*/%" else False
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right if right else None
    if op == "%":
        return left % right if right else None
    if op == "||":
        return str(left) + str(right)
    raise CompileError(f"unknown operator {op}")


def _case(node: Node, table: Table, row: tuple):
    operand = None
    has_operand = False
    for child in node.children:
        if child.node_type == "CaseInput":
            operand = _scalar(child.children[0], table, row)
            has_operand = True
    for child in node.children:
        if child.node_type != "WhenClause":
            continue
        condition = _scalar(child.children[0], table, row)
        matched = (condition == operand) if has_operand else _truthy(condition)
        if matched:
            return _scalar(child.children[1], table, row)
    for child in node.children:
        if child.node_type == "ElseClause":
            return _scalar(child.children[0], table, row)
    return None


def _scalar_function(node: Node, table: Table, row: tuple):
    name = str(node.children[0].attributes["name"]).lower()
    args = [_scalar(c, table, row) for c in node.children[1:]]
    if name == "floor":
        return math.floor(args[0]) if args[0] is not None else None
    if name in ("ceil", "ceiling"):
        return math.ceil(args[0]) if args[0] is not None else None
    if name == "abs":
        return abs(args[0]) if args[0] is not None else None
    if name == "round":
        if args[0] is None:
            return None
        return round(args[0], int(args[1]) if len(args) > 1 else 0)
    if name == "upper":
        return str(args[0]).upper() if args[0] is not None else None
    if name == "lower":
        return str(args[0]).lower() if args[0] is not None else None
    raise CompileError(f"unknown scalar function {name}")


# ----------------------------------------------------------------------
# aggregate detection & evaluation
# ----------------------------------------------------------------------
def _is_aggregate(node: Node) -> bool:
    if node.node_type == "FuncExpr":
        name = str(node.children[0].attributes["name"]).lower()
        if name in _AGGREGATES:
            return True
    return any(_is_aggregate(c) for c in node.children)


def _aggregate(node: Node, table: Table, rows: list[tuple]):
    """Evaluate an expression containing aggregates over a row group."""
    if node.node_type == "FuncExpr":
        name = str(node.children[0].attributes["name"]).lower()
        if name in _AGGREGATES:
            args = [c for c in node.children[1:] if c.node_type != "Distinct"]
            distinct = any(c.node_type == "Distinct" for c in node.children[1:])
            if name == "count" and (not args or args[0].node_type == "StarExpr"):
                return len(rows)
            values = [_scalar(args[0], table, row) for row in rows]
            values = [v for v in values if v is not None]
            if distinct:
                values = list(dict.fromkeys(values))
            if name == "count":
                return len(values)
            if not values:
                return None
            if name == "sum":
                return sum(values)
            if name == "avg":
                return sum(values) / len(values)
            if name == "min":
                return min(values)
            return max(values)
    if not node.children:
        if rows:
            return _scalar(node, table, rows[0])
        return None
    evaluated = [_aggregate(c, table, rows) for c in node.children]
    # rebuild a constant-expression node and evaluate it on a dummy row
    substituted = Node(
        node.node_type,
        node.attributes,
        [_constant(v, c) for v, c in zip(evaluated, node.children)],
    )
    return _scalar(substituted, table, ())


def _constant(value, original: Node) -> Node:
    if original.node_type == "FuncName":
        return original
    if value is None:
        return Node("NullExpr")
    if isinstance(value, bool):
        return Node("BoolExpr", {"value": "TRUE" if value else "FALSE"})
    if isinstance(value, (int, float)):
        return Node("NumExpr", {"value": value})
    return Node("StrExpr", {"value": str(value)})


# ----------------------------------------------------------------------
# SELECT evaluation
# ----------------------------------------------------------------------
def execute(query: Node, database: Database) -> Table:
    """Execute a SELECT AST against the database.

    Raises:
        CompileError: for constructs outside the runtime's subset.
        SchemaError: for unknown tables/columns.
    """
    if query.node_type == "SetOpStmt":
        raise CompileError("set operations are not supported by the toy runtime")
    if query.node_type != "SelectStmt":
        raise CompileError(f"cannot execute {query.node_type}")

    clauses = {c.node_type: c for c in query.children}
    source = _resolve_from(clauses.get("From"), database)

    rows = source.rows
    where = clauses.get("Where")
    if where is not None:
        rows = [r for r in rows if _truthy(_scalar(where.children[0], source, r))]

    project = clauses["Project"]
    proj_exprs = [c.children[0] for c in project.children]
    labels = [
        (
            str(c.children[1].attributes["name"])
            if len(c.children) > 1 and c.children[1].node_type == "AliasName"
            else _label(c.children[0])
        )
        for c in project.children
    ]

    group_by = clauses.get("GroupBy")
    has_aggregates = any(_is_aggregate(e) for e in proj_exprs)
    having = clauses.get("Having")

    if group_by is not None or has_aggregates or having is not None:
        out_rows = _grouped(
            rows, source, proj_exprs, group_by, having
        )
    else:
        out_rows = [
            tuple(_project_star(e, source, r) for e in proj_exprs)
            for r in rows
        ]
        out_rows = [
            tuple(v for cell in row for v in (cell if isinstance(cell, _Star) else (cell,)))
            for row in out_rows
        ]
        labels = _expand_star_labels(proj_exprs, labels, source)

    order_by = clauses.get("OrderBy")
    if order_by is not None:
        out_rows = _ordered(out_rows, order_by, proj_exprs, labels, source)

    if "Distinct" in clauses:
        out_rows = list(dict.fromkeys(out_rows))

    limit = None
    if "Top" in clauses:
        limit = int(clauses["Top"].children[0].attributes["value"])
    elif "Limit" in clauses:
        limit = int(clauses["Limit"].children[0].attributes["value"])
    if limit is not None:
        out_rows = out_rows[:limit]

    return Table(name="result", columns=labels, rows=out_rows)


class _Star(tuple):
    """Marker wrapper for a star-expanded row segment."""


def _project_star(expr: Node, table: Table, row: tuple):
    if expr.node_type == "StarExpr":
        return _Star(row)
    return _scalar(expr, table, row)


def _expand_star_labels(
    proj_exprs: list[Node], labels: list[str], table: Table
) -> list[str]:
    out: list[str] = []
    for expr, label in zip(proj_exprs, labels):
        if expr.node_type == "StarExpr":
            out.extend(table.columns)
        else:
            out.append(label)
    return out


def _resolve_from(from_clause: Node | None, database: Database) -> Table:
    if from_clause is None:
        return Table(name="dual", columns=["dummy"], rows=[(0,)])
    if len(from_clause.children) != 1:
        raise CompileError("joins are not supported by the toy runtime")
    item = from_clause.children[0]
    if item.node_type == "TableRef":
        return database.get(str(item.attributes["name"]))
    if item.node_type == "SubqueryRef":
        return execute(item.children[0], database)
    raise CompileError(f"unsupported FROM item {item.node_type}")


def _grouped(
    rows: list[tuple],
    table: Table,
    proj_exprs: list[Node],
    group_by: Node | None,
    having: Node | None,
) -> list[tuple]:
    if group_by is not None:
        key_exprs = [c.children[0] for c in group_by.children]
        groups: dict[tuple, list[tuple]] = {}
        for row in rows:
            key = tuple(_scalar(e, table, row) for e in key_exprs)
            groups.setdefault(key, []).append(row)
        buckets = list(groups.values())
    else:
        buckets = [rows]

    out = []
    for bucket in buckets:
        if having is not None:
            if not _truthy(_aggregate(having.children[0], table, bucket)):
                continue
        out.append(tuple(_aggregate(e, table, bucket) for e in proj_exprs))
    return out


def _ordered(
    rows: list[tuple],
    order_by: Node,
    proj_exprs: list[Node],
    labels: list[str],
    table: Table,
) -> list[tuple]:
    specs = []
    for clause in order_by.children:
        expr = clause.children[0]
        descending = (
            len(clause.children) > 1
            and clause.children[1].attributes.get("value") == "DESC"
        )
        # order by output column when the expression matches a projection
        position = None
        for index, proj in enumerate(proj_exprs):
            if proj.equals(expr):
                position = index
                break
        if position is None and expr.node_type == "ColExpr":
            name = str(expr.attributes["name"]).rsplit(".", 1)[-1].lower()
            for index, label in enumerate(labels):
                if label.lower() == name:
                    position = index
                    break
        specs.append((position, expr, descending))

    def key(row: tuple):
        parts = []
        for position, expr, descending in specs:
            value = row[position] if position is not None else None
            parts.append(_SortKey(value, descending))
        return tuple(parts)

    return sorted(rows, key=key)


class _SortKey:
    """None-safe, direction-aware comparison wrapper."""

    __slots__ = ("value", "descending")

    def __init__(self, value, descending: bool):
        self.value = value
        self.descending = descending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None:
            return not self.descending
        if b is None:
            return self.descending
        if self.descending:
            return b < a
        return a < b

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _label(expr: Node) -> str:
    if expr.node_type == "ColExpr":
        return str(expr.attributes["name"]).rsplit(".", 1)[-1]
    if expr.node_type == "FuncExpr":
        return str(expr.children[0].attributes["name"]).lower()
    return "expr"


def render_text(table: Table, max_rows: int = 20) -> str:
    """The default ``render()``: an aligned text table."""
    header = list(table.columns)
    body = [
        ["" if v is None else str(v) for v in row] for row in table.rows[:max_rows]
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if len(table.rows) > max_rows:
        lines.append(f"... ({len(table.rows)} rows total)")
    return "\n".join(lines)
