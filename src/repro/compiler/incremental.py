"""Incremental interface compilation (dirty-driven re-rendering).

``compile_html`` is one-shot: every call re-renders all widget blocks and
re-enumerates the full closure product, even when an append moved a single
diff partition.  This module maintains the compiled artifact under appends
instead — the incremental-view-maintenance shape of Berkholz et al.
("Answering FO+MOD queries under updates"): pay for the dirty part only.

Three layers make that correct *and* byte-identical to a full recompile:

* **Per-widget artifacts.**  Every widget's expensive rendering — its
  choice list and its control body (the ``<option>`` labels, or a
  presence toggle's checkbox) — is cached in a
  :class:`WidgetArtifact`, keyed by the widget's path and guarded by the
  merge layer's dirtiness signal.  A widget's domain is a deterministic
  function of its picked type and its diff list ``D`` — the merge
  outcome the :class:`~repro.core.mapper.PartitionIndex` maintains — so
  an unchanged ``(type, D)`` identity proves the cached rendering still
  exact even when merging restructured *neighbouring* partitions (a
  per-path revision counter alone is not enough: merging can move a diff
  between partitions without updating the losing partition, see
  :meth:`IncrementalCompiler._artifact_for`).  Clean widgets are also
  the *same objects* across appends (the merge memo), so identity is
  accepted as an equivalent proof.

* **Closure slices.**  The closure table is maintained as a delta.  Each
  combination's entry is cached under its *selection signature* — the
  ``(widget fingerprint, choice index)`` pairs of its non-default
  choices.  Fingerprints are content hashes (sha256 over the picked type,
  path, rendered domain labels, and the initialising diff-table indices
  — never the process-salted ``Node.fingerprint``), so a combination
  touching only clean widgets replays its cached slice byte-identically;
  only combinations involving a dirty widget are re-rendered and, with a
  database attached, re-executed.  Before executing, the session's
  :class:`~repro.core.closure.ClosureCache` proofs are consulted: a
  combination whose cover proof is already recorded replays the execution
  memo, and newly rendered combinations record their (by-construction
  sound) proof, warming ``session.expresses()``.

* **Patches.**  :meth:`IncrementalCompiler.compile_patch` emits the
  structural difference between consecutive pages — replaced widget
  blocks plus a closure delta — and :func:`apply_patch` folds a patch
  into a page state such that :func:`page_html` over the patched state is
  byte-identical to a full ``compile_html`` of the new interface.

The page state dict (:meth:`CompiledPage.to_state`) is also the payload
persisted in the :class:`~repro.cache.store.GraphStore`'s fifth table;
:meth:`IncrementalCompiler.import_state` warms the slice cache from a
persisted page, so a fresh process replays combinations whose widgets
still fingerprint the same.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from itertools import product
from typing import Any

from repro.compiler.html import (
    _option_label,
    assemble_page,
    build_choice_list,
    compose_query,
    render_closure_entry,
    render_control_body,
    render_widget_block,
)
from repro.compiler.layout import grid_layout
from repro.compiler.runtime import Database
from repro.core.closure import ClosureCache
from repro.core.interface import Interface, as_interface
from repro.core.mapper import PartitionIndex
from repro.errors import CompileError
from repro.paths import Path
from repro.sqlparser.astnodes import Node
from repro.sqlparser.render import render_sql
from repro.widgets.base import Widget

__all__ = [
    "IncrementalCompiler",
    "CompiledPage",
    "CompileStats",
    "WidgetArtifact",
    "widget_fingerprint",
    "make_patch",
    "apply_patch",
    "page_html",
]

#: Version tag carried by page states and patches; a consumer must reject
#: a payload of a different version.
PATCH_VERSION = 1


def widget_fingerprint(widget: Widget) -> str:
    """Process-stable content hash of a widget.

    Derived from the picked widget type, the path, the rendered domain
    entry labels (deterministic SQL text), and the widget's initialising
    diff-table indices — everything the compiled control depends on.
    Deliberately *not* built from ``Node.fingerprint``/``skeleton``,
    which are process-salted and must never reach a persisted payload
    (lint rule RL006).
    """
    digest = hashlib.sha256()
    digest.update(widget.widget_type.name.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(widget.path).encode("utf-8"))
    digest.update(b"\x00")
    digest.update(b"1" if widget.domain.includes_none else b"0")
    for entry in widget.domain.entries():
        digest.update(b"\x1f")
        digest.update(_option_label(entry).encode("utf-8"))
    for diff in sorted(widget.D, key=lambda d: (d.q1, d.q2)):
        digest.update(b"\x1e")
        digest.update(f"{diff.q1},{diff.q2}".encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass
class WidgetArtifact:
    """The cached compilation of one widget.

    ``(kind, body)`` is the expensive position-independent rendering (see
    :func:`~repro.compiler.html.render_control_body`); the block itself is
    reassembled per page because the element id is positional.
    ``identity`` is the cheap reuse proof — the picked type plus the
    diff-list coordinates the domain was derived from — and ``revision``
    records the partition revision observed at render time (diagnostics;
    reuse is decided by ``identity``).
    """

    fingerprint: str
    identity: tuple[str, tuple[tuple[int, int, str, str], ...]]
    revision: int | None
    widget: Widget
    choices: list[Node | None | str]
    kind: str
    body: str


@dataclass
class CompileStats:
    """Work counters across a compiler's lifetime (monotonic)."""

    widgets_rendered: int = 0
    widgets_reused: int = 0
    combos_rendered: int = 0
    combos_replayed: int = 0
    executions: int = 0
    executions_replayed: int = 0
    pages_reused: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "widgets_rendered": self.widgets_rendered,
            "widgets_reused": self.widgets_reused,
            "combos_rendered": self.combos_rendered,
            "combos_replayed": self.combos_replayed,
            "executions": self.executions,
            "executions_replayed": self.executions_replayed,
            "pages_reused": self.pages_reused,
        }


@dataclass
class CompiledPage:
    """One compiled interface page, decomposed for patching.

    ``blocks`` maps widget element ids to their HTML blocks in grid
    order; ``closure`` maps combination keys (``"i|j|k"``) to closure
    entries; ``widget_fingerprints`` records the content hash of each
    widget in the same order as ``widget_ids`` (they key the persisted
    slice cache — see :meth:`IncrementalCompiler.import_state`).
    """

    fingerprint: str
    title: str
    columns: int
    initial_sql: str
    widget_ids: list[str]
    widget_fingerprints: list[str]
    blocks: dict[str, str]
    closure: dict[str, dict[str, str]]

    def html(self) -> str:
        """The full page — byte-identical to ``compile_html``."""
        return page_html(self.to_state())

    def to_state(self) -> dict[str, Any]:
        """The page as a plain-JSON state dict (the persisted payload and
        the base :func:`apply_patch` operates on)."""
        return {
            "version": PATCH_VERSION,
            "fingerprint": self.fingerprint,
            "title": self.title,
            "columns": self.columns,
            "initial_sql": self.initial_sql,
            "widget_ids": list(self.widget_ids),
            "widget_fingerprints": list(self.widget_fingerprints),
            "blocks": dict(self.blocks),
            "closure": {key: dict(entry) for key, entry in self.closure.items()},
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "CompiledPage":
        if state.get("version") != PATCH_VERSION:
            raise CompileError(
                f"unsupported compiled-page version {state.get('version')!r} "
                f"(supported: {PATCH_VERSION})"
            )
        return cls(
            fingerprint=state["fingerprint"],
            title=state["title"],
            columns=int(state["columns"]),
            initial_sql=state["initial_sql"],
            widget_ids=list(state["widget_ids"]),
            widget_fingerprints=list(state["widget_fingerprints"]),
            blocks=dict(state["blocks"]),
            closure={k: dict(v) for k, v in state["closure"].items()},
        )


def page_html(state: dict[str, Any]) -> str:
    """Render a page state dict to the full HTML document.

    Pure over the state: a state reached through any patch sequence
    renders byte-identically to the state compiled in one shot.
    """
    blocks = state["blocks"]
    return assemble_page(
        state["title"],
        int(state["columns"]),
        [blocks[widget_id] for widget_id in state["widget_ids"]],
        state["closure"],
        list(state["widget_ids"]),
    )


def make_patch(before: CompiledPage | None, after: CompiledPage) -> dict[str, Any]:
    """The structural difference between two consecutive pages.

    A ``kind="page"`` patch carries the full state (first compile, or a
    title/layout change); a ``kind="patch"`` carries only replaced widget
    blocks and the closure delta.
    """
    if (
        before is None
        or before.title != after.title
        or before.columns != after.columns
    ):
        return {
            "version": PATCH_VERSION,
            "kind": "page",
            "fingerprint": after.fingerprint,
            "base": None,
            "page": after.to_state(),
        }
    blocks = {
        widget_id: block
        for widget_id, block in after.blocks.items()
        if before.blocks.get(widget_id) != block
    }
    removed = [wid for wid in before.widget_ids if wid not in after.blocks]
    closure_set = {
        key: entry
        for key, entry in after.closure.items()
        if before.closure.get(key) != entry
    }
    closure_del = [key for key in before.closure if key not in after.closure]
    return {
        "version": PATCH_VERSION,
        "kind": "patch",
        "fingerprint": after.fingerprint,
        "base": before.fingerprint,
        "initial_sql": after.initial_sql,
        "widget_ids": list(after.widget_ids),
        "widget_fingerprints": list(after.widget_fingerprints),
        "blocks": blocks,
        "removed": removed,
        "closure_set": closure_set,
        "closure_del": closure_del,
    }


def apply_patch(state: dict[str, Any] | None, patch: dict[str, Any]) -> dict[str, Any]:
    """Fold one patch into a page state, returning the new state.

    Raises:
        CompileError: on a version mismatch, a ``kind="patch"`` with no
            base state, or a base fingerprint mismatch (the subscriber
            missed an event and must request a full page).
    """
    if patch.get("version") != PATCH_VERSION:
        raise CompileError(
            f"unsupported patch version {patch.get('version')!r} "
            f"(supported: {PATCH_VERSION})"
        )
    if patch["kind"] == "page":
        return {k: v for k, v in patch["page"].items()}
    if state is None:
        raise CompileError("cannot apply an incremental patch without a base page")
    if state.get("fingerprint") != patch.get("base"):
        raise CompileError(
            "patch base mismatch: have "
            f"{state.get('fingerprint')!r}, patch expects {patch.get('base')!r}"
        )
    blocks = dict(state["blocks"])
    for widget_id in patch["removed"]:
        blocks.pop(widget_id, None)
    blocks.update(patch["blocks"])
    closure = dict(state["closure"])
    for key in patch["closure_del"]:
        closure.pop(key, None)
    closure.update(patch["closure_set"])
    return {
        "version": PATCH_VERSION,
        "fingerprint": patch["fingerprint"],
        "title": state["title"],
        "columns": state["columns"],
        "initial_sql": patch["initial_sql"],
        "widget_ids": list(patch["widget_ids"]),
        "widget_fingerprints": list(patch["widget_fingerprints"]),
        "blocks": blocks,
        "closure": closure,
    }


class IncrementalCompiler:
    """Maintain a compiled interface page under session appends.

    Args:
        title: page title (part of the page fingerprint).
        database: optional in-memory database; closure entries embed
            executed results, with re-execution memoised per SQL string.
        limit: cap on pre-evaluated widget-state combinations.
        columns: grid columns.

    Usage::

        compiler = IncrementalCompiler()
        page = compiler.compile(session.interface, index=session.index)
        page.html()                     # == compile_html(session.interface)
        session.append_sql(more)
        patch = compiler.compile_patch(session.interface, index=session.index)
    """

    def __init__(
        self,
        title: str = "Precision Interface",
        database: Database | None = None,
        limit: int = 2048,
        columns: int = 2,
    ) -> None:
        self.title = title
        self.database = database
        self.limit = limit
        self.columns = columns
        self.stats = CompileStats()
        self._artifacts: dict[str, WidgetArtifact] = {}
        self._slices: dict[tuple[tuple[str, int], ...], dict[str, str]] = {}
        self._results: dict[str, str] = {}
        self._initial_sql: str | None = None
        self._page: CompiledPage | None = None

    @property
    def page(self) -> CompiledPage | None:
        """The most recently compiled page, if any."""
        return self._page

    # ------------------------------------------------------------------
    # persistence bridge
    # ------------------------------------------------------------------
    def import_state(self, state: dict[str, Any]) -> int:
        """Warm the closure-slice cache from a persisted page state.

        Artifact and revision caches are process-local (revisions are
        only comparable within one :class:`PartitionIndex` lifetime), but
        selection signatures are content-addressed, so a persisted page's
        closure entries replay in this process for every combination
        whose widgets still fingerprint the same.  Returns the number of
        slices adopted.
        """
        page = CompiledPage.from_state(state)
        if self._initial_sql is None:
            # arm the slice cache for the persisted page's q0 — the next
            # compile keeps the adopted slices iff its q0 matches
            self._initial_sql = page.initial_sql
        elif page.initial_sql != self._initial_sql:
            # slices composed against a different initial query can
            # never replay soundly here
            return 0
        fingerprints = page.widget_fingerprints
        adopted = 0
        for key, entry in page.closure.items():
            indices = [int(part) for part in key.split("|")]
            if len(indices) != len(fingerprints):
                continue
            signature = tuple(
                (fingerprints[pos], idx)
                for pos, idx in enumerate(indices)
                if idx != 0
            )
            if signature not in self._slices:
                self._slices[signature] = dict(entry)
                adopted += 1
        return adopted

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(
        self,
        interface: Interface,
        index: PartitionIndex | None = None,
        closure_cache: ClosureCache | None = None,
    ) -> CompiledPage:
        """Compile ``interface``, reusing every artifact the dirtiness
        signal proves clean.

        Args:
            interface: the interface (or result) to compile.
            index: the session's partition index; per-path revisions
                gate artifact reuse.  Without one, reuse falls back to
                widget object identity (still exact — the merge memo
                returns identical objects for clean components).
            closure_cache: the session's closure cache; consulted before
                executing a combination and warmed with the rendered
                combinations' cover proofs.

        Raises:
            CompileError: when the interface has no widgets.
        """
        interface = as_interface(interface)
        if not interface.widgets:
            raise CompileError("cannot compile an interface with no widgets")
        plan = grid_layout(interface, columns=self.columns)
        ordered = [cell.widget for cell in plan.cells]

        initial_sql = render_sql(interface.initial_query)
        if initial_sql != self._initial_sql:
            # a different q0 invalidates every cached combination (they
            # were composed against the old initial query)
            self._slices.clear()
            self._initial_sql = initial_sql

        artifacts = [self._artifact_for(widget, index) for widget in ordered]

        fingerprint = self._page_fingerprint(initial_sql, artifacts)
        if self._page is not None and self._page.fingerprint == fingerprint:
            self.stats.pages_reused += 1
            return self._page

        closure = self._closure(interface, ordered, artifacts, closure_cache)

        widget_ids = [f"w{i}" for i in range(len(ordered))]
        blocks: dict[str, str] = {}
        for widget_id, cell, artifact in zip(widget_ids, plan.cells, artifacts):
            blocks[widget_id] = render_widget_block(
                widget_id,
                cell.label,
                artifact.widget.widget_type.name,
                artifact.kind,
                artifact.body,
            )
        self._page = CompiledPage(
            fingerprint=fingerprint,
            title=self.title,
            columns=plan.columns,
            initial_sql=initial_sql,
            widget_ids=widget_ids,
            widget_fingerprints=[a.fingerprint for a in artifacts],
            blocks=blocks,
            closure=closure,
        )
        return self._page

    def compile_patch(
        self,
        interface: Interface,
        index: PartitionIndex | None = None,
        closure_cache: ClosureCache | None = None,
    ) -> dict[str, Any]:
        """Compile and return the structural patch against the previous
        page (a full ``kind="page"`` patch on the first compile; an empty
        delta when nothing changed)."""
        before = self._page
        after = self.compile(interface, index=index, closure_cache=closure_cache)
        return make_patch(before, after)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _identity(
        widget: Widget,
    ) -> tuple[str, tuple[tuple[int, int, str, str], ...]]:
        """The widget's cheap content identity: picked type plus the
        coordinates of every diff its domain was merged from.

        The domain (entries *and* their order) is a deterministic
        function of the picked type and the diff sequence ``D`` —
        Initialize and Merge build it from exactly those records, which
        are immutable once mined.  Comparing coordinates is O(|D|) tuple
        work, no label rendering.
        """
        return (
            widget.widget_type.name,
            tuple(
                (d.q1, d.q2, str(d.path), str(d.source_path)) for d in widget.D
            ),
        )

    def _artifact_for(
        self, widget: Widget, index: PartitionIndex | None
    ) -> WidgetArtifact:
        """The widget's artifact, reused when provably clean.

        Reuse proof, either of: the cached widget *is* this widget
        (identity — the merge memo's clean-component guarantee), or the
        widget's content identity — picked type + diff-list coordinates,
        which determine the domain — is unchanged.  The per-path
        partition revision alone is deliberately *not* trusted: merging
        can move a diff out of a partition without updating the losing
        partition's revision, so an unmoved revision does not prove the
        widget's merged diff list (and hence its domain) unchanged.  The
        revision is still recorded per artifact for diagnostics.
        """
        key = str(widget.path)
        revision = index.rev.get(widget.path, 0) if index is not None else None
        cached = self._artifacts.get(key)
        # object identity first: the merge memo returns the same object
        # for clean components, and the identity tuple of an identical
        # object cannot differ — skip the O(|D|) coordinate walk
        if cached is not None and (
            cached.widget is widget or cached.identity == self._identity(widget)
        ):
            self.stats.widgets_reused += 1
            cached.widget = widget
            if revision is not None:
                cached.revision = revision
            return cached
        identity = self._identity(widget)
        choices = build_choice_list(widget)
        kind, body = render_control_body(widget, choices)
        artifact = WidgetArtifact(
            fingerprint=widget_fingerprint(widget),
            identity=identity,
            revision=revision,
            widget=widget,
            choices=choices,
            kind=kind,
            body=body,
        )
        self._artifacts[key] = artifact
        self.stats.widgets_rendered += 1
        return artifact

    def _page_fingerprint(
        self, initial_sql: str, artifacts: list[WidgetArtifact]
    ) -> str:
        """Content hash of the whole page: widget-set fingerprints in
        grid order plus everything else the output depends on."""
        digest = hashlib.sha256()
        digest.update(self.title.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(f"{self.columns}|{self.limit}".encode("utf-8"))
        digest.update(b"\x00")
        digest.update(b"db" if self.database is not None else b"nodb")
        digest.update(b"\x00")
        digest.update(initial_sql.encode("utf-8"))
        for artifact in artifacts:
            digest.update(b"\x1f")
            digest.update(artifact.fingerprint.encode("utf-8"))
        return digest.hexdigest()[:16]

    def _closure(
        self,
        interface: Interface,
        ordered: list[Widget],
        artifacts: list[WidgetArtifact],
        closure_cache: ClosureCache | None,
    ) -> dict[str, dict[str, str]]:
        """Enumerate the closure in ``compile_html`` order, replaying
        cached slices and re-rendering only dirty combinations.

        ``product`` varies the rightmost position fastest, so within the
        first ``limit`` combinations only a short suffix of positions
        ever leaves index 0.  Enumerating just that suffix (the prefix is
        a constant run of zeros) makes the per-combination key and
        signature work O(suffix), not O(n_widgets) — on a wide page the
        steady-state compile is dominated by exactly this loop.
        """
        choice_lists = [artifact.choices for artifact in artifacts]
        fingerprints = [artifact.fingerprint for artifact in artifacts]
        proven = proof_trees = None
        if closure_cache is not None:
            proven = closure_cache.proven_for(ordered)
            proof_trees = closure_cache.proof_trees_for(ordered)
        closure: dict[str, dict[str, str]] = {}
        lengths = [len(choices) for choices in choice_lists]
        if not all(lengths):
            return closure  # an empty choice list empties the product
        split, cap = len(lengths), 1
        while split > 0 and (cap < self.limit or split == len(lengths)):
            split -= 1
            cap *= lengths[split]
        zero_prefix = (0,) * split
        key_prefix = "0|" * split
        for tail in product(*(range(n) for n in lengths[split:])):
            if len(closure) >= self.limit:
                break
            signature = tuple(
                (fingerprints[split + pos], idx)
                for pos, idx in enumerate(tail)
                if idx != 0
            )
            entry = self._slices.get(signature)
            if entry is None:
                entry = self._render_combo(
                    interface,
                    ordered,
                    choice_lists,
                    zero_prefix + tail,
                    proven,
                    proof_trees,
                )
                self._slices[signature] = entry
                self.stats.combos_rendered += 1
            else:
                self.stats.combos_replayed += 1
            closure[key_prefix + "|".join(map(str, tail))] = entry
        return closure

    def _render_combo(
        self,
        interface: Interface,
        ordered: list[Widget],
        choice_lists: list[list[Node | None | str]],
        combo: tuple[int, ...],
        proven: dict | None,
        proof_trees: dict | None,
    ) -> dict[str, str]:
        """Render (and with a database, execute) one dirty combination.

        The execution memo (SQL string → rendered result) is replayed
        only for combinations whose cover proof is already in the
        session's :class:`ClosureCache`; an unproven combination executes
        and records its proof — sound by construction, since the query
        was produced by applying widget choices to ``q0``.
        """
        query = compose_query(interface.initial_query, ordered, choice_lists, combo)
        if self.database is None:
            return render_closure_entry(query, None)
        proof_key = (
            interface.initial_query.fingerprint,
            query.fingerprint,
            Path.root(),
        )
        known = bool(proven.get(proof_key)) if proven is not None else False
        sql = render_sql(query)
        cached_result = self._results.get(sql)
        if known and cached_result is not None:
            self.stats.executions_replayed += 1
            return {"sql": sql, "result": cached_result}
        entry = render_closure_entry(query, self.database)
        self.stats.executions += 1
        self._results[sql] = entry["result"]
        if proven is not None and not known:
            proven[proof_key] = True
            if proof_trees is not None:
                proof_trees[proof_key] = (interface.initial_query, query)
        return entry
