"""The interaction mapper (Section 5, Algorithms 1–3).

The interface generation problem — pick a minimum-cost widget set whose
closure covers the log — is NP-hard (reduction from vertex cover, §4.5), so
the mapper runs the paper's two-phase graph-contraction heuristic:

* **Initialize** (Algorithm 1): partition the diffs table by path and
  instantiate, per partition, the cheapest widget type whose rule accepts
  the partition's domain (``pickWidget``, Algorithm 2).  This yields an
  interface that expresses every edge, but with redundant widgets.
* **Merge** (Algorithm 3): repeatedly compare an *ancestor* widget with the
  set of its *descendant* widgets (prefix paths), compute the overlapping
  diffs — those whose incident queries are expressed by both sides — and
  remove the overlap from whichever side yields the larger cost reduction.
  Iterate to a fixed point.

For long-lived append-only logs the merge fixed point is also available in
*partition-scoped* form (:func:`merge_widgets_incremental`): widgets are
grouped into **prefix components** — the connected components of the
path-prefix relation over widget paths, which are exactly the units a
merge step can read — and each component runs its own fixed point, memoised
by a content signature over the diff partitions it reads.  An append dirties
only the components incident to its new pairs; clean components replay
their memoised result.  The decomposition is lossless: a merge step only
ever pairs an ancestor with its prefix-descendants, so no candidate merge
crosses a component boundary and the union of per-component fixed points
equals the global fixed point (asserted by the parity suite).
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.paths import Path
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.treediff.diff import Diff
from repro.treediff.paths import IntervalIndex
from repro.widgets.base import Widget, WidgetType
from repro.widgets.domain import WidgetDomain
from repro.widgets.library import default_library

__all__ = [
    "MapperStats",
    "MapCache",
    "PartitionIndex",
    "WindowMemo",
    "pick_widget",
    "initialize",
    "initialize_incremental",
    "initialize_indexed",
    "merge_widgets",
    "merge_widgets_incremental",
    "map_interactions",
]


@dataclass
class MapperStats:
    """Instrumentation for the mapping phase (used by Appendix B benches)."""

    mapping_seconds: float = 0.0
    n_partitions: int = 0
    n_initial_widgets: int = 0
    n_merge_rounds: int = 0
    n_final_widgets: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0
    extra: dict = field(default_factory=dict)


class PartitionIndex:
    """Incrementally maintained path-partitions of a growing diffs table.

    The mapper consumes the diffs table partitioned by path and ordered by
    ``(q1, q2)`` within each partition (the full build's order, which the
    result-equivalence guarantee is defined against).  Re-deriving that
    from the flat table costs ``O(|W|)`` per append — this index instead
    consumes only the table's *new suffix* (the session's diffs table is
    append-only in arrival order) and keeps every partition sorted by
    insertion, so a steady-state append costs ``O(new diffs)``.

    Each partition carries a revision counter, bumped once per update that
    adds diffs to it.  Revisions are what make dirtiness O(1) to test: a
    memo entry recorded at revision ``r`` is valid exactly while the
    partition is still at ``r``.

    The index also owns the partition paths' **interval annotations**
    (:class:`~repro.treediff.paths.IntervalIndex`): every path gets a
    ``(pre_order, post_order, subtree_size)`` triple, so the merge
    layer's ancestor/descendant tests are O(1) containment, subtree
    membership is a contiguous window query, and a subtree's cumulative
    revision (:meth:`window_revision`) is an O(log n) range sum —
    strictly monotone, so equality proves the window clean.
    """

    def __init__(self) -> None:
        self.by_path: dict[Path, list[Diff]] = {}
        self.leaf_by_path: dict[Path, list[Diff]] = {}
        # global (q1, q2) → leaf diffs index, maintained append-only so
        # dirty-component merges never rebuild it; safe to share across
        # components because every consumer filters by ancestor path
        self.leaf_by_pair: dict[tuple[int, int], list[Diff]] = {}
        self.rev: dict[Path, int] = {}
        self.n_consumed = 0
        self.intervals = IntervalIndex()
        # identity spot-check anchors: first and last already-consumed
        # entries (a shrunken table is caught by the length check; a
        # *mutated* one — replaced or reordered prefix — is caught here)
        self._consumed_head: Diff | None = None
        self._consumed_tail: Diff | None = None

    def update(self, diffs: list[Diff]) -> set[Path]:
        """Consume the table's new suffix; returns the paths it touched.

        ``diffs`` must be the same ever-growing arrival-order list on
        every call: previously consumed entries must not change, because
        partitions hold references into them.  Enforced by the
        consumed-count check plus a cheap identity spot-check of the
        consumed prefix's first and last entries — O(1), so it cannot
        catch an interior splice, but it catches the common corruptions
        (a rebuilt, re-sorted, or truncated-and-regrown table).
        """
        if len(diffs) < self.n_consumed:
            raise MappingError(
                "diffs table shrank between updates; the partition index "
                "only supports append-only tables (reset the MapCache to "
                "re-index from scratch)"
            )
        if self.n_consumed and (
            diffs[0] is not self._consumed_head
            or diffs[self.n_consumed - 1] is not self._consumed_tail
        ):
            raise MappingError(
                "already-consumed diffs table entries changed between "
                "updates; the partition index holds references into the "
                "consumed prefix, so the table must be append-only "
                "(reset the MapCache to re-index from scratch)"
            )
        new = diffs[self.n_consumed :]
        self.n_consumed = len(diffs)
        if diffs:
            self._consumed_head = diffs[0]
            self._consumed_tail = diffs[-1]
        touched: set[Path] = set()
        for diff in new:
            partition = self.by_path.setdefault(diff.path, [])
            # insort keeps the (q1, q2) order of a full build; same-pair
            # runs arrive together, so bisect_right preserves their
            # arrival order exactly like a stable sort would
            position = bisect_right(
                partition, (diff.q1, diff.q2), key=lambda d: (d.q1, d.q2)
            )
            partition.insert(position, diff)
            if diff.is_leaf:
                leaves = self.leaf_by_path.setdefault(diff.path, [])
                position = bisect_right(
                    leaves, (diff.q1, diff.q2), key=lambda d: (d.q1, d.q2)
                )
                leaves.insert(position, diff)
                self.leaf_by_pair.setdefault((diff.q1, diff.q2), []).append(
                    diff
                )
            touched.add(diff.path)
        # index new paths first (renumbering rebuilds the Fenwick tree
        # from self.rev), then bump so each touched window's revision sum
        # rises exactly once per update
        self.intervals.extend(touched)
        for path in touched:
            self.rev[path] = self.rev.get(path, 0) + 1
            self.intervals.bump(path, 1)
        return touched

    def window_revision(self, root: Path) -> int:
        """Cumulative revision of every partition under ``root``
        (inclusive) — the clean-window signature; see
        :meth:`repro.treediff.paths.IntervalIndex.window_revision`."""
        return self.intervals.window_revision(root)

    def window_paths(self, root: Path, strict: bool = False) -> list[Path]:
        """Partition paths under ``root`` as a contiguous pre-order
        window (``strict=True`` excludes the root itself)."""
        return self.intervals.window_paths(root, strict=strict)

    def ordered_paths(self) -> list[Path]:
        """Every partition path in pre-order — identical to
        ``sorted(self.by_path)``, maintained incrementally."""
        return self.intervals.ordered_paths()


class WindowMemo:
    """Sub-component merge memo keyed by window revision signatures.

    A dirty component re-runs its Algorithm-3 fixed point, but most of
    its *subtrees* are usually clean — in the skewed (one-hot) workloads
    a production pool sees, one deep path receives every diff while the
    component's other branches never change.  This memo caches the
    outcome of each per-ancestor merge step under a key that can only
    match when the step's inputs are byte-identical:

    ``(ancestor token, descendant token tuple, window revision)``

    where a *token* identifies a widget object (tokens pin their widget,
    so ids cannot be recycled while the memo lives) and the *window
    revision* is the monotone cumulative revision of every partition in
    the ancestor's interval window.  Widgets are rebuilt deterministically
    from their diff lists, so an identical token tuple plus an unchanged
    window sum implies the step reads exactly the same diffs and must
    produce the same outcome — a memo replayed after its window went
    dirty is impossible by construction (the sum strictly increases).
    Replay then skips the step's overlap/cover/pickWidget work entirely.
    """

    def __init__(self, index: PartitionIndex) -> None:
        self.index = index
        #: step outcome memo — key as documented above, value is the
        #: ``_merge_step`` result (``None`` = proven no-op)
        self.steps: dict[tuple, tuple[Widget | None, list[Widget | None], float] | None] = {}
        #: widget object -> token; the widget rides in the value to pin it
        self._tokens: dict[int, tuple[Widget, int]] = {}
        self._next_token = 0
        #: cumulative counters (per-run deltas are reported by
        #: :func:`merge_widgets_incremental` as ``n_windows_reused`` /
        #: ``n_windows_merged``)
        self.n_reused = 0
        self.n_merged = 0

    def token(self, widget: Widget) -> int:
        """The memo token of a widget object (assigning one if new)."""
        entry = self._tokens.get(id(widget))
        if entry is not None:
            return entry[1]
        token = self._next_token
        self._next_token += 1
        self._tokens[id(widget)] = (widget, token)
        return token

    def key(self, ancestor: Widget, descendants: list[Widget]) -> tuple:
        """The staleness-proof memo key for one merge step."""
        return (
            self.token(ancestor),
            tuple(self.token(w) for w in descendants),
            self.index.window_revision(ancestor.path),
        )

    def __len__(self) -> int:
        return len(self.steps)

    def clear(self) -> None:
        """Drop every step outcome and token pin."""
        self.steps.clear()
        self._tokens.clear()


@dataclass
class MapCache:
    """Memo carried by long-lived callers (the incremental session) so the
    mapping phase only re-solves what an append actually touched.

    Attributes:
        index: the partition index over the owning graph's diffs table,
            including the interval annotations of every partition path.
        paths: per-path widget memo for Initialize —
            ``path -> (revision, widget)``; valid while the partition is
            still at that revision.
        merge: per-component merge memo for the partition-scoped fixed
            point — ``component root path -> (signature, merged widgets)``
            where the signature is the monotone window revision of the
            component root's interval window (see
            :func:`merge_widgets_incremental`).
    """

    index: PartitionIndex = field(default_factory=PartitionIndex)
    paths: dict[Path, tuple[int, Widget | None]] = field(default_factory=dict)
    merge: dict[Path, tuple[int, list[Widget]]] = field(default_factory=dict)
    #: pickWidget memo shared by the merge fixed points —
    #: ``(path, diff-identity tuple) -> widget``; sound because diff
    #: objects live exactly as long as the owning graph.  Bounded by
    #: :data:`_PICK_MEMO_CAP` (cleared wholesale when exceeded).
    pick: dict[tuple, Widget | None] = field(default_factory=dict)
    #: per-ancestor merge-step memo for dirty components; lazily bound to
    #: :attr:`index` by :meth:`window_memo`.  Bounded like :attr:`pick`.
    windows: WindowMemo | None = None

    def window_memo(self) -> WindowMemo:
        """The sub-component merge memo, created on first use (and
        re-bound after :meth:`clear` replaced the index)."""
        if self.windows is None or self.windows.index is not self.index:
            self.windows = WindowMemo(self.index)
        return self.windows

    def clear(self) -> None:
        """Drop the index and all memos (forces a full re-index and
        re-map on the next run)."""
        self.index = PartitionIndex()
        self.paths.clear()
        self.merge.clear()
        self.pick.clear()
        self.windows = None


def pick_widget(
    diffs: list[Diff],
    library: list[WidgetType],
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
) -> Widget | None:
    """Algorithm 2: instantiate the lowest-cost widget type for a partition.

    Args:
        diffs: diff records sharing one path (the partition ``W_p``).
        library: candidate widget types ``L``.
        annotations: grammar annotations for typing the domain.

    Returns:
        The cheapest valid widget, or ``None`` for an empty partition.

    Raises:
        MappingError: when no widget type accepts the domain.
    """
    if not diffs:
        return None
    path = diffs[0].path
    entries = []
    for diff in diffs:
        entries.append(diff.t1)
        entries.append(diff.t2)
    domain = WidgetDomain(entries, annotations)
    valid = [wt for wt in library if wt.accepts(domain)]
    if not valid:
        raise MappingError(
            f"no widget type in the library accepts the domain at path {path} "
            f"(size={domain.size}, none={domain.includes_none})"
        )
    best = min(valid, key=lambda wt: (wt.cost_for(domain), wt.name))
    return Widget(widget_type=best, path=path, domain=domain, D=list(diffs))


def initialize(
    diffs: list[Diff],
    library: list[WidgetType],
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
) -> list[Widget]:
    """Algorithm 1: path-partition the diffs table and pick one widget per
    partition.

    Partitions that no widget type accepts — in practice, tree-valued
    domains beyond the enumeration-size cap, such as the root partition of
    a highly heterogeneous log — are skipped: a several-dozen-option
    query selector is the "one button per query" interface Section 4.4
    rejects, and the leaf partitions still express the log's structural
    changes.
    """
    partitions: dict[Path, list[Diff]] = {}
    for diff in diffs:
        partitions.setdefault(diff.path, []).append(diff)
    widgets = []
    for path in sorted(partitions):
        try:
            widget = pick_widget(partitions[path], library, annotations)
        except MappingError:
            continue
        if widget is not None:
            widgets.append(widget)
    return widgets


def initialize_incremental(
    diffs: list[Diff],
    library: list[WidgetType],
    annotations: GrammarAnnotations,
    cache: dict[Path, tuple[tuple[int, ...], Widget | None]],
) -> tuple[list[Widget], int, int]:
    """Algorithm 1 with partition-level reuse for growing diff tables.

    The diffs table only ever grows (the incremental session appends, never
    edits), so a path partition whose diff list is unchanged since the last
    call must produce the same widget — re-solving it is pure waste.
    ``cache`` maps each path to ``(signature, widget)`` where the signature
    identifies the exact diff objects (by ``id``) the widget was built
    from; a diff object's identity is stable because the session's graph
    holds a reference to it for its whole lifetime.  Partitions whose
    signature matches reuse the cached widget (including cached
    ``None`` — a partition no widget type accepts stays skipped without
    re-running ``pickWidget``); the rest are re-solved and re-cached, and
    paths that vanished from the table are evicted.

    Long-lived callers get cheaper dirtiness tracking from the
    index-based twin (:func:`initialize_indexed` over a
    :class:`PartitionIndex`), which replaces per-partition id-signatures
    with revision counters.

    Returns ``(widgets, n_reused, n_rebuilt)``.
    """
    partitions: dict[Path, list[Diff]] = {}
    for diff in diffs:
        partitions.setdefault(diff.path, []).append(diff)
    widgets: list[Widget] = []
    n_reused = 0
    n_rebuilt = 0
    for path in sorted(partitions):
        partition = partitions[path]
        cached = cache.get(path)
        signature = tuple(id(d) for d in partition)
        if cached is not None and cached[0] == signature:
            n_reused += 1
            widget = cached[1]
        else:
            n_rebuilt += 1
            try:
                widget = pick_widget(partition, library, annotations)
            except MappingError:
                widget = None
            cache[path] = (signature, widget)
        if widget is not None:
            widgets.append(widget)
    for stale in set(cache) - set(partitions):
        del cache[stale]
    return widgets, n_reused, n_rebuilt


def _incident_queries(diffs: list[Diff]) -> set[int]:
    """Vertices incident to the edges a set of diffs participates in."""
    out: set[int] = set()
    for diff in diffs:
        out.add(diff.q1)
        out.add(diff.q2)
    return out


def _leaf_diffs_by_pair(leaf_diffs: list[Diff]) -> dict[tuple[int, int], list[Diff]]:
    """Index the leaf diffs by their ``(q1, q2)`` edge.

    ``_merge_step``'s edge-coverage guard only ever looks leaf diffs up by
    pair; building the index once per fixed point replaces an
    ``O(|leaf diffs|)`` scan per candidate diff with a dict hit.
    """
    by_pair: dict[tuple[int, int], list[Diff]] = {}
    for diff in leaf_diffs:
        by_pair.setdefault((diff.q1, diff.q2), []).append(diff)
    return by_pair


def _preorder_view(
    widgets: list[Widget], intervals: IntervalIndex
) -> tuple[list[Widget], list[int]]:
    """Sort widgets by pre-order and pair them with their positions.

    A subtree's widgets occupy one contiguous pre-order range, so the
    merge loop can bisect this view for each ancestor's descendants
    instead of filtering the whole widget list per step.
    """
    ordered = sorted(
        widgets, key=lambda w: intervals.interval(w.path).pre_order
    )
    pres = [intervals.interval(w.path).pre_order for w in ordered]
    return ordered, pres


#: Entry cap for the shared pickWidget memo; exceeded → cleared wholesale.
_PICK_MEMO_CAP = 65536


def _merge_step(
    ancestor: Widget,
    descendants: list[Widget],
    library: list[WidgetType],
    annotations: GrammarAnnotations,
    leaf_by_pair: dict[tuple[int, int], list[Diff]],
    pick_memo: dict[tuple, Widget | None],
    intervals: IntervalIndex | None = None,
) -> tuple[Widget | None, list[Widget | None], float] | None:
    """Algorithm 3 for one (ancestor, descendant-set) pair.

    The overlap sets carry an *edge-coverage guard* on top of the paper's
    vertex-intersection: a diff is only removable from one side when the
    other side still fully expresses its edge.  Without the guard,
    successive rounds can strip an edge's leaf diffs from the descendants
    and then its replacement diff from the ancestor, silently losing log
    expressiveness.

    Returns:
        ``(new_ancestor, new_descendants, savings)`` where a ``None`` widget
        means "removed", or ``None`` when there is no overlap to resolve.
    """
    vertices_a = _incident_queries(ancestor.D)
    vertices_d: set[int] = set()
    for widget in descendants:
        vertices_d |= _incident_queries(widget.D)
    shared = vertices_a & vertices_d
    if not shared:
        return None

    descendant_diff_ids = {id(d) for w in descendants for d in w.D}
    ancestor_pairs = {(d.q1, d.q2) for d in ancestor.D}

    if intervals is not None:
        def strictly_under(path: Path) -> bool:
            return intervals.strictly_contains(ancestor.path, path)
    else:
        def strictly_under(path: Path) -> bool:
            return ancestor.path.is_strict_prefix_of(path)

    def descendants_cover(pair: tuple[int, int]) -> bool:
        """Do the descendants still hold every leaf diff of this edge that
        lies under the ancestor's path?"""
        required = [
            d for d in leaf_by_pair.get(pair, ()) if strictly_under(d.path)
        ]
        if not required:
            return False
        return all(id(d) in descendant_diff_ids for d in required)

    overlap_a = [
        d
        for d in ancestor.D
        if d.q1 in shared and d.q2 in shared and descendants_cover((d.q1, d.q2))
    ]
    overlaps_d = [
        [
            d
            for d in w.D
            if d.q1 in shared
            and d.q2 in shared
            and (d.q1, d.q2) in ancestor_pairs
        ]
        for w in descendants
    ]
    if not overlap_a and not any(overlaps_d):
        return None

    def rebuilt(widget: Widget, removed: list[Diff]) -> Widget | None:
        if not removed:
            return widget
        removed_ids = {id(d) for d in removed}
        kept = [d for d in widget.D if id(d) not in removed_ids]
        # memoised: successive rounds (and appends) re-evaluate the same
        # candidate removals, and pickWidget's domain construction is the
        # single hottest part of the fixed point
        key = (widget.path, tuple(id(d) for d in kept))
        if key in pick_memo:
            return pick_memo[key]
        result = pick_widget(kept, library, annotations)
        pick_memo[key] = result
        return result

    def cost_of(widget: Widget | None) -> float:
        return 0.0 if widget is None else widget.cost

    # savings if the overlap is removed from the descendants
    new_descendants = [
        rebuilt(w, overlap) for w, overlap in zip(descendants, overlaps_d)
    ]
    savings_d = sum(
        cost_of(w) - cost_of(nw) for w, nw in zip(descendants, new_descendants)
    )
    # savings if the overlap is removed from the ancestor
    new_ancestor = rebuilt(ancestor, overlap_a)
    savings_a = ancestor.cost - cost_of(new_ancestor)

    if savings_a > savings_d:
        if savings_a <= 0:
            return None
        return new_ancestor, list(descendants), savings_a
    if savings_d <= 0:
        return None
    return ancestor, new_descendants, savings_d


def merge_widgets(
    widgets: list[Widget],
    library: list[WidgetType],
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    stats: MapperStats | None = None,
    leaf_diffs: list[Diff] | None = None,
    pick_memo: dict[tuple, Widget | None] | None = None,
    windows: WindowMemo | None = None,
    leaf_by_pair: dict[tuple[int, int], list[Diff]] | None = None,
) -> list[Widget]:
    """Iterate Algorithm 3 to a fixed point.

    Each round scans ancestor widgets shallow-to-deep; a round that reduces
    total cost triggers another round.  ``pick_memo`` optionally shares
    rebuilt-widget lookups across calls (see :class:`MapCache`); by
    default the memo lives only for this fixed point, which already
    de-duplicates the re-evaluation successive rounds do.

    ``windows`` (see :class:`WindowMemo`) additionally memoises whole
    per-ancestor merge *steps* under window revision signatures: an
    ancestor whose subtree window is clean and whose widgets are the same
    objects as last time replays its recorded outcome — including the
    common "no overlap to resolve" no-op — without touching a single
    diff.  The round/ancestor order is unchanged and replayed outcomes
    are the recorded outcomes, so the fixed point is byte-identical with
    or without the memo.
    """
    if leaf_by_pair is None:
        # an oversupplied index is harmless: every read filters by the
        # ancestor's path, so only pairs' leaf diffs under it are seen
        if leaf_diffs is None:
            leaf_diffs = [d for w in widgets for d in w.D if d.is_leaf]
        leaf_by_pair = _leaf_diffs_by_pair(leaf_diffs)
    if pick_memo is None:
        pick_memo = {}
    intervals = windows.index.intervals if windows is not None else None
    current = list(widgets)
    rounds = 0
    while True:
        rounds += 1
        changed = False
        current.sort(key=lambda w: (w.path.depth, w.path))
        # pre-order view of the live widget set: a subtree's widgets are
        # one contiguous slice, so each ancestor's descendant scan is a
        # bisect + slice (O(log W + k)) instead of an O(W) filter; the
        # view is rebuilt only after a replacement actually happens
        view: tuple[list[Widget], list[int]] | None = None
        if intervals is not None:
            view = _preorder_view(current, intervals)
        current_ids = {id(w) for w in current}
        for index, ancestor in enumerate(list(current)):
            if id(ancestor) not in current_ids:
                continue
            if intervals is not None and view is not None:
                annot = intervals.interval(ancestor.path)
                ordered, pres = view
                lo = bisect_right(pres, annot.pre_order)
                hi = bisect_left(pres, annot.pre_order + annot.subtree_size)
                if lo >= hi:
                    continue
                # keep the raw pre-order slice for the memo probe; the
                # (depth, path) order the reference filter yields is only
                # restored when a step actually runs or applies — replay
                # hits on no-op outcomes skip the sort entirely
                window_slice = ordered[lo:hi]
                descendants = None
            else:
                window_slice = None
                descendants = [
                    w
                    for w in current
                    if ancestor.path.is_strict_prefix_of(w.path)
                ]
                if not descendants:
                    continue

            def in_reference_order() -> list[Widget]:
                if descendants is not None:
                    return descendants
                assert window_slice is not None
                return sorted(
                    window_slice, key=lambda w: (w.path.depth, w.path)
                )

            if windows is not None:
                step_key = windows.key(
                    ancestor,
                    window_slice if window_slice is not None else descendants,
                )
                if step_key in windows.steps:
                    windows.n_reused += 1
                    result = windows.steps[step_key]
                else:
                    windows.n_merged += 1
                    descendants = in_reference_order()
                    result = _merge_step(
                        ancestor, descendants, library, annotations,
                        leaf_by_pair, pick_memo, intervals,
                    )
                    windows.steps[step_key] = result
            else:
                descendants = in_reference_order()
                result = _merge_step(
                    ancestor, descendants, library, annotations, leaf_by_pair,
                    pick_memo, intervals,
                )
            if result is None:
                continue
            new_ancestor, new_descendants, savings = result
            if savings <= 0:
                continue
            # a recorded outcome is replayed against the same widget
            # objects it was recorded with (identity tokens in the key),
            # so sorting now yields exactly the order it was zipped with
            descendants = in_reference_order()
            changed = True
            replacement: list[Widget] = []
            descendant_ids = {id(w) for w in descendants}
            new_by_old = dict(zip((id(w) for w in descendants), new_descendants))
            for widget in current:
                if widget is ancestor:
                    if new_ancestor is not None:
                        replacement.append(new_ancestor)
                elif id(widget) in descendant_ids:
                    new_widget = new_by_old[id(widget)]
                    if new_widget is not None:
                        replacement.append(new_widget)
                else:
                    replacement.append(widget)
            current = replacement
            current_ids = {id(w) for w in current}
            if intervals is not None:
                view = _preorder_view(current, intervals)
        if not changed:
            break
    if stats is not None:
        stats.n_merge_rounds = rounds
    return current


def _component_roots(
    paths: list[Path], intervals: IntervalIndex
) -> dict[Path, Path]:
    """Map each widget path to the root of its prefix component.

    Two widget paths interact during merging only when one is a (strict)
    prefix of the other, directly or through a chain of present widget
    paths; the components of that relation are prefix trees, each with a
    unique shallowest member (its *root*).  Because merging only rebuilds
    or removes widgets — never moves one to a new path — the components of
    the initial widget set are closed under every merge step.

    One pre-order sweep with a stack of open intervals: when a path
    arrives, every stack entry that does not contain it has been left,
    and the surviving top (if any) is its nearest present ancestor — no
    per-path walk up the parent chain, no path-string prefix tests.
    """
    roots: dict[Path, Path] = {}
    stack: list[Path] = []
    for path in sorted(paths, key=lambda p: intervals.interval(p).pre_order):
        while stack and not intervals.strictly_contains(stack[-1], path):
            stack.pop()
        roots[path] = roots[stack[-1]] if stack else path
        stack.append(path)
    return roots


def initialize_indexed(
    cache: MapCache,
    library: list[WidgetType],
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
) -> tuple[list[Widget], int, int]:
    """Algorithm 1 over a :class:`PartitionIndex` with revision reuse.

    The index-based twin of :func:`initialize_incremental`: partitions are
    already grouped and ordered by the index, and a partition is re-solved
    only when its revision moved past the one its memoised widget was
    built at — a steady-state append re-runs ``pickWidget`` for exactly
    the partitions the new pairs touched.

    Returns ``(widgets, n_reused, n_rebuilt)``.
    """
    index = cache.index
    widgets: list[Widget] = []
    n_reused = 0
    n_rebuilt = 0
    # the interval index's pre-order IS sorted(by_path), maintained
    # incrementally — no per-remap sort of every partition path
    for path in index.ordered_paths():
        revision = index.rev[path]
        cached = cache.paths.get(path)
        if cached is not None and cached[0] == revision:
            n_reused += 1
            widget = cached[1]
        else:
            n_rebuilt += 1
            try:
                widget = pick_widget(index.by_path[path], library, annotations)
            except MappingError:
                widget = None
            cache.paths[path] = (revision, widget)
        if widget is not None:
            widgets.append(widget)
    return widgets, n_reused, n_rebuilt


def merge_widgets_incremental(
    widgets: list[Widget],
    library: list[WidgetType],
    annotations: GrammarAnnotations,
    cache: MapCache,
    stats: MapperStats | None = None,
    use_windows: bool = True,
) -> tuple[list[Widget], int, int]:
    """Partition-scoped Algorithm 3: per-component fixed points with reuse.

    The widget set is decomposed into prefix components (see
    :func:`_component_roots`); each component's fixed point is computed by
    the reference :func:`merge_widgets` over only its members and the leaf
    diffs in the partitions under its root, and memoised under the
    revision vector of exactly those partitions.  On the next call —
    typically the next append of an
    :class:`~repro.api.session.InterfaceSession` — components whose
    revisions are unchanged (the *clean* set) replay their memoised
    result; only components incident to new diffs (the *dirty* worklist)
    re-run their fixed point.

    Result-equivalence to the global fixed point holds because a merge
    step only ever pairs an ancestor with its prefix-descendants — no
    candidate merge crosses a component boundary — and the global round
    order restricted to one component equals that component's own round
    order; the output is normalised to the global ``(depth, path)``
    widget order.  The parity suite asserts this on every log family.

    Dirtiness is interval-encoded end to end: a component's memo
    signature is the *window revision* of its root — the monotone
    cumulative revision of every partition in the root's interval window,
    an O(log n) range sum instead of a per-member revision vector — and a
    dirty component's fixed point runs through the cache's
    :class:`WindowMemo`, so clean sibling subtrees *inside* a hot
    component replay their memoised per-ancestor step outcomes and only
    the dirty subtree window pays for re-merging.

    ``use_windows=False`` disables the per-step window memo (dirty
    components re-run their full fixed point) — the pre-interval-index
    behaviour, kept for the ablation benchmark.

    Returns ``(merged_widgets, n_components_reused, n_components_merged)``.
    """
    index = cache.index
    memo = cache.merge
    intervals = index.intervals
    roots = _component_roots([w.path for w in widgets], intervals)
    components: dict[Path, list[Widget]] = {}
    for widget in widgets:
        components.setdefault(roots[widget.path], []).append(widget)
    windows = cache.window_memo() if use_windows else None
    windows_reused_before = windows.n_reused if windows is not None else 0
    windows_merged_before = windows.n_merged if windows is not None else 0

    merged: list[Widget] = []
    n_reused = 0
    n_merged = 0
    max_rounds = 0
    dirty: list[str] = []
    for root in sorted(components, key=lambda p: (p.depth, p)):
        # monotone clean-window proof: equal sum ⟺ no member partition
        # gained a diff and no new partition entered the window
        signature = index.window_revision(root)
        cached = memo.get(root)
        if cached is not None and cached[0] == signature:
            n_reused += 1
            merged.extend(cached[1])
            continue
        n_merged += 1
        dirty.append(str(root))
        if len(cache.pick) > _PICK_MEMO_CAP:
            cache.pick.clear()
        if windows is not None and len(windows.steps) > _PICK_MEMO_CAP:
            windows.clear()
        component_stats = MapperStats()
        # a merge step reads exactly the leaf diffs strictly under its
        # ancestor widget's path, and every ancestor in this component
        # lies under the root — so sharing the index's global pair index
        # is read-identical to collecting the root's window: every lookup
        # is filtered by containment before use, and the global index is
        # maintained append-only instead of being rebuilt per component
        result = merge_widgets(
            components[root],
            library,
            annotations,
            stats=component_stats,
            pick_memo=cache.pick,
            windows=windows,
            leaf_by_pair=index.leaf_by_pair,
        )
        memo[root] = (signature, result)
        merged.extend(result)
        max_rounds = max(max_rounds, component_stats.n_merge_rounds)
    for stale in set(memo) - set(components):
        del memo[stale]
    # normalise to the global fixed point's (depth, path) output order
    merged.sort(key=lambda w: (w.path.depth, w.path))
    if stats is not None:
        stats.n_merge_rounds = max_rounds
        stats.extra["n_components"] = len(components)
        stats.extra["n_components_reused"] = n_reused
        stats.extra["dirty_components"] = dirty
        stats.extra["n_windows_reused"] = (
            windows.n_reused - windows_reused_before
            if windows is not None
            else 0
        )
        stats.extra["n_windows_merged"] = (
            windows.n_merged - windows_merged_before
            if windows is not None
            else 0
        )
    return merged, n_reused, n_merged


def map_interactions(
    diffs: list[Diff],
    library: list[WidgetType] | None = None,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    merge: bool = True,
    stats: MapperStats | None = None,
) -> list[Widget]:
    """End-to-end mapping: Initialize then Merge.

    Args:
        diffs: the mined diffs table ``W``.
        library: widget type library ``L`` (defaults to the 9-type library).
        annotations: grammar annotations.
        merge: run the merging phase (disable for the ablation bench).
        stats: optional instrumentation sink.

    Returns:
        The final widget set (may be empty for a log of identical queries).
    """
    library = library if library is not None else default_library()
    started = time.perf_counter()
    widgets = initialize(diffs, library, annotations)
    n_initial = len(widgets)
    initial_cost = sum(w.cost for w in widgets)
    if merge:
        leaf_diffs = [d for d in diffs if d.is_leaf]
        widgets = merge_widgets(
            widgets, library, annotations, stats=stats, leaf_diffs=leaf_diffs
        )
    if stats is not None:
        stats.mapping_seconds += time.perf_counter() - started
        stats.n_partitions = len({d.path for d in diffs})
        stats.n_initial_widgets = n_initial
        stats.initial_cost = initial_cost
        stats.n_final_widgets = len(widgets)
        stats.final_cost = sum(w.cost for w in widgets)
    return widgets
