"""The interaction mapper (Section 5, Algorithms 1–3).

The interface generation problem — pick a minimum-cost widget set whose
closure covers the log — is NP-hard (reduction from vertex cover, §4.5), so
the mapper runs the paper's two-phase graph-contraction heuristic:

* **Initialize** (Algorithm 1): partition the diffs table by path and
  instantiate, per partition, the cheapest widget type whose rule accepts
  the partition's domain (``pickWidget``, Algorithm 2).  This yields an
  interface that expresses every edge, but with redundant widgets.
* **Merge** (Algorithm 3): repeatedly compare an *ancestor* widget with the
  set of its *descendant* widgets (prefix paths), compute the overlapping
  diffs — those whose incident queries are expressed by both sides — and
  remove the overlap from whichever side yields the larger cost reduction.
  Iterate to a fixed point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.paths import Path
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.treediff.diff import Diff
from repro.widgets.base import Widget, WidgetType
from repro.widgets.domain import WidgetDomain
from repro.widgets.library import default_library

__all__ = [
    "MapperStats",
    "pick_widget",
    "initialize",
    "initialize_incremental",
    "merge_widgets",
    "map_interactions",
]


@dataclass
class MapperStats:
    """Instrumentation for the mapping phase (used by Appendix B benches)."""

    mapping_seconds: float = 0.0
    n_partitions: int = 0
    n_initial_widgets: int = 0
    n_merge_rounds: int = 0
    n_final_widgets: int = 0
    initial_cost: float = 0.0
    final_cost: float = 0.0
    extra: dict = field(default_factory=dict)


def pick_widget(
    diffs: list[Diff],
    library: list[WidgetType],
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
) -> Widget | None:
    """Algorithm 2: instantiate the lowest-cost widget type for a partition.

    Args:
        diffs: diff records sharing one path (the partition ``W_p``).
        library: candidate widget types ``L``.
        annotations: grammar annotations for typing the domain.

    Returns:
        The cheapest valid widget, or ``None`` for an empty partition.

    Raises:
        MappingError: when no widget type accepts the domain.
    """
    if not diffs:
        return None
    path = diffs[0].path
    entries = []
    for diff in diffs:
        entries.append(diff.t1)
        entries.append(diff.t2)
    domain = WidgetDomain(entries, annotations)
    valid = [wt for wt in library if wt.accepts(domain)]
    if not valid:
        raise MappingError(
            f"no widget type in the library accepts the domain at path {path} "
            f"(size={domain.size}, none={domain.includes_none})"
        )
    best = min(valid, key=lambda wt: (wt.cost_for(domain), wt.name))
    return Widget(widget_type=best, path=path, domain=domain, D=list(diffs))


def initialize(
    diffs: list[Diff],
    library: list[WidgetType],
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
) -> list[Widget]:
    """Algorithm 1: path-partition the diffs table and pick one widget per
    partition.

    Partitions that no widget type accepts — in practice, tree-valued
    domains beyond the enumeration-size cap, such as the root partition of
    a highly heterogeneous log — are skipped: a several-dozen-option
    query selector is the "one button per query" interface Section 4.4
    rejects, and the leaf partitions still express the log's structural
    changes.
    """
    partitions: dict[Path, list[Diff]] = {}
    for diff in diffs:
        partitions.setdefault(diff.path, []).append(diff)
    widgets = []
    for path in sorted(partitions):
        try:
            widget = pick_widget(partitions[path], library, annotations)
        except MappingError:
            continue
        if widget is not None:
            widgets.append(widget)
    return widgets


def initialize_incremental(
    diffs: list[Diff],
    library: list[WidgetType],
    annotations: GrammarAnnotations,
    cache: dict[Path, tuple[tuple[int, ...], Widget | None]],
) -> tuple[list[Widget], int, int]:
    """Algorithm 1 with partition-level reuse for growing diff tables.

    The diffs table only ever grows (the incremental session appends, never
    edits), so a path partition whose diff list is unchanged since the last
    call must produce the same widget — re-solving it is pure waste.
    ``cache`` maps each path to ``(signature, widget)`` where the signature
    identifies the exact diff objects (by ``id``) the widget was built
    from; a diff object's identity is stable because the session's graph
    holds a reference to it for its whole lifetime.  Partitions whose
    signature matches reuse the cached widget (including cached
    ``None`` — a partition no widget type accepts stays skipped without
    re-running ``pickWidget``); the rest are re-solved and re-cached, and
    paths that vanished from the table are evicted.

    Returns ``(widgets, n_reused, n_rebuilt)``.
    """
    partitions: dict[Path, list[Diff]] = {}
    for diff in diffs:
        partitions.setdefault(diff.path, []).append(diff)
    widgets: list[Widget] = []
    n_reused = 0
    n_rebuilt = 0
    for path in sorted(partitions):
        partition = partitions[path]
        signature = tuple(id(d) for d in partition)
        cached = cache.get(path)
        if cached is not None and cached[0] == signature:
            n_reused += 1
            widget = cached[1]
        else:
            n_rebuilt += 1
            try:
                widget = pick_widget(partition, library, annotations)
            except MappingError:
                widget = None
            cache[path] = (signature, widget)
        if widget is not None:
            widgets.append(widget)
    for stale in set(cache) - set(partitions):
        del cache[stale]
    return widgets, n_reused, n_rebuilt


def _incident_queries(diffs: list[Diff]) -> set[int]:
    """Vertices incident to the edges a set of diffs participates in."""
    out: set[int] = set()
    for diff in diffs:
        out.add(diff.q1)
        out.add(diff.q2)
    return out


def _merge_step(
    ancestor: Widget,
    descendants: list[Widget],
    library: list[WidgetType],
    annotations: GrammarAnnotations,
    leaf_diffs: list[Diff],
) -> tuple[Widget | None, list[Widget | None], float] | None:
    """Algorithm 3 for one (ancestor, descendant-set) pair.

    The overlap sets carry an *edge-coverage guard* on top of the paper's
    vertex-intersection: a diff is only removable from one side when the
    other side still fully expresses its edge.  Without the guard,
    successive rounds can strip an edge's leaf diffs from the descendants
    and then its replacement diff from the ancestor, silently losing log
    expressiveness.

    Returns:
        ``(new_ancestor, new_descendants, savings)`` where a ``None`` widget
        means "removed", or ``None`` when there is no overlap to resolve.
    """
    vertices_a = _incident_queries(ancestor.D)
    vertices_d: set[int] = set()
    for widget in descendants:
        vertices_d |= _incident_queries(widget.D)
    shared = vertices_a & vertices_d
    if not shared:
        return None

    descendant_diff_ids = {id(d) for w in descendants for d in w.D}
    ancestor_pairs = {(d.q1, d.q2) for d in ancestor.D}

    def descendants_cover(pair: tuple[int, int]) -> bool:
        """Do the descendants still hold every leaf diff of this edge that
        lies under the ancestor's path?"""
        required = [
            d
            for d in leaf_diffs
            if (d.q1, d.q2) == pair
            and ancestor.path.is_strict_prefix_of(d.path)
        ]
        if not required:
            return False
        return all(id(d) in descendant_diff_ids for d in required)

    overlap_a = [
        d
        for d in ancestor.D
        if d.q1 in shared and d.q2 in shared and descendants_cover((d.q1, d.q2))
    ]
    overlaps_d = [
        [
            d
            for d in w.D
            if d.q1 in shared
            and d.q2 in shared
            and (d.q1, d.q2) in ancestor_pairs
        ]
        for w in descendants
    ]
    if not overlap_a and not any(overlaps_d):
        return None

    def rebuilt(widget: Widget, removed: list[Diff]) -> Widget | None:
        if not removed:
            return widget
        removed_ids = {id(d) for d in removed}
        kept = [d for d in widget.D if id(d) not in removed_ids]
        return pick_widget(kept, library, annotations)

    def cost_of(widget: Widget | None) -> float:
        return 0.0 if widget is None else widget.cost

    # savings if the overlap is removed from the descendants
    new_descendants = [
        rebuilt(w, overlap) for w, overlap in zip(descendants, overlaps_d)
    ]
    savings_d = sum(
        cost_of(w) - cost_of(nw) for w, nw in zip(descendants, new_descendants)
    )
    # savings if the overlap is removed from the ancestor
    new_ancestor = rebuilt(ancestor, overlap_a)
    savings_a = ancestor.cost - cost_of(new_ancestor)

    if savings_a > savings_d:
        if savings_a <= 0:
            return None
        return new_ancestor, list(descendants), savings_a
    if savings_d <= 0:
        return None
    return ancestor, new_descendants, savings_d


def merge_widgets(
    widgets: list[Widget],
    library: list[WidgetType],
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    stats: MapperStats | None = None,
    leaf_diffs: list[Diff] | None = None,
) -> list[Widget]:
    """Iterate Algorithm 3 to a fixed point.

    Each round scans ancestor widgets shallow-to-deep; a round that reduces
    total cost triggers another round.
    """
    if leaf_diffs is None:
        leaf_diffs = [d for w in widgets for d in w.D if d.is_leaf]
    current = list(widgets)
    rounds = 0
    while True:
        rounds += 1
        changed = False
        current.sort(key=lambda w: (w.path.depth, w.path))
        for index, ancestor in enumerate(list(current)):
            if ancestor not in current:
                continue
            descendants = [
                w for w in current if ancestor.path.is_strict_prefix_of(w.path)
            ]
            if not descendants:
                continue
            result = _merge_step(
                ancestor, descendants, library, annotations, leaf_diffs
            )
            if result is None:
                continue
            new_ancestor, new_descendants, savings = result
            if savings <= 0:
                continue
            changed = True
            replacement: list[Widget] = []
            descendant_ids = {id(w) for w in descendants}
            new_by_old = dict(zip((id(w) for w in descendants), new_descendants))
            for widget in current:
                if widget is ancestor:
                    if new_ancestor is not None:
                        replacement.append(new_ancestor)
                elif id(widget) in descendant_ids:
                    new_widget = new_by_old[id(widget)]
                    if new_widget is not None:
                        replacement.append(new_widget)
                else:
                    replacement.append(widget)
            current = replacement
        if not changed:
            break
    if stats is not None:
        stats.n_merge_rounds = rounds
    return current


def map_interactions(
    diffs: list[Diff],
    library: list[WidgetType] | None = None,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    merge: bool = True,
    stats: MapperStats | None = None,
) -> list[Widget]:
    """End-to-end mapping: Initialize then Merge.

    Args:
        diffs: the mined diffs table ``W``.
        library: widget type library ``L`` (defaults to the 9-type library).
        annotations: grammar annotations.
        merge: run the merging phase (disable for the ablation bench).
        stats: optional instrumentation sink.

    Returns:
        The final widget set (may be empty for a log of identical queries).
    """
    library = library if library is not None else default_library()
    started = time.perf_counter()
    widgets = initialize(diffs, library, annotations)
    n_initial = len(widgets)
    initial_cost = sum(w.cost for w in widgets)
    if merge:
        leaf_diffs = [d for d in diffs if d.is_leaf]
        widgets = merge_widgets(
            widgets, library, annotations, stats=stats, leaf_diffs=leaf_diffs
        )
    if stats is not None:
        stats.mapping_seconds += time.perf_counter() - started
        stats.n_partitions = len({d.path for d in diffs})
        stats.n_initial_widgets = n_initial
        stats.initial_cost = initial_cost
        stats.n_final_widgets = len(widgets)
        stats.final_cost = sum(w.cost for w in widgets)
    return widgets
