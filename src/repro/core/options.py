"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MappingError
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.widgets.base import WidgetType
from repro.widgets.library import default_library

__all__ = ["PipelineOptions"]


@dataclass
class PipelineOptions:
    """Knobs for the end-to-end pipeline.

    Attributes:
        window: sliding-window size (Section 6.1).  ``None`` compares all
            pairs of queries (the unoptimised baseline); the paper's
            recommended configuration is 2 (adjacent pairs), which their
            experiments show leaves the output interface unchanged.
        lca_pruning: prune non-LCA ancestor diffs (Section 6.2).
        merge: run the widget merging phase (Algorithm 3); disabling it is
            only useful for ablations.
        coverage: the threshold ``g``; the paper fixes g = 1 so the whole
            log must be expressible.
        library: widget type library (defaults to the 9 built-in types).
        annotations: grammar annotations for the query language.
        cache_dir: directory of a :class:`~repro.cache.store.GraphStore`.
            When set, the default pipeline inserts a
            :class:`~repro.api.stages.CacheStage`: mined interaction graphs
            are persisted there keyed by (log, options) fingerprints, and a
            later run over the same log skips the Mine stage entirely.
            ``None`` (the default) disables persistence.
        daemon_socket: unix-domain socket of a running
            :class:`~repro.service.daemon.StoreDaemon` serving
            ``cache_dir``.  When set (and ``cache_dir`` is set), the
            pipeline's store attaches as a thin client instead of
            opening the segment files itself; when no daemon answers it
            fails open to direct access.  Purely a deployment knob — it
            never changes what mining produces, so like ``cache_dir`` it
            is excluded from the options fingerprint.
        max_plans_per_shape: optional LRU cap (>= 1) on the alignment
            plans a :class:`~repro.treediff.memo.DiffMemo` keeps per
            query-shape pair.  High-cardinality traffic (random literals,
            low template repetition) otherwise grows one plan per literal
            pattern without bound; capped, such pairs cost re-alignment
            instead of memory.  ``None`` (the default) keeps every plan.
            A pure resource knob — it never changes what mining produces,
            so it is excluded from the options fingerprint (capped and
            uncapped runs share cache entries).
    """

    window: int | None = 2
    lca_pruning: bool = True
    merge: bool = True
    coverage: float = 1.0
    library: list[WidgetType] = field(default_factory=default_library)
    annotations: GrammarAnnotations = SQL_ANNOTATIONS
    cache_dir: str | None = None
    daemon_socket: str | None = None
    max_plans_per_shape: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.coverage <= 1.0:
            raise MappingError(f"coverage must be in (0, 1], got {self.coverage}")
        if self.window is not None and self.window < 2:
            raise MappingError(f"window must be >= 2, got {self.window}")
        if not self.library:
            raise MappingError("widget library must not be empty")
        if self.max_plans_per_shape is not None and self.max_plans_per_shape < 1:
            raise MappingError(
                f"max_plans_per_shape must be >= 1, got {self.max_plans_per_shape}"
            )
