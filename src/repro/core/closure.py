"""Interface closure: membership testing and enumeration (Section 4.4).

The closure of an interface is the set of queries reachable from the
initial query ``q0`` by any combination of widget interactions.  Two
operations are needed:

* :func:`expresses` — membership: can the widget set transform ``q0`` into
  a given target query?  Used by the expressiveness metric and all recall
  experiments (Section 7.2).
* :func:`enumerate_closure` — exhaustive enumeration of expressible
  queries, used by the precision experiment (Appendix D).

Membership works on the diff structure between ``q0`` and the target: each
minimal changed subtree must be *covered*, either directly by a widget at
its exact path whose domain contains the target subtree (with slider
extrapolation and textbox free-entry), or by an *ancestor* widget that can
swap in a domain subtree which the remaining widgets can then edit into the
target subtree (this is how Figure 5e's "toggle subquery, then modify it"
interfaces express unseen queries).

The search over ancestor substitutions is exponential in principle, so the
implementation memoises on ``(current, target, base)`` triples, orders
candidate domain entries by a cheap similarity to the target, and carries a
work budget; a query whose cover is not found within the budget is
reported inexpressible.  The budget is generous relative to the search
depth real interfaces need (Figure 5e needs depth 2), so this is a
completeness cut-off only for adversarial inputs.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator

from repro.paths import Path
from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.treediff.diff import extract_diffs
from repro.widgets.base import Widget

__all__ = ["ClosureCache", "expresses", "enumerate_closure", "apply_widget_choice"]

_MAX_DEPTH = 5           # recursion guard for ancestor substitution chains
_WORK_BUDGET = 4000      # max _cover invocations per membership query
_MAX_ENTRY_TRIES = 12    # candidate domain entries tried per widget


class ClosureCache:
    """Cover proofs reusable across membership queries — and appends.

    A membership search memoises ``(current, target, base) -> bool``
    triples, but a *negative* entry can be a budget artefact (the search
    gave up, not proved impossibility), so only **positive** entries are
    safe to carry from one query to the next.  This cache keeps exactly
    those, keyed to the identity of the widget set they were proved
    against: the incremental session's clean merge components return the
    *same* widget objects append after append, so steady-state appends keep
    their accumulated proofs, while any rebuilt widget resets the cache
    (a proof against an old domain must not outlive it).

    Alongside each positive key the cache retains the *subtrees* the key
    fingerprints, because the fingerprints themselves are process-salted
    (``Node.fingerprint`` builds on Python's ``hash``): persisting a proof
    means persisting its trees and re-fingerprinting them in the loading
    process.  :meth:`export_proofs` / :meth:`import_proofs` are that
    bridge — :mod:`repro.cache.serialize` encodes the exported triples and
    the :class:`~repro.cache.store.GraphStore` keeps them in a third
    content-addressed table, so ``expresses()`` memos survive session
    death and are shared across pool workers.
    """

    def __init__(self) -> None:
        self._signature: tuple | None = None
        self._proven: dict[tuple[int, int, Path], bool] = {}
        self._proof_trees: dict[tuple[int, int, Path], tuple[Node, Node]] = {}

    def _arm(self, widgets: list[Widget]) -> None:
        """Clear and re-key the cache when the widget set changed."""
        signature = tuple(sorted((str(w.path), id(w)) for w in widgets))
        if signature != self._signature:
            self._proven = {}
            self._proof_trees = {}
            self._signature = signature

    def proven_for(self, widgets: list[Widget]) -> dict[tuple[int, int, Path], bool]:
        """The positive-proof memo for exactly this widget set (identity
        signature); a different set clears and re-arms the cache."""
        self._arm(widgets)
        return self._proven

    def proof_trees_for(
        self, widgets: list[Widget]
    ) -> dict[tuple[int, int, Path], tuple[Node, Node]]:
        """The per-proof subtree record for this widget set (same keying
        discipline as :meth:`proven_for`)."""
        self._arm(widgets)
        return self._proof_trees

    def export_proofs(self, widgets: list[Widget]) -> list[tuple[Node, Node, Path]]:
        """Positive proofs as portable ``(current, target, base)`` triples.

        Only proofs established against exactly ``widgets`` are exported;
        a cache armed for a different widget set exports nothing (its
        proofs would be lies about these widgets' domains).
        """
        signature = tuple(sorted((str(w.path), id(w)) for w in widgets))
        if signature != self._signature:
            return []
        return [
            (current, target, key[2])
            for key, (current, target) in self._proof_trees.items()
        ]

    def import_proofs(
        self, widgets: list[Widget], triples: Iterable[tuple[Node, Node, Path]]
    ) -> int:
        """Adopt persisted proofs for ``widgets``, re-fingerprinting each
        triple's trees in this process.  Returns how many were adopted.

        Existing proofs for the same widget set are kept; a cache armed
        for a different set is cleared and re-armed first (the imported
        proofs define the new state).
        """
        self._arm(widgets)
        adopted = 0
        for current, target, base in triples:
            key = (current.fingerprint, target.fingerprint, base)
            if key not in self._proven:
                self._proven[key] = True
                self._proof_trees[key] = (current, target)
                adopted += 1
        return adopted

    def __len__(self) -> int:
        return len(self._proven)


class _Search:
    """Shared state for one membership query."""

    __slots__ = ("by_path", "annotations", "budget", "memo", "proven", "proof_trees")

    def __init__(
        self,
        by_path: dict[Path, Widget],
        annotations: GrammarAnnotations,
        proven: dict[tuple[int, int, Path], bool] | None = None,
        proof_trees: dict[tuple[int, int, Path], tuple[Node, Node]] | None = None,
    ):
        self.by_path = by_path
        self.annotations = annotations
        self.budget = _WORK_BUDGET
        # (current_fp, target_fp, base) -> bool
        self.memo: dict[tuple[int, int, Path], bool] = {}
        # positive entries shared across queries via ClosureCache
        self.proven = proven if proven is not None else {}
        # subtree record behind each positive key, for persistence; None
        # when no ClosureCache is attached (nothing will be exported)
        self.proof_trees = proof_trees


def expresses(
    widgets: list[Widget],
    initial_query: Node,
    target: Node,
    annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    cache: ClosureCache | None = None,
) -> bool:
    """Is ``target`` within the closure of ``(widgets, initial_query)``?

    ``cache`` optionally carries positive cover proofs between calls (see
    :class:`ClosureCache`); repeated membership tests against the same
    widget set — the recall suites, the session's per-append checks —
    skip re-deriving covers they have already found.
    """
    by_path: dict[Path, Widget] = {}
    for widget in widgets:
        # Initialization produces one widget per path; if a caller passes
        # several, keep the one with the larger domain.
        kept = by_path.get(widget.path)
        if kept is None or widget.domain.size > kept.domain.size:
            by_path[widget.path] = widget
    proven = cache.proven_for(widgets) if cache is not None else None
    proof_trees = cache.proof_trees_for(widgets) if cache is not None else None
    search = _Search(by_path, annotations, proven=proven, proof_trees=proof_trees)
    return _cover(search, initial_query, target, Path.root(), depth=0)


def _entry_similarity(entry: Node, target: Node) -> float:
    """Cheap similarity used to order candidate domain entries: shared
    top-level child fingerprints (higher is more similar)."""
    if entry.fingerprint == target.fingerprint:
        return float("inf")
    entry_children = {c.fingerprint for c in entry.children}
    target_children = {c.fingerprint for c in target.children}
    if not entry_children and not target_children:
        return 0.0
    return len(entry_children & target_children)


def _cover(
    search: _Search,
    current: Node,
    target: Node,
    base: Path,
    depth: int,
) -> bool:
    """Can the widgets transform ``current`` into ``target``?  Both are
    subtrees rooted at absolute path ``base``."""
    if current.fingerprint == target.fingerprint and current.equals(target):
        return True
    if depth > _MAX_DEPTH or search.budget <= 0:
        return False
    key = (current.fingerprint, target.fingerprint, base)
    cached = search.memo.get(key)
    if cached is None:
        cached = search.proven.get(key)
    if cached is not None:
        return cached
    search.budget -= 1
    result = _cover_uncached(search, current, target, base, depth)
    search.memo[key] = result
    if result:
        search.proven[key] = True
        if search.proof_trees is not None:
            search.proof_trees[key] = (current, target)
    return result


def _cover_uncached(
    search: _Search,
    current: Node,
    target: Node,
    base: Path,
    depth: int,
) -> bool:
    leaf_diffs = [
        d
        for d in extract_diffs(
            current, target, prune=True, annotations=search.annotations
        )
        if d.is_leaf
    ]

    pending: list[tuple[Path, object]] = []
    for diff in leaf_diffs:
        absolute = base.concat(diff.path)
        widget = search.by_path.get(absolute)
        if widget is not None and widget.can_express_subtree(diff.t2):
            continue
        pending.append((absolute, diff))
    if not pending:
        return True

    # Try covering leftover diffs through ancestor widgets: substitute a
    # domain subtree at the widget's path, then recursively cover the
    # remaining difference inside that subtree.  Deepest ancestors first.
    candidate_paths = sorted(
        (
            path
            for path in search.by_path
            if base.is_prefix_of(path)
            and any(path.is_prefix_of(p) for p, _ in pending)
        ),
        key=lambda p: p.depth,
        reverse=True,
    )
    for widget_path in candidate_paths:
        group = [(p, d) for p, d in pending if widget_path.is_prefix_of(p)]
        if not group:
            continue
        relative = widget_path.relative_to(base)
        if not target.has_path(relative):
            continue
        target_subtree = target.get(relative)
        widget = search.by_path[widget_path]
        # the ancestor widget may express the whole target subtree itself
        # (extrapolating range sliders, textboxes, exact domain entries)
        solved = widget.can_express_subtree(target_subtree)
        if not solved:
            candidates = [
                entry
                for entry in widget.domain.subtrees()
                if entry.node_type == target_subtree.node_type
            ]
            candidates.sort(
                key=lambda entry: _entry_similarity(entry, target_subtree),
                reverse=True,
            )
            for entry in candidates[:_MAX_ENTRY_TRIES]:
                if search.budget <= 0:
                    break
                if _cover(search, entry, target_subtree, widget_path, depth + 1):
                    solved = True
                    break
        if solved:
            pending = [(p, d) for p, d in pending if not widget_path.is_prefix_of(p)]
            if not pending:
                return True
    return not pending


def apply_widget_choice(query: Node, widget: Widget, entry: Node | None) -> Node:
    """Apply one widget state to a query AST.

    ``entry is None`` removes the element at the widget's path (when
    present); a subtree entry replaces the element, or inserts it when the
    path does not resolve (clamping the insert index into the parent).

    Returns the (possibly unchanged) query.
    """
    path = widget.path
    if entry is None:
        if path.is_root() or not query.has_path(path):
            return query
        node = query.get(path)
        if widget.domain.node_types and node.node_type not in widget.domain.node_types:
            return query
        # never empty a collection: deleting the only projection / group-by
        # column / conjunct would leave an unrenderable clause
        if len(query.get(path.parent()).children) <= 1:
            return query
        return query.delete_at(path)
    if path.is_root():
        return entry
    if query.has_path(path):
        return query.replace_at(path, entry)
    parent = path.parent()
    if not query.has_path(parent):
        return query
    index = min(path.steps[-1], len(query.get(parent).children))
    return query.insert_at(parent, index, entry)


def enumerate_closure(
    widgets: list[Widget],
    initial_query: Node,
    limit: int = 100_000,
    slider_samples: int = 3,
) -> Iterator[Node]:
    """Exhaustively enumerate the interface closure (Appendix D).

    Every widget contributes its domain entries plus a "leave unchanged"
    choice; sliders are sampled at up to ``slider_samples`` values from
    their initialising subtrees (a continuous range cannot be enumerated).
    Widgets are applied ancestors-first so that descendant widgets edit the
    subtree an ancestor substituted in.

    Args:
        widgets: the interface's widget set.
        initial_query: the interface's ``q0``.
        limit: hard cap on the number of produced queries.
        slider_samples: per-widget cap on numeric domain entries for
            extrapolating widgets.

    Enumeration proceeds by the *number of widgets touched*: first the
    initial query, then every single-widget interaction, then every pair,
    and so on.  Under a ``limit`` this samples the cross product fairly —
    the plain lexicographic product would only ever vary the last widgets.

    Yields:
        Distinct query ASTs in the closure, ``q0`` first.
    """
    from itertools import combinations

    ordered = sorted(widgets, key=lambda w: (w.path.depth, w.path))
    choice_lists: list[list[Node | None]] = []
    for widget in ordered:
        domain_entries = list(widget.domain.entries())
        if widget.widget_type.extrapolates and len(domain_entries) > slider_samples:
            domain_entries = domain_entries[:slider_samples]
        choice_lists.append(domain_entries)

    seen: set[int] = set()
    produced = 0

    def produce(query: Node):
        nonlocal produced
        if query.fingerprint in seen:
            return None
        seen.add(query.fingerprint)
        produced += 1
        return query

    first = produce(initial_query)
    if first is not None:
        yield first
        if produced >= limit:
            return

    indices = range(len(ordered))
    for touched in range(1, len(ordered) + 1):
        for subset in combinations(indices, touched):
            for combo in product(*(choice_lists[i] for i in subset)):
                query = initial_query
                for index, choice in zip(subset, combo):
                    query = apply_widget_choice(query, ordered[index], choice)
                result = produce(query)
                if result is not None:
                    yield result
                    if produced >= limit:
                        return
