"""End-to-end pipeline: query log → precision interface (Figure 2a).

    parse → mine interaction graph → map interactions to widgets

Usage::

    from repro import PrecisionInterfaces
    pi = PrecisionInterfaces()
    interface = pi.generate_from_sql([
        "SELECT * FROM t WHERE a = 1",
        "SELECT * FROM t WHERE a = 2",
    ])
    interface.expresses(parse_sql("SELECT * FROM t WHERE a = 1"))
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interface import Interface
from repro.core.mapper import MapperStats, map_interactions
from repro.core.options import PipelineOptions
from repro.errors import LogError
from repro.graph.build import BuildStats, build_interaction_graph
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql

__all__ = ["PrecisionInterfaces", "PipelineRun"]


@dataclass
class PipelineRun:
    """Record of one generation run (timings and graph sizes), used by the
    runtime experiments of Appendix B."""

    n_queries: int = 0
    n_edges: int = 0
    n_diffs: int = 0
    n_pairs_compared: int = 0
    mining_seconds: float = 0.0
    mapping_seconds: float = 0.0
    n_widgets: int = 0
    interface_cost: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.mining_seconds + self.mapping_seconds


class PrecisionInterfaces:
    """The system facade.

    Args:
        options: pipeline configuration; defaults match the paper's
            recommended configuration (window 2, LCA pruning, merging,
            full widget library, g = 1).
    """

    def __init__(self, options: PipelineOptions | None = None):
        self.options = options or PipelineOptions()
        self.last_run: PipelineRun | None = None

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate_from_sql(self, statements: list[str]) -> Interface:
        """Parse raw SQL strings and generate an interface.

        Raises:
            LogError: for an empty log.
            SQLSyntaxError: if any statement fails to parse.
        """
        if not statements:
            raise LogError("cannot generate an interface from an empty log")
        return self.generate([parse_sql(sql) for sql in statements])

    def generate(self, queries: list[Node]) -> Interface:
        """Generate an interface from parsed ASTs (log order preserved).

        Raises:
            LogError: for an empty log.
        """
        if not queries:
            raise LogError("cannot generate an interface from an empty log")
        options = self.options
        build_stats = BuildStats()
        graph = build_interaction_graph(
            queries,
            window=options.window,
            prune=options.lca_pruning,
            annotations=options.annotations,
            stats=build_stats,
        )
        mapper_stats = MapperStats()
        widgets = map_interactions(
            graph.diffs,
            library=options.library,
            annotations=options.annotations,
            merge=options.merge,
            stats=mapper_stats,
        )
        interface = Interface(
            widgets=widgets,
            initial_query=queries[0],
            annotations=options.annotations,
            metadata={
                "n_queries": len(queries),
                "n_edges": graph.n_edges,
                "n_diffs": graph.n_diffs,
                "window": options.window,
                "lca_pruning": options.lca_pruning,
            },
        )
        self.last_run = PipelineRun(
            n_queries=len(queries),
            n_edges=graph.n_edges,
            n_diffs=graph.n_diffs,
            n_pairs_compared=build_stats.n_pairs_compared,
            mining_seconds=build_stats.mining_seconds,
            mapping_seconds=mapper_stats.mapping_seconds,
            n_widgets=len(widgets),
            interface_cost=interface.cost,
        )
        return interface
