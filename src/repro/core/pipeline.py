"""Legacy facade over the staged pipeline (deprecated).

The pipeline of Figure 2a now lives in :mod:`repro.api` as five composable
stages with a uniform ``run(state) -> state`` contract::

    parse → (segment) → mine interaction graph → map to widgets → merge

Preferred usage::

    from repro.api import generate, InterfaceSession

    result = generate([
        "SELECT * FROM t WHERE a = 1",
        "SELECT * FROM t WHERE a = 2",
    ])
    result.interface.expresses(parse_sql("SELECT * FROM t WHERE a = 1"))
    result.run.stage("mine").stats["n_pairs_compared"]   # per-stage stats

    session = InterfaceSession()          # incremental logs
    session.append_sql(first_batch)
    session.append_sql(second_batch)      # only new pairs are re-mined

:class:`PrecisionInterfaces` remains as a thin deprecation shim for one
release: ``generate``/``generate_from_sql`` still return the bare
:class:`~repro.core.interface.Interface` and still populate ``last_run``,
but both emit :class:`DeprecationWarning` — new code should read the
immutable :class:`~repro.api.result.PipelineRun` off the
:class:`~repro.api.result.GenerationResult` instead of the mutable
``last_run`` side-channel.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.core.interface import Interface
from repro.core.options import PipelineOptions
from repro.errors import LogError
from repro.sqlparser.astnodes import Node

if TYPE_CHECKING:
    from repro.api.result import PipelineRun

__all__ = ["PrecisionInterfaces", "PipelineRun"]


def __getattr__(name: str):
    # PipelineRun is re-exported lazily (PEP 562): repro.api imports
    # repro.core submodules, so an eager import here would be circular
    if name == "PipelineRun":
        from repro.api.result import PipelineRun

        return PipelineRun
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _deprecated(what: str, instead: str) -> None:
    warnings.warn(
        f"{what} is deprecated; use {instead} (see repro.api)",
        DeprecationWarning,
        stacklevel=3,
    )


class PrecisionInterfaces:
    """Deprecated system facade — use :func:`repro.api.generate`.

    Args:
        options: pipeline configuration; defaults match the paper's
            recommended configuration (window 2, LCA pruning, merging,
            full widget library, g = 1).
    """

    def __init__(self, options: PipelineOptions | None = None):
        self.options = options or PipelineOptions()
        self._last_run: PipelineRun | None = None

    @property
    def last_run(self) -> PipelineRun | None:
        """Deprecated mutable side-channel; read ``result.run`` instead."""
        _deprecated(
            "PrecisionInterfaces.last_run", "GenerationResult.run"
        )
        return self._last_run

    @last_run.setter
    def last_run(self, value: PipelineRun | None) -> None:
        _deprecated(
            "PrecisionInterfaces.last_run", "GenerationResult.run"
        )
        self._last_run = value

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def generate_from_sql(self, statements: list[str]) -> Interface:
        """Parse raw SQL strings and generate an interface (deprecated).

        Raises:
            LogError: for an empty log.
            SQLSyntaxError: if any statement fails to parse.
        """
        _deprecated(
            "PrecisionInterfaces.generate_from_sql", "repro.api.generate"
        )
        if not statements:
            raise LogError("cannot generate an interface from an empty log")
        return self._run(list(statements))

    def generate(self, queries: list[Node]) -> Interface:
        """Generate an interface from parsed ASTs (deprecated).

        Raises:
            LogError: for an empty log.
        """
        _deprecated("PrecisionInterfaces.generate", "repro.api.generate")
        if not queries:
            raise LogError("cannot generate an interface from an empty log")
        return self._run(list(queries))

    def _run(self, log: list) -> Interface:
        # imported lazily: repro.api itself imports repro.core submodules,
        # so a module-level import here would be circular
        from repro.api.pipeline import generate

        result = generate(log, options=self.options)
        self._last_run = result.run
        return result.interface
