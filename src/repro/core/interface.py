"""The interface model (Section 4.4).

An interface ``I = (W_I, q0_I)`` is a set of widgets plus an initial query.
Its *cost* is the sum of its widgets' costs; its *expressiveness* with
respect to a query log is the fraction of the log inside its closure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.closure import ClosureCache, enumerate_closure, expresses
from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations
from repro.sqlparser.render import render_sql
from repro.widgets.base import Widget

__all__ = ["Interface", "as_interface"]


def as_interface(obj) -> "Interface":
    """Unwrap a result-like object (anything carrying an ``interface``
    attribute, e.g. :class:`~repro.api.result.GenerationResult`) to its
    :class:`Interface`; plain interfaces pass through unchanged."""
    return getattr(obj, "interface", obj)


@dataclass
class Interface:
    """A generated precision interface.

    Attributes:
        widgets: the interactive widget set ``W_I``.
        initial_query: the initial query ``q0_I`` (we use the earliest query
            in the log, as the paper does).
        annotations: grammar annotations used for closure reasoning.
        metadata: free-form provenance (mining stats, log name, ...).
    """

    widgets: list[Widget]
    initial_query: Node
    annotations: GrammarAnnotations = SQL_ANNOTATIONS
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # §4.4 metrics
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """``C_I = sum of widget costs``."""
        return sum(widget.cost for widget in self.widgets)

    @property
    def n_widgets(self) -> int:
        return len(self.widgets)

    def expresses(self, query: Node, cache: ClosureCache | None = None) -> bool:
        """Closure membership for one query.

        ``cache`` optionally carries positive cover proofs between calls
        (see :class:`~repro.core.closure.ClosureCache`) — worthwhile for
        repeated membership tests against the same widget set.
        """
        return expresses(
            self.widgets, self.initial_query, query, self.annotations, cache=cache
        )

    def expressiveness(
        self, queries: list[Node], cache: ClosureCache | None = None
    ) -> float:
        """``|closure ∩ Q| / |Q|`` over the given log (a.k.a. recall when
        the log is a hold-out set).  Shares one membership-proof cache
        across the whole suite (callers may pass their own longer-lived
        :class:`~repro.core.closure.ClosureCache`)."""
        if not queries:
            return 1.0
        cache = cache if cache is not None else ClosureCache()
        hits = sum(1 for query in queries if self.expresses(query, cache=cache))
        return hits / len(queries)

    def closure(self, limit: int = 100_000, slider_samples: int = 3) -> Iterator[Node]:
        """Enumerate the closure (used by the precision experiment)."""
        return enumerate_closure(
            self.widgets, self.initial_query, limit=limit, slider_samples=slider_samples
        )

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line, human-readable summary of the interface."""
        lines = [
            f"Interface: {self.n_widgets} widgets, cost {self.cost:.0f}",
            f"initial query: {render_sql(self.initial_query)}",
        ]
        for widget in sorted(self.widgets, key=lambda w: (w.path.depth, w.path)):
            lines.append(f"  - {widget.widget_type.name}@{widget.path} "
                         f"|domain|={widget.domain.size} cost={widget.cost:.0f}")
        return "\n".join(lines)

    def widget_summary(self) -> list[tuple[str, str, int]]:
        """``(widget type, path, domain size)`` triples, sorted by path —
        the representation the figure benches print."""
        return [
            (w.widget_type.name, str(w.path), w.domain.size)
            for w in sorted(self.widgets, key=lambda w: (w.path.depth, w.path))
        ]
