"""Core contribution: interaction mapper, interface model, closure.

The end-to-end pipeline lives in :mod:`repro.api` as composable stages;
this package holds the algorithms they orchestrate — Initialize/Merge
(with their incremental, partition-scoped variants), the interface model,
and closure membership (with a reusable proof cache)."""

from repro.core.closure import (
    ClosureCache,
    apply_widget_choice,
    enumerate_closure,
    expresses,
)
from repro.core.interface import Interface
from repro.core.mapper import (
    MapCache,
    MapperStats,
    PartitionIndex,
    initialize,
    initialize_incremental,
    initialize_indexed,
    map_interactions,
    merge_widgets,
    merge_widgets_incremental,
    pick_widget,
)
from repro.core.options import PipelineOptions

__all__ = [
    "Interface",
    "PipelineOptions",
    "MapperStats",
    "MapCache",
    "PartitionIndex",
    "pick_widget",
    "initialize",
    "initialize_incremental",
    "initialize_indexed",
    "merge_widgets",
    "merge_widgets_incremental",
    "map_interactions",
    "ClosureCache",
    "expresses",
    "enumerate_closure",
    "apply_widget_choice",
]
