"""Core contribution: interaction mapper, interface model, closure.

The end-to-end pipeline now lives in :mod:`repro.api` as composable
stages; :class:`~repro.core.pipeline.PrecisionInterfaces` remains here as
a deprecation shim."""

from repro.core.closure import apply_widget_choice, enumerate_closure, expresses
from repro.core.interface import Interface
from repro.core.mapper import (
    MapperStats,
    initialize,
    map_interactions,
    merge_widgets,
    pick_widget,
)
from repro.core.options import PipelineOptions
from repro.core.pipeline import PipelineRun, PrecisionInterfaces

__all__ = [
    "Interface",
    "PrecisionInterfaces",
    "PipelineOptions",
    "PipelineRun",
    "MapperStats",
    "pick_widget",
    "initialize",
    "merge_widgets",
    "map_interactions",
    "expresses",
    "enumerate_closure",
    "apply_widget_choice",
]
