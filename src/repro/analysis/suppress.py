"""Inline suppression comments.

Two forms are honoured, mirroring the usual linter conventions:

* trailing, on the offending line::

      path.unlink()  # repro-lint: disable=RL001  -- recovery path, lock held by caller

  The suppression applies to that physical line only.

* standalone, on its own line::

      # repro-lint: disable=RL001,RL003
      path.unlink()

  The suppression applies to the next line that holds code (skipping
  blank lines and further comments), which is how multi-rule or long
  justifications stay readable.

Anything after the id list (e.g. a ``--`` justification) is ignored, and
suppressing is per-rule: ``disable=RL001`` never silences RL002.  A bare
``disable`` with no ids suppresses nothing — it is reported by the engine
as unparseable rather than acting as a blanket waiver.
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["SuppressionIndex", "scan_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint\s*:\s*disable\s*=\s*(?P<ids>RL[0-9]{3}(?:\s*,\s*RL[0-9]{3})*)"
)
_MALFORMED = re.compile(r"#\s*repro-lint\s*:")


class SuppressionIndex:
    """Maps physical line numbers to the rule ids suppressed there."""

    def __init__(
        self,
        by_line: dict[int, frozenset[str]],
        malformed: list[int],
    ) -> None:
        self._by_line = by_line
        #: lines carrying a ``repro-lint:`` marker that did not parse
        self.malformed = malformed
        #: (line, rule_id) pairs that actually silenced a finding
        self.used: set[tuple[int, str]] = set()

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        ids = self._by_line.get(line)
        if ids is not None and rule_id in ids:
            self.used.add((line, rule_id))
            return True
        return False

    def __len__(self) -> int:
        return len(self._by_line)


def scan_suppressions(source: str) -> SuppressionIndex:
    """Build the suppression index for one file's source text.

    Tokenizing (rather than regex-scanning raw lines) keeps directives
    inside string literals from being honoured.  A file that fails to
    tokenize yields an empty index; the parse error is reported by the
    engine separately.
    """
    by_line: dict[int, frozenset[str]] = {}
    malformed: list[int] = []
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return SuppressionIndex({}, [])
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            if _MALFORMED.search(token.string):
                malformed.append(token.start[0])
            continue
        ids = frozenset(
            part.strip() for part in match.group("ids").split(",")
        )
        comment_line = token.start[0]
        text_before = lines[comment_line - 1][: token.start[1]].strip()
        if text_before:
            target = comment_line
        else:
            target = _next_code_line(lines, comment_line)
        by_line[target] = by_line.get(target, frozenset()) | ids
    return SuppressionIndex(by_line, malformed)


def _next_code_line(lines: list[str], comment_line: int) -> int:
    """First line after ``comment_line`` holding code (1-based); falls
    back to the comment's own line at end of file."""
    for offset, text in enumerate(lines[comment_line:], start=comment_line + 1):
        stripped = text.strip()
        if stripped and not stripped.startswith("#"):
            return offset
    return comment_line
