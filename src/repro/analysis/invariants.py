"""The shipped rules — each encodes one repo invariant.

===== ======================== ======================================
id    name                     invariant
===== ======================== ======================================
RL001 lock-discipline          store mutations run under ``StoreLock``
RL002 salted-hash-hygiene      salted hashes are never serialized
RL003 frozen-result-immutable  result objects are never mutated
RL004 proof-polarity           only positive proofs are exported
RL005 stage-purity             ``Stage.run`` returns state, mutates
                               nothing module-level
RL006 compiled-artifact-       compiled-page payloads never embed
      hygiene                  salted node hashes
===== ======================== ======================================

The rules are deliberately *lexical*: they reason about one file at a
time with no cross-module inference, trading recall for zero false
"cannot analyse" noise.  Where a rule needs vocabulary (class names,
sink names), it reads :class:`~repro.analysis.config.LintConfig` so
coverage can grow from ``pyproject.toml``.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext, dotted_name, walk_in_scope
from repro.analysis.rules import Rule, register

__all__ = [
    "LockDiscipline",
    "SaltedHashHygiene",
    "FrozenResultImmutability",
    "ProofPolarity",
    "StagePurity",
    "CompiledArtifactHygiene",
]

#: method names that mutate their receiver in place (RL005)
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    }
)


def _callee_name(call: ast.Call) -> str | None:
    """The simple (rightmost) name of a call target."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _root_name(node: ast.AST) -> str | None:
    """The leftmost ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _identifiers(node: ast.AST) -> set[str]:
    """Every Name id and Attribute attr mentioned in a subtree."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


@register
class LockDiscipline(Rule):
    """RL001: persistence mutations in store modules happen inside
    ``with <lock>.held()``.

    The :class:`~repro.cache.store.GraphStore` serialises multi-file
    operations (prune, invalidate, derived-table saves) through an
    advisory :class:`~repro.cache.lock.StoreLock`; a mutation outside
    the lock can interleave with another process and leave the four
    tables mutually inconsistent.  Deliberately lock-free sites (the
    single-file atomic graph save) carry a justified inline suppression.
    """

    id = "RL001"
    name = "lock-discipline"
    description = (
        "store-owned writes/replaces/unlinks must be lexically inside "
        "'with ...lock.held()'"
    )

    def start_module(self, ctx: ModuleContext) -> None:
        self._active = ctx.path_matches(ctx.config.store_modules)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if not self._active or not isinstance(node, ast.Call):
            return
        name = _callee_name(node)
        if name not in ctx.config.store_mutating_calls:
            return
        if not ctx.in_lock_block():
            ctx.report(
                self,
                node,
                f"store mutation '{name}(...)' outside 'with ...lock.held()'",
            )


@register
class SaltedHashHygiene(Rule):
    """RL002: ``Node.fingerprint``/``Node.skeleton`` never reach a
    serialization sink.

    Both hashes build on ``hash()``, whose string salt differs per
    process; a persisted value silently poisons every cross-process
    cache lookup that compares against it.  The rule flags salted
    attribute reads — and names assigned from them — appearing in
    ``json.dump``/``json.dumps`` arguments, in ``__getstate__`` return
    values, or in the return values of ``*_to_dict`` codec functions.
    """

    id = "RL002"
    name = "salted-hash-hygiene"
    description = (
        "process-salted fingerprint/skeleton values must not flow into "
        "json.dump/serialize payloads or __getstate__ results"
    )

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.Module):
            self._check_scope(node, ctx, returns_are_sinks=False)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            salted_returns = node.name == "__getstate__" or node.name.endswith(
                "_to_dict"
            )
            self._check_scope(node, ctx, returns_are_sinks=salted_returns)

    def _check_scope(
        self,
        scope: ast.AST,
        ctx: ModuleContext,
        returns_are_sinks: bool,
    ) -> None:
        tainted = self._tainted_names(scope, ctx)
        for node in walk_in_scope(scope):
            if isinstance(node, ast.Call) and self._is_serialize_sink(node, ctx):
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    self._flag_salted(arg, tainted, ctx, "a serialization call")
            elif returns_are_sinks and isinstance(node, ast.Return):
                if node.value is not None:
                    self._flag_salted(
                        node.value, tainted, ctx, "a serialized return value"
                    )

    def _tainted_names(self, scope: ast.AST, ctx: ModuleContext) -> set[str]:
        """Names bound (in this scope) from a salted attribute read."""
        tainted: set[str] = set()
        salted = set(ctx.config.salted_attributes)
        for node in walk_in_scope(scope):
            value: ast.AST | None = None
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            if value is None:
                continue
            if any(
                isinstance(sub, ast.Attribute) and sub.attr in salted
                for sub in ast.walk(value)
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        return tainted

    def _is_serialize_sink(self, call: ast.Call, ctx: ModuleContext) -> bool:
        name = dotted_name(call)
        if name is None:
            return False
        return any(
            name == sink or name.endswith("." + sink)
            for sink in ctx.config.serialize_sinks
        )

    def _flag_salted(
        self,
        expr: ast.AST,
        tainted: set[str],
        ctx: ModuleContext,
        where: str,
    ) -> None:
        salted = set(ctx.config.salted_attributes)
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Attribute) and sub.attr in salted:
                ctx.report(
                    self,
                    sub,
                    f"process-salted '.{sub.attr}' value flows into {where}",
                )
            elif isinstance(sub, ast.Name) and sub.id in tainted:
                ctx.report(
                    self,
                    sub,
                    f"'{sub.id}' (bound from a salted hash) flows into {where}",
                )


@register
class FrozenResultImmutability(Rule):
    """RL003: no attribute assignment on frozen result instances.

    ``GenerationResult``/``PipelineRun``/``StageReport`` are frozen
    dataclasses; the blessed escape hatch ``object.__setattr__`` is
    allowed only on ``self`` inside the class's own constructors
    (``__init__``/``__new__``/``__post_init__``/``__setstate__``).
    Plain attribute stores on names bound to (or annotated as) a result
    instance are flagged wherever they appear.
    """

    id = "RL003"
    name = "frozen-result-immutable"
    description = (
        "no attribute assignment on GenerationResult/PipelineRun/"
        "StageReport instances outside their own constructors"
    )

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.Call):
            self._check_setattr(node, ctx)
        elif isinstance(node, ast.Module):
            self._check_scope(node, ctx)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_scope(node, ctx)

    def _check_setattr(self, call: ast.Call, ctx: ModuleContext) -> None:
        if dotted_name(call) != "object.__setattr__" or not call.args:
            return
        target = call.args[0]
        function = ctx.current_function
        allowed = (
            isinstance(target, ast.Name)
            and target.id == "self"
            and ctx.current_class is not None
            and function is not None
            and function.name in ctx.config.frozen_allowed_methods
        )
        if not allowed:
            ctx.report(
                self,
                call,
                "object.__setattr__ outside a constructor defeats frozen "
                "result immutability",
            )

    def _check_scope(self, scope: ast.AST, ctx: ModuleContext) -> None:
        frozen = set(ctx.config.frozen_classes)
        bound: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in [
                *scope.args.posonlyargs,
                *scope.args.args,
                *scope.args.kwonlyargs,
            ]:
                if arg.annotation is not None and self._mentions_frozen(
                    arg.annotation, frozen
                ):
                    bound.add(arg.arg)
        for node in walk_in_scope(scope):
            value: ast.AST | None = None
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                if self._mentions_frozen(node.annotation, frozen) and isinstance(
                    node.target, ast.Name
                ):
                    bound.add(node.target.id)
                value, targets = node.value, [node.target]
            if (
                value is not None
                and isinstance(value, ast.Call)
                and _callee_name(value) in frozen
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
        if not bound:
            return
        for node in walk_in_scope(scope):
            targets = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in bound
                ):
                    ctx.report(
                        self,
                        target,
                        f"attribute assignment on frozen result instance "
                        f"'{target.value.id}'",
                    )

    @staticmethod
    def _mentions_frozen(annotation: ast.AST, frozen: set[str]) -> bool:
        for sub in ast.walk(annotation):
            if isinstance(sub, ast.Name) and sub.id in frozen:
                return True
            if isinstance(sub, ast.Attribute) and sub.attr in frozen:
                return True
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                if any(name in sub.value for name in frozen):
                    return True
        return False


@register
class ProofPolarity(Rule):
    """RL004: only positive proofs reach proof export sites.

    The closure search memo stores *mixed* results — negatives can be
    budget artefacts of one search configuration, so persisting them
    would wrongly prune reachable closures for every later process.
    The rule flags negative-polarity identifiers (the search ``memo``,
    ``negative*``, ``disproven``, ...) in the argument lists of proof
    sinks and anywhere inside an ``export_proofs`` implementation.
    """

    id = "RL004"
    name = "proof-polarity"
    description = (
        "only positive proofs may reach export_proofs/proofs_to_dict/"
        "import_proofs call sites"
    )

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if isinstance(node, ast.Call):
            name = _callee_name(node)
            if name in ctx.config.proof_sinks:
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    self._flag_negatives(arg, ctx, f"argument to '{name}'")
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "export_proofs":
                for stmt in node.body:
                    self._flag_negatives(stmt, ctx, "an export_proofs body")

    def _flag_negatives(self, node: ast.AST, ctx: ModuleContext, where: str) -> None:
        # short entries ("memo") match exactly so that e.g. 'diff_memo'
        # stays clean; longer entries match as substrings.  Leading
        # underscores are not polarity information ('_memo' is the memo)
        sources = ctx.config.negative_sources
        for identifier in sorted(_identifiers(node)):
            lowered = identifier.lower().lstrip("_")
            if any(
                lowered == source or (len(source) > 4 and source in lowered)
                for source in sources
            ):
                ctx.report(
                    self,
                    node,
                    f"negative-polarity source '{identifier}' in {where}; "
                    "only positive proofs may be exported",
                )


@register
class StagePurity(Rule):
    """RL005: ``Stage.run`` returns a state and mutates nothing global.

    The pipeline replays, shards and resumes stages; a stage that
    returns ``None`` breaks the ``run(state) -> state`` chain, and one
    that rebinds or mutates module-level bindings carries hidden state
    across runs and across pool workers.  A body whose last statement
    ``raise``\\ s (the abstract base) is exempt from the return check.
    """

    id = "RL005"
    name = "stage-purity"
    description = (
        "Stage.run implementations must return a state and not rebind "
        "module-level mutables"
    )

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if not isinstance(node, ast.ClassDef):
            return
        if not self._is_stage(node, ctx):
            return
        for stmt in node.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "run"
            ):
                self._check_run(stmt, node.name, ctx)

    def _is_stage(self, node: ast.ClassDef, ctx: ModuleContext) -> bool:
        bases = set(ctx.config.stage_bases)
        for base in node.bases:
            if isinstance(base, ast.Name) and base.id in bases:
                return True
            if isinstance(base, ast.Attribute) and base.attr in bases:
                return True
        return False

    def _check_run(
        self,
        run: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str,
        ctx: ModuleContext,
    ) -> None:
        returns_value = False
        for node in walk_in_scope(run):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                ctx.report(
                    self,
                    node,
                    "Stage.run must not rebind enclosing-scope names",
                )
            elif isinstance(node, ast.Return):
                if node.value is None:
                    ctx.report(
                        self, node, "bare return in Stage.run; return the state"
                    )
                else:
                    returns_value = True
            else:
                self._check_module_mutation(node, ctx)
        body_ends_in_raise = bool(run.body) and isinstance(run.body[-1], ast.Raise)
        if not returns_value and not body_ends_in_raise:
            ctx.report(
                self,
                run,
                f"Stage.run in '{class_name}' never returns a state",
            )

    def _check_module_mutation(self, node: ast.AST, ctx: ModuleContext) -> None:
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = _root_name(target)
                if root is not None and root in ctx.module_names:
                    ctx.report(
                        self,
                        target,
                        f"Stage.run mutates module-level binding '{root}'",
                    )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            root = _root_name(node.func.value)
            if root is not None and root in ctx.module_names:
                ctx.report(
                    self,
                    node,
                    f"Stage.run mutates module-level binding '{root}' "
                    f"via .{node.func.attr}()",
                )


@register
class CompiledArtifactHygiene(Rule):
    """RL006: compiled-artifact payloads never embed salted node hashes.

    RL002's invariant applied to the incremental compiler: the page
    states and patches built in ``repro/compiler/`` are persisted (the
    store's ``compiled`` table) and streamed to remote subscribers, so a
    ``Node.fingerprint``/``skeleton`` value embedded in one poisons every
    cross-process replay.  RL002 watches ``json.dump`` and ``*_to_dict``;
    the compiler's payloads are built by ``to_state``/``make_patch``/
    ``apply_patch`` (and any ``*_to_state``), which this rule treats as
    sinks.

    The compiler legitimately names its *stable* content digests
    ``fingerprint`` (``CompiledPage.fingerprint`` is a sha256 prefix), so
    a bare attribute-name match would drown in false positives.  The rule
    instead flags salted reads whose receiver chain mentions a parsed-AST
    identifier (``query.fingerprint``, ``node.skeleton``,
    ``interface.initial_query.fingerprint``, ...) — the
    ``node_identifiers`` vocabulary — plus names bound from such reads.
    In-memory uses (proof keys, memo lookups) outside the builder returns
    stay clean.
    """

    id = "RL006"
    name = "compiled-artifact-hygiene"
    description = (
        "salted Node fingerprint/skeleton values must not flow into "
        "compiled-payload builders (to_state/make_patch/apply_patch)"
    )

    def start_module(self, ctx: ModuleContext) -> None:
        self._active = ctx.path_matches(ctx.config.compiled_modules)

    def visit(self, node: ast.AST, ctx: ModuleContext) -> None:
        if not self._active:
            return
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if not self._is_builder(node.name, ctx):
            return
        tainted = self._tainted_names(node, ctx)
        for sub in walk_in_scope(node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                self._flag(sub.value, tainted, ctx, node.name)

    @staticmethod
    def _is_builder(name: str, ctx: ModuleContext) -> bool:
        return name in ctx.config.compiled_payload_builders or name.endswith(
            "_to_state"
        )

    def _salted_node_reads(
        self, expr: ast.AST, ctx: ModuleContext
    ) -> list[ast.Attribute]:
        """Salted attribute reads whose receiver is a parsed-AST value."""
        salted = set(ctx.config.salted_attributes)
        return [
            sub
            for sub in ast.walk(expr)
            if isinstance(sub, ast.Attribute)
            and sub.attr in salted
            and self._node_receiver(sub.value, ctx)
        ]

    @staticmethod
    def _node_receiver(receiver: ast.AST, ctx: ModuleContext) -> bool:
        sources = ctx.config.node_identifiers
        for identifier in _identifiers(receiver):
            lowered = identifier.lower().lstrip("_")
            if any(
                lowered == source or (len(source) > 4 and source in lowered)
                for source in sources
            ):
                return True
        return False

    def _tainted_names(self, scope: ast.AST, ctx: ModuleContext) -> set[str]:
        """Names bound (in the builder body) from a salted node read."""
        tainted: set[str] = set()
        for node in walk_in_scope(scope):
            value: ast.AST | None = None
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.NamedExpr):
                value, targets = node.value, [node.target]
            if value is None or not self._salted_node_reads(value, ctx):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    tainted.add(target.id)
        return tainted

    def _flag(
        self,
        expr: ast.AST,
        tainted: set[str],
        ctx: ModuleContext,
        builder: str,
    ) -> None:
        for read in self._salted_node_reads(expr, ctx):
            ctx.report(
                self,
                read,
                f"process-salted '.{read.attr}' of a query/node value "
                f"flows into compiled payload builder '{builder}'",
            )
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and sub.id in tainted:
                ctx.report(
                    self,
                    sub,
                    f"'{sub.id}' (bound from a salted node hash) flows "
                    f"into compiled payload builder '{builder}'",
                )
