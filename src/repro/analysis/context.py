"""The per-file walk: scope and ``with``-block tracking plus AST helpers.

:class:`LintWalker` drives one preorder traversal of a module per lint
run, maintaining the class/function scope stack and the stack of active
``with`` blocks, and dispatches every node to every active rule.  Rules
read the traversal state through :class:`ModuleContext` — the same object
they report findings on.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from pathlib import PurePath
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.config import LintConfig
    from repro.analysis.rules import Rule

__all__ = [
    "ModuleContext",
    "LintWalker",
    "dotted_name",
    "walk_in_scope",
    "module_level_bindings",
]

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def dotted_name(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain (optionally wrapped in a
    call) as ``"a.b.c"``; ``None`` when any link is not a plain name.

    ``dotted_name(self._lock.held())`` -> ``"self._lock.held"``.
    """
    if isinstance(node, ast.Call):
        node = node.func
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def walk_in_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Preorder walk of ``root``'s body that does not descend into nested
    function or class definitions — the unit rules reason about when they
    analyse one body."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if node is not root and isinstance(child, _SCOPE_NODES):
                continue
            if node is root and isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def module_level_bindings(tree: ast.Module) -> frozenset[str]:
    """Names bound by module-level statements (assignments, defs,
    imports) — the vocabulary RL005 checks stage bodies against."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(_target_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(stmt.target))
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                bound = alias.asname or alias.name.split(".")[0]
                names.add(bound)
    return frozenset(names)


def _target_names(target: ast.AST) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for element in target.elts:
            out.update(_target_names(element))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()


class ModuleContext:
    """Traversal state for one file, shared by all rules.

    Attributes:
        path: display path of the file being linted.
        tree: the parsed module.
        config: the effective :class:`~repro.analysis.config.LintConfig`.
        module_names: names bound at module level (see
            :func:`module_level_bindings`).
        findings: findings reported so far (pre-suppression).
    """

    def __init__(self, path: str, tree: ast.Module, config: "LintConfig") -> None:
        self.path = path
        self.tree = tree
        self.config = config
        self.module_names = module_level_bindings(tree)
        self.findings: list[Finding] = []
        self._class_stack: list[ast.ClassDef] = []
        self._function_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self._with_items: list[str] = []

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=rule.id,
                message=message,
            )
        )

    # ------------------------------------------------------------------
    # scope queries
    # ------------------------------------------------------------------
    @property
    def current_class(self) -> ast.ClassDef | None:
        return self._class_stack[-1] if self._class_stack else None

    @property
    def current_function(self) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        return self._function_stack[-1] if self._function_stack else None

    def path_matches(self, patterns: tuple[str, ...]) -> bool:
        """fnmatch of this file's posix path against any pattern."""
        posix = PurePath(self.path).as_posix()
        return any(fnmatch(posix, pattern) for pattern in patterns)

    # ------------------------------------------------------------------
    # with-block queries
    # ------------------------------------------------------------------
    def in_lock_block(self) -> bool:
        """True when the walk is lexically inside a ``with`` whose context
        expression is a store-lock acquisition.

        The acquisition is recognised structurally: a call whose final
        attribute is one of ``config.lock_methods`` on a receiver chain
        that mentions a lock (``self._lock.held()``,
        ``store._lock.held()``, ...).
        """
        for name in self._with_items:
            head, _, method = name.rpartition(".")
            if method in self.config.lock_methods and "lock" in head.lower():
                return True
        return False


class LintWalker:
    """One preorder traversal dispatching to all active rules."""

    def __init__(self, rules: list["Rule"]) -> None:
        self._rules = rules

    def run(self, ctx: ModuleContext) -> None:
        for rule in self._rules:
            rule.start_module(ctx)
        self._walk(ctx.tree, ctx)
        for rule in self._rules:
            rule.finish_module(ctx)

    def _walk(self, node: ast.AST, ctx: ModuleContext) -> None:
        for rule in self._rules:
            rule.visit(node, ctx)

        if isinstance(node, ast.ClassDef):
            ctx._class_stack.append(node)
            try:
                self._walk_children(node, ctx)
            finally:
                ctx._class_stack.pop()
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            ctx._function_stack.append(node)
            try:
                self._walk_children(node, ctx)
            finally:
                ctx._function_stack.pop()
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            names = [
                name
                for item in node.items
                if (name := dotted_name(item.context_expr)) is not None
            ]
            ctx._with_items.extend(names)
            try:
                self._walk_children(node, ctx)
            finally:
                del ctx._with_items[len(ctx._with_items) - len(names):]
        else:
            self._walk_children(node, ctx)

    def _walk_children(self, node: ast.AST, ctx: ModuleContext) -> None:
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx)
