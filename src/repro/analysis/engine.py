"""Running rules over sources, files and directory trees."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path, PurePath
from typing import Iterable, Sequence

from repro.analysis.config import LintConfig
from repro.analysis.context import LintWalker, ModuleContext
from repro.analysis.findings import PARSE_ERROR_ID, Finding
from repro.analysis.rules import Rule, resolve_rules
from repro.analysis.suppress import scan_suppressions

__all__ = ["LintRun", "lint_source", "lint_paths", "iter_python_files"]


@dataclass
class LintRun:
    """The outcome of linting a set of files."""

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "n_files": self.n_files,
            "n_findings": len(self.findings),
            "n_suppressed": self.n_suppressed,
        }


def lint_source(
    source: str,
    path: str,
    config: LintConfig | None = None,
    rules: Sequence[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """Lint one file's text.

    Returns ``(findings, n_suppressed)``; findings are sorted and have
    inline suppressions already applied.  A syntactically invalid file
    yields a single non-suppressible :data:`PARSE_ERROR_ID` finding.
    """
    config = config or LintConfig()
    active = list(rules) if rules is not None else resolve_rules(
        config.select, config.ignore
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) or 1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"cannot parse file: {exc.msg}",
                )
            ],
            0,
        )
    ctx = ModuleContext(path, tree, config)
    LintWalker(active).run(ctx)
    suppressions = scan_suppressions(source)
    kept = [
        finding
        for finding in ctx.findings
        if not suppressions.is_suppressed(finding.line, finding.rule_id)
    ]
    for line in suppressions.malformed:
        kept.append(
            Finding(
                path=path,
                line=line,
                col=1,
                rule_id=PARSE_ERROR_ID,
                message="unparseable repro-lint directive "
                "(expected '# repro-lint: disable=RLxxx[,RLyyy]')",
            )
        )
    n_suppressed = len(ctx.findings) - sum(
        1 for finding in kept if finding.rule_id != PARSE_ERROR_ID
    )
    return sorted(kept), n_suppressed


def iter_python_files(
    paths: Iterable[Path],
    config: LintConfig | None = None,
) -> list[Path]:
    """Expand files and directories into the sorted list of ``.py`` files
    to lint, honouring ``config.exclude`` patterns."""
    config = config or LintConfig()
    out: set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py" or path.is_file():
            out.add(path)
    kept = [
        path
        for path in out
        if not any(
            fnmatch(PurePath(path).as_posix(), pattern)
            for pattern in config.exclude
        )
    ]
    return sorted(kept)


def lint_paths(
    paths: Iterable[str | Path],
    config: LintConfig | None = None,
) -> LintRun:
    """Lint files and directory trees.

    Raises:
        FileNotFoundError: when a requested path does not exist (a CLI
            typo should fail the run, not lint zero files successfully).
    """
    config = config or LintConfig()
    resolved: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        resolved.append(path)
    rules = resolve_rules(config.select, config.ignore)
    run = LintRun()
    for file_path in iter_python_files(resolved, config):
        source = file_path.read_text(encoding="utf-8")
        findings, n_suppressed = lint_source(
            source, str(file_path), config, rules
        )
        run.findings.extend(findings)
        run.n_suppressed += n_suppressed
        run.n_files += 1
    run.findings.sort()
    return run
