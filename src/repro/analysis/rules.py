"""Rule base class and registry.

Every rule carries a stable ``RLxxx`` identifier; identifiers are never
reused, so a ``# repro-lint: disable=RL001`` comment written today keeps
meaning the same invariant forever.  Rules register themselves with the
:func:`register` decorator at import time (:mod:`repro.analysis.invariants`
imports define the shipped set).
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Callable, ClassVar, Iterable, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import ModuleContext

__all__ = [
    "Rule",
    "register",
    "all_rule_classes",
    "get_rule_class",
    "resolve_rules",
]

_RULE_ID = re.compile(r"^RL[0-9]{3}$")

_REGISTRY: dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and override any of the three
    hooks.  ``visit`` is called once per AST node in a preorder walk with
    scope/``with`` tracking already established on the context; rules
    needing whole-function reasoning (dataflow within one body) typically
    react to ``ast.FunctionDef`` nodes and inspect the subtree themselves.
    """

    id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def start_module(self, ctx: "ModuleContext") -> None:
        """Called once before the walk of a file begins."""

    def visit(self, node: ast.AST, ctx: "ModuleContext") -> None:
        """Called for every node in the module, in preorder."""

    def finish_module(self, ctx: "ModuleContext") -> None:
        """Called once after the walk of a file completes."""


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry.

    Raises:
        ValueError: on a malformed id or an id collision — both are
            programming errors in a new rule, caught at import time.
    """
    if not _RULE_ID.match(cls.id):
        raise ValueError(f"rule id {cls.id!r} does not match RLxxx")
    existing = _REGISTRY.get(cls.id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.id} ({existing.__name__})")
    if not cls.name or not cls.description:
        raise ValueError(f"rule {cls.id} needs a name and description")
    _REGISTRY[cls.id] = cls
    return cls


def all_rule_classes() -> list[Type[Rule]]:
    """Registered rule classes, sorted by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule_class(rule_id: str) -> Type[Rule]:
    """Look one rule up by id.

    Raises:
        KeyError: for an unknown id.
    """
    return _REGISTRY[rule_id]


def resolve_rules(
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
    factory: Callable[[Type[Rule]], Rule] | None = None,
) -> list[Rule]:
    """Instantiate the active rule set.

    ``select`` limits the run to the listed ids (empty means all
    registered rules); ``ignore`` then removes ids.  Unknown ids raise
    ``KeyError`` so a typo in configuration fails loudly instead of
    silently disabling a rule.
    """
    selected = list(select) or sorted(_REGISTRY)
    for rule_id in list(select) + list(ignore):
        if rule_id not in _REGISTRY:
            raise KeyError(rule_id)
    ignored = set(ignore)
    make = factory or (lambda cls: cls())
    return [
        make(_REGISTRY[rule_id])
        for rule_id in selected
        if rule_id not in ignored
    ]
