"""Command-line entry point shared by ``repro lint`` and
``python -m repro.analysis``.

Exit codes follow the usual linter contract: 0 clean, 1 findings,
2 usage or environment error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import lint_paths
from repro.analysis.report import render_json, render_rule_list, render_text

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared with the top-level
    ``repro lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: configured targets)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="explicit pyproject.toml (default: discovered upward from cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )


def run_lint(
    paths: Sequence[str] = (),
    json_output: bool = False,
    select: str | None = None,
    ignore: str | None = None,
    config_path: str | None = None,
    list_rules: bool = False,
    stdout: TextIO | None = None,
    stderr: TextIO | None = None,
) -> int:
    """Execute one lint run; returns the process exit code."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if list_rules:
        print(render_rule_list(), file=out)
        return 0
    try:
        config = load_config(Path(config_path) if config_path else None)
        overrides: dict[str, object] = {}
        if select is not None:
            overrides["select"] = [part.strip() for part in select.split(",") if part.strip()]
        if ignore is not None:
            overrides["ignore"] = [part.strip() for part in ignore.split(",") if part.strip()]
        if overrides:
            config = config.merged(overrides)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=err)
        return 2
    targets = list(paths) or list(config.targets)
    try:
        run = lint_paths(targets, config)
    except KeyError as exc:
        print(f"repro-lint: unknown rule id {exc.args[0]!r}", file=err)
        return 2
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=err)
        return 2
    print(render_json(run) if json_output else render_text(run), file=out)
    return 0 if run.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Lint the repository against its concurrency/serialization invariants.",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(
        paths=args.paths,
        json_output=args.json,
        select=args.select,
        ignore=args.ignore,
        config_path=args.config,
        list_rules=args.list_rules,
    )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
