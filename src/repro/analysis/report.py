"""Text and JSON rendering of a lint run."""

from __future__ import annotations

import json

from repro.analysis.engine import LintRun
from repro.analysis.rules import all_rule_classes

__all__ = ["render_text", "render_json", "render_rule_list"]


def render_text(run: LintRun) -> str:
    """``path:line:col: RLxxx message`` lines plus a one-line summary."""
    lines = [finding.render() for finding in run.findings]
    noun = "finding" if len(run.findings) == 1 else "findings"
    suppressed = (
        f", {run.n_suppressed} suppressed" if run.n_suppressed else ""
    )
    lines.append(
        f"{len(run.findings)} {noun} in {run.n_files} file"
        f"{'s' if run.n_files != 1 else ''}{suppressed}"
    )
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    """The run as a JSON document (stable key order)."""
    return json.dumps(run.to_dict(), indent=2, sort_keys=True)


def render_rule_list() -> str:
    """One line per registered rule: ``RLxxx name: description``."""
    return "\n".join(
        f"{cls.id} {cls.name}: {cls.description}"
        for cls in all_rule_classes()
    )
