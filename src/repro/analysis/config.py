"""Lint configuration — defaults plus the ``[tool.repro-lint]`` block.

Every rule's vocabulary (which modules are store modules, which classes
are frozen, which callables are proof sinks, ...) lives here rather than
hard-coded in the rule, so the ROADMAP's upcoming rewrites (binary block
store, store daemon) can extend coverage by editing ``pyproject.toml``
instead of the rules themselves.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any

__all__ = ["LintConfig", "load_config"]


@dataclass(frozen=True)
class LintConfig:
    """Effective configuration for one lint run.

    TOML keys are the field names with underscores replaced by dashes
    (``store-modules`` -> ``store_modules``).
    """

    #: rule ids to run (empty = all registered rules)
    select: tuple[str, ...] = ()
    #: rule ids to skip
    ignore: tuple[str, ...] = ()
    #: default lint targets when the CLI is given no paths
    targets: tuple[str, ...] = ("src/repro",)
    #: glob patterns (fnmatch, posix-style paths) excluded from linting
    exclude: tuple[str, ...] = ()

    # RL001 — lock discipline
    #: modules whose persistence mutations require the store lock
    store_modules: tuple[str, ...] = ("*repro/cache/store.py",)
    #: call names (function or method) that mutate store-owned state
    store_mutating_calls: tuple[str, ...] = (
        "save_graph",
        "save_widgets",
        "save_proofs",
        "save_diff_memo",
        "unlink",
        "replace",
        "rename",
        "rmdir",
        "write_text",
        "write_bytes",
        "remove",
        "rmtree",
    )
    #: method names that acquire the store lock when used as a with-item
    lock_methods: tuple[str, ...] = ("held",)

    # RL002 — salted-hash hygiene
    #: process-salted Node attributes that must never be serialized
    salted_attributes: tuple[str, ...] = ("fingerprint", "skeleton")
    #: dotted call names that persist their arguments
    serialize_sinks: tuple[str, ...] = ("json.dump", "json.dumps")

    # RL003 — frozen-result immutability
    #: frozen result classes whose instances must not be mutated
    frozen_classes: tuple[str, ...] = (
        "GenerationResult",
        "PipelineRun",
        "StageReport",
    )
    #: methods allowed to use object.__setattr__ on self
    frozen_allowed_methods: tuple[str, ...] = (
        "__init__",
        "__new__",
        "__post_init__",
        "__setstate__",
    )

    # RL004 — proof polarity
    #: callables that persist or exchange closure proofs
    proof_sinks: tuple[str, ...] = (
        "save_proofs",
        "proofs_to_dict",
        "import_proofs",
    )
    #: identifiers that carry mixed or negative closure results.
    #: Entries of four characters or fewer match exactly ("memo" flags
    #: the mixed-polarity search memo but not "diff_memo"); longer
    #: entries match as case-insensitive substrings.
    negative_sources: tuple[str, ...] = (
        "memo",
        "negative",
        "disproven",
        "refuted",
        "failed_proof",
    )

    # RL005 — stage purity
    #: base-class names marking a pipeline stage
    stage_bases: tuple[str, ...] = ("Stage",)

    # RL006 — compiled-artifact hygiene
    #: modules whose compiled-payload builders are checked
    compiled_modules: tuple[str, ...] = ("*repro/compiler/*.py",)
    #: functions whose return value becomes a persisted compiled payload
    #: (``*_to_state`` names are always included)
    compiled_payload_builders: tuple[str, ...] = (
        "to_state",
        "make_patch",
        "apply_patch",
    )
    #: identifier fragments marking a receiver as a parsed-AST value
    #: (whose salted attributes must never be persisted).  Entries of
    #: four characters or fewer match exactly; longer entries match as
    #: case-insensitive substrings — the RL004 convention.
    node_identifiers: tuple[str, ...] = (
        "query",
        "node",
        "tree",
        "subtree",
        "q0",
        "q1",
        "q2",
    )

    def merged(self, data: dict[str, Any]) -> "LintConfig":
        """A copy with ``data`` (kebab-case TOML keys) overriding fields.

        Raises:
            ValueError: for an unknown key — a typo in pyproject should
                fail the run, not silently lint with defaults.
        """
        known = {f.name for f in fields(self)}
        updates: dict[str, Any] = {}
        for key, value in data.items():
            field_name = key.replace("-", "_")
            if field_name not in known:
                raise ValueError(f"unknown [tool.repro-lint] key: {key}")
            if isinstance(value, list):
                value = tuple(str(item) for item in value)
            updates[field_name] = value
        return replace(self, **updates)


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Defaults overridden by ``[tool.repro-lint]`` when the file exists.

    With no explicit path, ``pyproject.toml`` is looked up in the current
    directory and then each parent (the usual "run from anywhere inside
    the checkout" behaviour).
    """
    config = LintConfig()
    path = pyproject if pyproject is not None else _discover_pyproject()
    if path is None or not path.is_file():
        return config
    with path.open("rb") as handle:
        data = tomllib.load(handle)
    block = data.get("tool", {}).get("repro-lint")
    if not isinstance(block, dict):
        return config
    return config.merged(block)


def _discover_pyproject() -> Path | None:
    current = Path.cwd()
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
