"""Finding records emitted by lint rules."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "PARSE_ERROR_ID"]

#: Reserved pseudo-rule id used when a file cannot be parsed at all.
#: It is not suppressible and not part of the registry.
PARSE_ERROR_ID = "RL000"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location.

    Ordering is by path, then position, then rule id — the order the text
    reporter prints in, chosen so output is stable across runs.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
