"""AST-based invariant linting for the cache/service concurrency layer.

Five PRs of incrementality and serving machinery rest on cross-cutting
invariants that live in docstrings, not in the type system: store
mutations happen under the :class:`~repro.cache.lock.StoreLock`,
process-salted ``Node.fingerprint``/``Node.skeleton`` values are never
persisted, only *positive* closure proofs are exported, results stay
frozen, and pipeline stages stay pure.  Violating any of them is a
silent cross-process corruption bug, not a test failure — exactly the
failure mode example-based tests cannot catch.

This package encodes those invariants as static-analysis rules over the
repository's own source:

* a **rule registry** with stable ``RLxxx`` identifiers
  (:mod:`repro.analysis.rules`);
* a per-file **AST walk** with scope and ``with``-block tracking
  (:mod:`repro.analysis.context`);
* inline ``# repro-lint: disable=RLxxx`` suppressions
  (:mod:`repro.analysis.suppress`);
* text and ``--json`` reporters (:mod:`repro.analysis.report`);
* configuration from the ``[tool.repro-lint]`` block of
  ``pyproject.toml`` (:mod:`repro.analysis.config`).

Run it as ``repro lint src/repro`` or ``python -m repro.analysis``;
programmatic use goes through :func:`lint_paths` / :func:`lint_source`.
"""

from repro.analysis.config import LintConfig
from repro.analysis.engine import LintRun, lint_paths, lint_source
from repro.analysis.findings import PARSE_ERROR_ID, Finding
from repro.analysis.rules import Rule, all_rule_classes, get_rule_class

# importing the rule implementations registers them
from repro.analysis import invariants as _invariants  # noqa: F401

__all__ = [
    "Finding",
    "PARSE_ERROR_ID",
    "LintConfig",
    "LintRun",
    "Rule",
    "all_rule_classes",
    "get_rule_class",
    "lint_paths",
    "lint_source",
]
