"""User study substrate: tasks, simulated participants, factorial ANOVA."""

from repro.study.simulator import (
    SDSS_FORM_FIELDS,
    StudyObservation,
    StudyResults,
    UserStudySimulator,
)
from repro.study.stats import AnovaRow, anova
from repro.study.tasks import TASKS, Task, study_interfaces, user_study_log, widgets_for_task

__all__ = [
    "Task",
    "TASKS",
    "user_study_log",
    "study_interfaces",
    "widgets_for_task",
    "UserStudySimulator",
    "StudyObservation",
    "StudyResults",
    "SDSS_FORM_FIELDS",
    "anova",
    "AnovaRow",
]
