"""The four SDSS user-study tasks (Section 7.4).

Task 1 finds objects by objectId; Task 2 finds objects in an area; Task 3
finds objects within a colour range; Task 4 finds objects within a red-shift
range.  Each task is represented by a target query the participant must
express with the assigned interface.

:func:`user_study_log` synthesises the "tiny SDSS query log sample" the
paper mined (1000 queries that "primarily perform 4 simple analysis tasks
described in the SDSS manual"), and :func:`widgets_for_task` computes which
of an interface's widgets a participant must operate to express a task —
``None`` when the interface cannot express it at all (the "write SQL"
fallback that Task 1 forces in the SDSS form interface).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.interface import Interface
from repro.logs.model import LogEntry, QueryLog
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql
from repro.treediff.diff import extract_diffs
from repro.widgets.base import Widget

__all__ = ["Task", "TASKS", "user_study_log", "widgets_for_task"]


@dataclass(frozen=True)
class Task:
    """One study task.

    Attributes:
        number: 1-based task id.
        description: what the participant is asked to find.
        target_sql: a concrete query expressing one instance of the task.
        n_fields: number of entry fields the task takes on a plain search
            form (drives the cost of the SDSS-form condition).
    """

    number: int
    description: str
    target_sql: str
    n_fields: int

    def target(self) -> Node:
        return parse_sql(self.target_sql)


TASKS: tuple[Task, ...] = (
    Task(
        number=1,
        description="find the object with a given objectId",
        target_sql="SELECT * FROM PhotoObj WHERE objID = 0x2ef3",
        n_fields=1,
    ),
    Task(
        number=2,
        description="find objects within an ra/dec area",
        target_sql=(
            "SELECT objID, ra, dec FROM PhotoObj "
            "WHERE ra BETWEEN 120.0 AND 130.0 AND dec BETWEEN 1.0 AND 2.0"
        ),
        n_fields=4,
    ),
    Task(
        number=3,
        description="find objects within a colour range",
        target_sql=(
            "SELECT objID, u, g, r FROM PhotoObj "
            "WHERE u - g > 1.0 AND g - r < 0.5"
        ),
        n_fields=2,
    ),
    Task(
        number=4,
        description="find objects within a red-shift range",
        target_sql="SELECT specObjId, z FROM SpecObj WHERE z > 1.0 AND z < 4.5",
        n_fields=2,
    ),
)


def user_study_log(n: int = 1000, seed: int = 42) -> QueryLog:
    """The synthetic stand-in for the paper's tiny SDSS log sample: ``n``
    queries that primarily perform the four study tasks, with one knob
    changing at a time within each task burst."""
    rng = random.Random(seed)
    statements: list[str] = [
        # opening manual examples, one per task, endpoints first
        "SELECT * FROM PhotoObj WHERE objID = 0x10",
        "SELECT * FROM PhotoObj WHERE objID = 0x4fef",
        "SELECT objID, ra, dec FROM PhotoObj "
        "WHERE ra BETWEEN 0.0 AND 360.0 AND dec BETWEEN -10.0 AND 10.0",
        "SELECT objID, u, g, r FROM PhotoObj WHERE u - g > 0.0 AND g - r < 0.0",
        "SELECT objID, u, g, r FROM PhotoObj WHERE u - g > 2.5 AND g - r < 1.5",
        "SELECT specObjId, z FROM SpecObj WHERE z > 0.0 AND z < 7.0",
        "SELECT specObjId, z FROM SpecObj WHERE z > 3.0 AND z < 7.0",
        "SELECT specObjId, z FROM SpecObj WHERE z > 0.0 AND z < 3.0",
    ]
    state = {
        "id": "0x10",
        "ra_lo": 0.0, "ra_hi": 360.0, "dec_lo": -10.0, "dec_hi": 10.0,
        "ug": 0.0, "gr": 0.0,
        "z_lo": 0.0, "z_hi": 7.0,
    }
    renderers = {
        1: lambda: f"SELECT * FROM PhotoObj WHERE objID = {state['id']}",
        2: lambda: (
            "SELECT objID, ra, dec FROM PhotoObj "
            f"WHERE ra BETWEEN {state['ra_lo']} AND {state['ra_hi']} "
            f"AND dec BETWEEN {state['dec_lo']} AND {state['dec_hi']}"
        ),
        3: lambda: (
            "SELECT objID, u, g, r FROM PhotoObj "
            f"WHERE u - g > {state['ug']} AND g - r < {state['gr']}"
        ),
        4: lambda: (
            "SELECT specObjId, z FROM SpecObj "
            f"WHERE z > {state['z_lo']} AND z < {state['z_hi']}"
        ),
    }
    tasks_of: list[int] = [1, 1, 2, 3, 3, 4, 4, 4]  # tasks of the examples
    while len(statements) < n:
        task = rng.choice([1, 2, 3, 4])
        burst = rng.randrange(2, 8)
        for _ in range(burst):
            if len(statements) >= n:
                break
            if task == 1:
                state["id"] = hex(rng.randrange(0x10, 0x4FF0))
            elif task == 2:
                if rng.random() < 0.5:
                    lo = round(rng.uniform(0.0, 300.0), 2)
                    state["ra_lo"], state["ra_hi"] = lo, round(lo + rng.uniform(1, 60), 2)
                else:
                    lo = round(rng.uniform(-10.0, 9.0), 2)
                    state["dec_lo"], state["dec_hi"] = lo, round(lo + rng.uniform(0.1, 1.0), 2)
            elif task == 3:
                if rng.random() < 0.5:
                    state["ug"] = round(rng.uniform(0.0, 2.5), 2)
                else:
                    state["gr"] = round(rng.uniform(0.0, 1.5), 2)
            else:
                if rng.random() < 0.5:
                    state["z_lo"] = round(rng.uniform(0.0, 3.0), 2)
                else:
                    state["z_hi"] = round(rng.uniform(3.0, 7.0), 2)
            statements.append(renderers[task]())
            tasks_of.append(task)
    entries = [
        LogEntry(sql=sql, client=f"task{task}", sequence=i, timestamp=float(i))
        for i, (sql, task) in enumerate(zip(statements[:n], tasks_of[:n]))
    ]
    return QueryLog(entries=entries, name="sdss/study")


def study_interfaces(log: QueryLog, options=None) -> dict[int, Interface]:
    """Mine one interface per study task.

    The study log tags each query with its task (DBMS logs carry session
    ids — Section 3.3 recommends exactly this preprocessing), so each task
    is a separate analysis and gets its own widget group, which is how the
    paper's Figure 8b interface presents per-task controls.
    """
    from repro.api import generate  # local: avoid cycle

    out: dict[int, Interface] = {}
    for client, sublog in log.by_client().items():
        number = int(client.removeprefix("task"))
        out[number] = generate(
            sublog.asts(), options=options, source=f"study/{client}"
        ).interface
    return out


def widgets_for_task(interface: Interface, task: Task) -> list[Widget] | None:
    """The widgets a participant must operate to express ``task`` starting
    from the interface's initial query.

    Returns ``None`` when the interface cannot express the task at all
    (forcing the write-SQL fallback); an empty list when the initial query
    already answers it.
    """
    target = task.target()
    if not interface.expresses(target):
        return None
    needed: list[Widget] = []
    by_path = {w.path: w for w in interface.widgets}
    diffs = [
        d
        for d in extract_diffs(interface.initial_query, target)
        if d.is_leaf
    ]
    seen_paths = set()
    for diff in diffs:
        widget = by_path.get(diff.path)
        if widget is None:
            # covered through an ancestor widget: charge the deepest
            # ancestor on the diff's path
            ancestors = [
                w for p, w in by_path.items() if p.is_prefix_of(diff.path)
            ]
            if not ancestors:
                continue
            widget = max(ancestors, key=lambda w: w.path.depth)
        if widget.path not in seen_paths:
            seen_paths.add(widget.path)
            needed.append(widget)
    return needed
