"""Factorial ANOVA for the user study (Section 7.4).

The paper runs a three-factor ANOVA — task, interface, and task order as
independent variables, completion time as the dependent variable — plus the
task × interface interaction, and reports all of them significant.

scipy has one-way ANOVA only, so this module implements sequential
(type-I) multi-factor ANOVA from scratch: factors are dummy-coded, terms
are added to the design matrix one at a time, and each term's F statistic
is its incremental explained sum of squares over the residual mean square
of the full model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["AnovaRow", "anova"]


@dataclass(frozen=True)
class AnovaRow:
    """One ANOVA table row."""

    term: str
    df: int
    sum_sq: float
    f_value: float
    p_value: float


def _dummy_code(values: list) -> np.ndarray:
    """Dummy-code a categorical factor (first level is the reference),
    returning an (n, k-1) matrix."""
    levels = sorted(set(values), key=str)
    columns = []
    for level in levels[1:]:
        columns.append(np.asarray([1.0 if v == level else 0.0 for v in values]))
    if not columns:
        return np.zeros((len(values), 0))
    return np.column_stack(columns)


def _interaction(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All pairwise products of the two coded factors' columns."""
    if a.shape[1] == 0 or b.shape[1] == 0:
        return np.zeros((a.shape[0], 0))
    blocks = [a[:, i: i + 1] * b for i in range(a.shape[1])]
    return np.hstack(blocks)


def _rss(design: np.ndarray, response: np.ndarray) -> float:
    """Residual sum of squares of the least-squares fit."""
    coefficients, _, _, _ = np.linalg.lstsq(design, response, rcond=None)
    residual = response - design @ coefficients
    return float(residual @ residual)


def anova(
    response: list[float],
    factors: dict[str, list],
    interactions: list[tuple[str, str]] | None = None,
) -> list[AnovaRow]:
    """Sequential (type-I) factorial ANOVA.

    Args:
        response: the dependent variable (one value per observation).
        factors: factor name -> per-observation level (categorical).
        interactions: pairs of factor names whose interaction terms are
            added after all main effects.

    Returns:
        One :class:`AnovaRow` per term plus a ``Residual`` row.

    Raises:
        ValueError: on length mismatches or an empty study.
    """
    y = np.asarray(response, dtype=float)
    n = len(y)
    if n == 0:
        raise ValueError("no observations")
    for name, values in factors.items():
        if len(values) != n:
            raise ValueError(f"factor {name} has {len(values)} values, need {n}")

    coded = {name: _dummy_code(values) for name, values in factors.items()}
    terms: list[tuple[str, np.ndarray]] = list(coded.items())
    for left, right in interactions or []:
        terms.append((f"{left}:{right}", _interaction(coded[left], coded[right])))

    design = np.ones((n, 1))
    rss_prev = _rss(design, y)
    rows: list[tuple[str, int, float]] = []
    for name, block in terms:
        if block.shape[1] == 0:
            rows.append((name, 0, 0.0))
            continue
        design = np.hstack([design, block])
        rss_now = _rss(design, y)
        rows.append((name, block.shape[1], rss_prev - rss_now))
        rss_prev = rss_now

    df_model = design.shape[1] - 1
    df_resid = n - design.shape[1]
    if df_resid <= 0:
        raise ValueError("not enough observations for the model")
    ms_resid = rss_prev / df_resid

    out: list[AnovaRow] = []
    for name, df, sum_sq in rows:
        if df == 0 or ms_resid == 0:
            out.append(AnovaRow(name, df, sum_sq, float("nan"), float("nan")))
            continue
        f_value = (sum_sq / df) / ms_resid
        p_value = float(scipy_stats.f.sf(f_value, df, df_resid))
        out.append(AnovaRow(name, df, sum_sq, f_value, p_value))
    out.append(AnovaRow("Residual", df_resid, rss_prev, float("nan"), float("nan")))
    return out
