"""Simulated user study (Section 7.4, Appendix C).

The paper recruited 40 software engineers, assigned each the SDSS search
form or the generated precision interface, and timed the four tasks in
random order with a 60-second cap.  Offline we simulate the participants:

* a task's base time is the sum of the fitted widget interaction costs for
  the widgets the task needs on the assigned interface (the same cost
  model Section 4.3 fits from timing traces), plus a fixed
  read-the-interface overhead;
* when the interface has no widgets for the task (Task 1 on the SDSS
  form), the participant falls back to writing SQL — a large, noisy time
  that usually hits the 60 s cap and often produces a wrong first
  submission;
* participants learn: the k-th task they perform carries a decaying
  familiarisation overhead (the ordering effect of Figure 13) — except
  that writing SQL does not get easier within one session;
* lognormal noise on every trial.

The SDSS search form condition is modelled as a fixed widget inventory:
textbox pairs for the area / colour / red-shift fields (it has dedicated
widgets for Tasks 2–4) and *no* widget for objectId lookup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.interface import Interface
from repro.study.tasks import TASKS, Task, widgets_for_task
from repro.widgets.cost import DEFAULT_COEFFICIENTS

__all__ = ["StudyObservation", "StudyResults", "UserStudySimulator", "SDSS_FORM_FIELDS"]

#: Fields the (re-styled) SDSS search form offers per task; ``None`` means
#: the form has no widgets for the task and SQL must be written by hand.
SDSS_FORM_FIELDS: dict[int, int | None] = {1: None, 2: 4, 3: 2, 4: 2}

_TEXTBOX_MS = DEFAULT_COEFFICIENTS["textbox"].a0
_READ_OVERHEAD_S = 2.0
_SQL_FALLBACK_MEAN_S = 70.0
_LEARNING_BOOST = 0.9       # extra fraction of base time on the first task
_LEARNING_DECAY = 0.45      # per-position decay of the familiarisation cost
_TIME_CAP_S = 60.0


@dataclass(frozen=True)
class StudyObservation:
    """One (participant, task) trial."""

    user: int
    interface: str        # "precision" | "sdss"
    task: int             # 1..4
    order: int            # 1..4: position in the participant's sequence
    time_s: float
    accurate: bool


@dataclass
class StudyResults:
    """All trials of one simulated study."""

    observations: list[StudyObservation] = field(default_factory=list)

    def filter(self, **criteria) -> list[StudyObservation]:
        out = self.observations
        for key, value in criteria.items():
            out = [o for o in out if getattr(o, key) == value]
        return out

    def mean_time(self, **criteria) -> float:
        rows = self.filter(**criteria)
        return sum(o.time_s for o in rows) / len(rows) if rows else float("nan")

    def accuracy(self, **criteria) -> float:
        rows = self.filter(**criteria)
        return sum(o.accurate for o in rows) / len(rows) if rows else float("nan")

    def confidence_95(self, **criteria) -> float:
        """Half-width of the normal-approximation 95% CI of mean time."""
        rows = self.filter(**criteria)
        if len(rows) < 2:
            return float("nan")
        times = [o.time_s for o in rows]
        mean = sum(times) / len(times)
        variance = sum((t - mean) ** 2 for t in times) / (len(times) - 1)
        return 1.96 * (variance / len(times)) ** 0.5

    def as_columns(self) -> tuple[list[float], dict[str, list]]:
        """``(response, factors)`` for :func:`repro.study.stats.anova`."""
        response = [o.time_s for o in self.observations]
        factors = {
            "task": [o.task for o in self.observations],
            "interface": [o.interface for o in self.observations],
            "order": [o.order for o in self.observations],
        }
        return response, factors


class UserStudySimulator:
    """Simulates the 40-participant, 4-task, 2-condition study.

    Args:
        generated_interface: the interface mined from the study log.
        n_users: number of participants (half per condition).
        seed: RNG seed.
    """

    def __init__(
        self,
        generated_interfaces: Interface | dict[int, Interface],
        n_users: int = 40,
        seed: int = 7,
    ):
        self._n_users = n_users
        self._rng = random.Random(seed)
        if isinstance(generated_interfaces, dict):
            self._task_widgets: dict[int, list | None] = {
                task.number: widgets_for_task(
                    generated_interfaces[task.number], task
                )
                if task.number in generated_interfaces
                else None
                for task in TASKS
            }
        else:
            self._task_widgets = {
                task.number: widgets_for_task(generated_interfaces, task)
                for task in TASKS
            }

    # ------------------------------------------------------------------
    # per-trial time model
    # ------------------------------------------------------------------
    def _base_time_precision(self, task: Task) -> float | None:
        widgets = self._task_widgets[task.number]
        if widgets is None:
            return None
        interaction_ms = sum(w.cost for w in widgets)
        return _READ_OVERHEAD_S + interaction_ms / 1000.0

    @staticmethod
    def _base_time_sdss(task: Task) -> float | None:
        fields = SDSS_FORM_FIELDS[task.number]
        if fields is None:
            return None
        return _READ_OVERHEAD_S + fields * _TEXTBOX_MS / 1000.0

    def _trial(self, interface: str, task: Task, order: int) -> tuple[float, bool]:
        base = (
            self._base_time_precision(task)
            if interface == "precision"
            else self._base_time_sdss(task)
        )
        noise = self._rng.lognormvariate(0.0, 0.22)
        if base is None:
            # write-SQL fallback: slow and error-prone, no learning effect
            time_s = min(_TIME_CAP_S, _SQL_FALLBACK_MEAN_S * noise)
            accurate = self._rng.random() < 0.55
            return time_s, accurate
        learning = 1.0 + _LEARNING_BOOST * (_LEARNING_DECAY ** (order - 1))
        time_s = min(_TIME_CAP_S, base * learning * noise)
        accurate = self._rng.random() < 0.97
        return time_s, accurate

    # ------------------------------------------------------------------
    # the study
    # ------------------------------------------------------------------
    def run(self) -> StudyResults:
        """Run the full study: each participant is randomly assigned one
        interface and completes all four tasks in random order."""
        results = StudyResults()
        conditions = ["precision", "sdss"] * (self._n_users // 2 + 1)
        for user in range(self._n_users):
            interface = conditions[user]
            order = list(TASKS)
            self._rng.shuffle(order)
            for position, task in enumerate(order, start=1):
                time_s, accurate = self._trial(interface, task, position)
                results.observations.append(
                    StudyObservation(
                        user=user,
                        interface=interface,
                        task=task.number,
                        order=position,
                        time_s=time_s,
                        accurate=accurate,
                    )
                )
        return results
