"""AST paths.

A :class:`Path` addresses a node in an AST by the sequence of child indices
walked from the root, rendered the way the paper prints them: ``0/1/0`` is
the first child's second child's first child (Table 1).  The empty path
addresses the root itself.

Paths are immutable, hashable, and ordered lexicographically so they can be
used as dictionary keys when partitioning diff records (Algorithm 1) and
compared for the ancestor/descendant prefix tests used by the merging phase
(Algorithm 3).
"""

from __future__ import annotations

from functools import total_ordering

from repro.errors import PathError

__all__ = ["Path"]


@total_ordering
class Path:
    """An immutable sequence of child indices from the AST root."""

    __slots__ = ("steps", "_hash")

    def __init__(self, steps: tuple[int, ...] = ()):
        for step in steps:
            if step < 0:
                raise PathError(f"negative path step in {steps}")
        self.steps: tuple[int, ...] = tuple(steps)
        self._hash = hash(self.steps)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def root(cls) -> "Path":
        """The empty path (the root node)."""
        return _ROOT

    @classmethod
    def parse(cls, text: str) -> "Path":
        """Parse the paper's slash notation, e.g. ``"0/1/0"``.

        The empty string and ``"/"`` both denote the root.
        """
        text = text.strip().strip("/")
        if not text:
            return _ROOT
        try:
            return cls(tuple(int(part) for part in text.split("/")))
        except ValueError as exc:
            raise PathError(f"malformed path {text!r}") from exc

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    def child(self, index: int) -> "Path":
        """Extend the path by one step."""
        return Path(self.steps + (index,))

    def parent(self) -> "Path":
        """Drop the last step.

        Raises:
            PathError: for the root path.
        """
        if not self.steps:
            raise PathError("the root path has no parent")
        return Path(self.steps[:-1])

    def concat(self, other: "Path") -> "Path":
        """Append ``other``'s steps after this path's steps."""
        return Path(self.steps + other.steps)

    def relative_to(self, ancestor: "Path") -> "Path":
        """Return the suffix of this path below ``ancestor``.

        Raises:
            PathError: when ``ancestor`` is not a prefix of this path.
        """
        if not ancestor.is_prefix_of(self):
            raise PathError(f"{ancestor} is not an ancestor of {self}")
        return Path(self.steps[len(ancestor.steps):])

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def is_root(self) -> bool:
        return not self.steps

    def is_prefix_of(self, other: "Path") -> bool:
        """True when this path addresses ``other`` or one of its ancestors."""
        n = len(self.steps)
        return len(other.steps) >= n and other.steps[:n] == self.steps

    def is_strict_prefix_of(self, other: "Path") -> bool:
        """True for a *proper* ancestor relationship."""
        return len(self.steps) < len(other.steps) and self.is_prefix_of(other)

    def common_prefix(self, other: "Path") -> "Path":
        """Longest common ancestor path of the two paths."""
        steps: list[int] = []
        for a, b in zip(self.steps, other.steps):
            if a != b:
                break
            steps.append(a)
        return Path(tuple(steps))

    @property
    def depth(self) -> int:
        """Number of steps (root = 0)."""
        return len(self.steps)

    # ------------------------------------------------------------------
    # dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self.steps == other.steps

    def __lt__(self, other: "Path") -> bool:
        return self.steps < other.steps

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self.steps:
            return "/"
        return "/".join(str(step) for step in self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Path({self})"

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)


_ROOT = Path(())
