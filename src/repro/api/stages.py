"""First-class pipeline stages (Figure 2a, made composable).

The paper's generation pipeline is an explicit sequence —

    parse → (segment) → mine interaction graph → map to widgets → merge

— and each step here is a :class:`Stage` object with the uniform contract
``run(state) -> state`` over a shared :class:`PipelineState`.  Stages are
stateless and reusable; per-run data lives only in the state, so one stage
instance can serve many concurrent pipelines.

Stages record their counters with :meth:`PipelineState.record`; the
:class:`~repro.api.pipeline.Pipeline` wraps each ``run`` with wall-clock
timing and turns the records into frozen
:class:`~repro.api.result.StageReport` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.mapper import MapperStats, initialize, merge_widgets
from repro.core.options import PipelineOptions
from repro.errors import LogError
from repro.graph.build import BuildStats, build_interaction_graph
from repro.graph.interaction import InteractionGraph
from repro.logs.sessions import segment_asts, validate_threshold
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql
from repro.widgets.base import Widget

__all__ = [
    "PipelineState",
    "Stage",
    "ParseStage",
    "SegmentStage",
    "MineStage",
    "MapStage",
    "MergeStage",
]


@dataclass
class PipelineState:
    """The mutable carrier threaded through the stages of one run.

    Attributes:
        options: pipeline configuration shared by every stage.
        statements: raw SQL strings (input of :class:`ParseStage`).
        queries: parsed ASTs in log order.
        segments: per-analysis query lists (output of :class:`SegmentStage`).
        graph: the mined interaction graph (output of :class:`MineStage`).
        widgets: the widget set (output of :class:`MapStage` /
            :class:`MergeStage`).
        source: free-form label of where the log came from (provenance).
        records: per-stage counters, keyed by stage name.
    """

    options: PipelineOptions
    statements: list[str] | None = None
    queries: list[Node] | None = None
    segments: list[list[Node]] | None = None
    graph: InteractionGraph | None = None
    widgets: list[Widget] | None = None
    source: str = "log"
    records: dict[str, dict[str, Any]] = field(default_factory=dict)

    def record(self, stage_name: str, **stats: Any) -> None:
        """Merge counters into the named stage's record."""
        self.records.setdefault(stage_name, {}).update(stats)


class Stage:
    """One pipeline step.  Subclasses implement :meth:`run`.

    The contract is uniform: take the state, advance it, return it.  A stage
    must raise (typically :class:`~repro.errors.LogError`) when its input is
    missing, rather than silently skipping.
    """

    name = "stage"

    def run(self, state: PipelineState) -> PipelineState:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class ParseStage(Stage):
    """Parse raw SQL statements into ASTs (no-op when ASTs were supplied)."""

    name = "parse"

    def run(self, state: PipelineState) -> PipelineState:
        if state.queries is None:
            if not state.statements:
                raise LogError("cannot generate an interface from an empty log")
            state.queries = [parse_sql(sql) for sql in state.statements]
            state.record(self.name, n_parsed=len(state.queries))
        else:
            state.record(self.name, n_parsed=0)
        state.record(self.name, n_queries=len(state.queries))
        return state


class SegmentStage(Stage):
    """Split a mixed log into per-analysis segments (Section 3.3).

    Delegates to :func:`repro.logs.sessions.segment_asts` — one
    implementation serves both the log-level helpers and this stage.
    Pipelines that embed this stage fan the downstream stages out over
    ``state.segments``.
    """

    name = "segment"

    def __init__(self, jump_threshold: float = 0.3, cluster_threshold: float = 0.3):
        # validate eagerly so a bad composition fails at build time
        validate_threshold(jump_threshold)
        validate_threshold(cluster_threshold)
        self.jump_threshold = jump_threshold
        self.cluster_threshold = cluster_threshold

    def run(self, state: PipelineState) -> PipelineState:
        if not state.queries:
            raise LogError("cannot segment an empty query log")
        state.segments = segment_asts(
            state.queries, self.jump_threshold, self.cluster_threshold
        )
        state.record(self.name, n_segments=len(state.segments))
        return state


class MineStage(Stage):
    """Mine the interaction graph (Section 4.2 with the Section 6
    sliding-window and LCA-pruning optimisations)."""

    name = "mine"

    def run(self, state: PipelineState) -> PipelineState:
        if not state.queries:
            raise LogError("cannot mine an empty query log")
        options = state.options
        stats = BuildStats()
        state.graph = build_interaction_graph(
            state.queries,
            window=options.window,
            prune=options.lca_pruning,
            annotations=options.annotations,
            stats=stats,
        )
        state.record(
            self.name,
            n_pairs_compared=stats.n_pairs_compared,
            n_edges=state.graph.n_edges,
            n_diffs=state.graph.n_diffs,
        )
        return state


class MapStage(Stage):
    """Initialize (Algorithm 1): one cheapest widget per diff partition."""

    name = "map"

    def run(self, state: PipelineState) -> PipelineState:
        if state.graph is None:
            raise LogError("map stage needs a mined interaction graph")
        options = state.options
        diffs = state.graph.diffs
        state.widgets = initialize(diffs, options.library, options.annotations)
        state.record(
            self.name,
            n_partitions=len({d.path for d in diffs}),
            n_initial_widgets=len(state.widgets),
            initial_cost=sum(w.cost for w in state.widgets),
        )
        return state


class MergeStage(Stage):
    """Merge (Algorithm 3) to a fixed point; identity when merging is
    disabled in the options (the ablation configuration)."""

    name = "merge"

    def run(self, state: PipelineState) -> PipelineState:
        if state.widgets is None or state.graph is None:
            raise LogError("merge stage needs mapped widgets")
        options = state.options
        rounds = 0
        if options.merge and state.widgets:
            stats = MapperStats()
            leaf_diffs = [d for d in state.graph.diffs if d.is_leaf]
            state.widgets = merge_widgets(
                state.widgets,
                options.library,
                options.annotations,
                stats=stats,
                leaf_diffs=leaf_diffs,
            )
            rounds = stats.n_merge_rounds
        state.record(
            self.name,
            merged=options.merge,
            n_merge_rounds=rounds,
            n_widgets=len(state.widgets),
            final_cost=sum(w.cost for w in state.widgets),
        )
        return state
