"""First-class pipeline stages (Figure 2a, made composable).

The paper's generation pipeline is an explicit sequence —

    parse → (segment) → [cache lookup] → mine interaction graph
          → map to widgets → merge

— and each step here is a :class:`Stage` object with the uniform contract
``run(state) -> state`` over a shared :class:`PipelineState`.  Stages are
stateless and reusable; per-run data lives only in the state, so one stage
instance can serve many concurrent pipelines.

The bracketed step is optional: when ``options.cache_dir`` is set, the
default pipeline inserts a :class:`CacheStage` that consults a persistent
:class:`~repro.cache.store.GraphStore` keyed by (log, options)
fingerprints.  On a hit the mined graph is restored from disk and
:class:`MineStage` skips its ``O(|Q| * window)`` tree alignments; on a
*full* hit (the store also holds the key's widget set) :class:`MapStage`
and :class:`MergeStage` skip as well — every skip is visible in the run's
stage reports (``stats["skipped"]``).

Stages record their counters with :meth:`PipelineState.record`; the
:class:`~repro.api.pipeline.Pipeline` wraps each ``run`` with wall-clock
timing and turns the records into frozen
:class:`~repro.api.result.StageReport` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cache.fingerprint import log_fingerprint, options_fingerprint
from repro.cache.store import GraphStore
from repro.core.mapper import (
    MapCache,
    MapperStats,
    initialize,
    initialize_indexed,
    merge_widgets,
    merge_widgets_incremental,
)
from repro.core.options import PipelineOptions
from repro.errors import CacheError, LogError
from repro.graph.build import BuildStats, build_interaction_graph
from repro.graph.interaction import InteractionGraph
from repro.logs.sessions import segment_asts, validate_threshold
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql
from repro.treediff.memo import DiffMemo
from repro.widgets.base import Widget

__all__ = [
    "PipelineState",
    "Stage",
    "ParseStage",
    "SegmentStage",
    "CacheStage",
    "MineStage",
    "MapStage",
    "MergeStage",
    "parse_deduplicated",
]


def parse_deduplicated(statements: list[str]) -> tuple[list[Node], int]:
    """Parse statements with byte-identical ones parsed once.

    Replayed logs repeat identical statements constantly; since ASTs are
    immutable, repeats can share one object (the cache loader aliases
    identical queries the same way).  Returns ``(queries, n_hits)`` —
    one AST per input statement, and how many reused a previous parse.
    Shared by :class:`ParseStage` and the session's ``append_sql``.
    """
    parsed: dict[str, Node] = {}
    queries: list[Node] = []
    hits = 0
    for sql in statements:
        ast = parsed.get(sql)
        if ast is None:
            parsed[sql] = ast = parse_sql(sql)
        else:
            hits += 1
        queries.append(ast)
    return queries, hits


@dataclass
class PipelineState:
    """The mutable carrier threaded through the stages of one run.

    Attributes:
        options: pipeline configuration shared by every stage.
        statements: raw SQL strings (input of :class:`ParseStage`).
        queries: parsed ASTs in log order.
        segments: per-analysis query lists (output of :class:`SegmentStage`).
        graph: the mined interaction graph (output of :class:`MineStage`).
        widgets: the widget set (output of :class:`MapStage` /
            :class:`MergeStage`).
        source: free-form label of where the log came from (provenance).
        records: per-stage counters, keyed by stage name.
        cache_store: the :class:`~repro.cache.store.GraphStore` the run is
            using, set by :class:`CacheStage` (``None`` = caching off).
        cache_key: the run's ``(log_fingerprint, options_fingerprint)``
            pair, set by :class:`CacheStage`; :class:`MineStage` saves a
            freshly mined graph under it and :class:`MergeStage` a freshly
            merged widget set.
        map_cache: the :class:`~repro.core.mapper.MapCache` of a
            long-lived caller (the session); when set, :class:`MapStage`
            rebuilds only the partitions whose diff lists changed since
            the previous run and :class:`MergeStage` re-runs only the
            merge components incident to them.
        widgets_from_cache: set by :class:`CacheStage` on a widget-set
            hit; tells :class:`MapStage` and :class:`MergeStage` to skip.
        diff_memo: the :class:`~repro.treediff.memo.DiffMemo` the Mine
            stage aligns through.  A long-lived caller (the session) sets
            it so memoised alignment plans survive across appends; when
            unset, :class:`MineStage` creates a run-local memo, which
            still collapses repeated shapes *within* one log.
    """

    options: PipelineOptions
    statements: list[str] | None = None
    queries: list[Node] | None = None
    segments: list[list[Node]] | None = None
    graph: InteractionGraph | None = None
    widgets: list[Widget] | None = None
    source: str = "log"
    records: dict[str, dict[str, Any]] = field(default_factory=dict)
    cache_store: GraphStore | None = None
    cache_key: tuple[str, str] | None = None
    map_cache: MapCache | None = None
    widgets_from_cache: bool = False
    diff_memo: DiffMemo | None = None

    def record(self, stage_name: str, **stats: Any) -> None:
        """Merge counters into the named stage's record."""
        self.records.setdefault(stage_name, {}).update(stats)


class Stage:
    """One pipeline step.  Subclasses implement :meth:`run`.

    The contract is uniform: take the state, advance it, return it.  A stage
    must raise (typically :class:`~repro.errors.LogError`) when its input is
    missing, rather than silently skipping.
    """

    name = "stage"

    def run(self, state: PipelineState) -> PipelineState:
        """Advance ``state`` by this stage's work and return it."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class ParseStage(Stage):
    """Parse raw SQL statements into ASTs (no-op when ASTs were supplied).

    Replayed logs repeat byte-identical statements constantly, so parse
    results are memoised per run keyed by the raw SQL: a repeated string
    reuses the already-parsed AST object (ASTs are immutable, so sharing
    is safe — the cache loader aliases identical queries the same way).
    The stage reports the reuse as ``n_parse_hits``.
    """

    name = "parse"

    def run(self, state: PipelineState) -> PipelineState:
        """Fill ``state.queries`` from ``state.statements`` if needed."""
        if state.queries is None:
            if not state.statements:
                raise LogError("cannot generate an interface from an empty log")
            state.queries, hits = parse_deduplicated(state.statements)
            state.record(
                self.name, n_parsed=len(state.queries), n_parse_hits=hits
            )
        else:
            state.record(self.name, n_parsed=0, n_parse_hits=0)
        state.record(self.name, n_queries=len(state.queries))
        return state


class SegmentStage(Stage):
    """Split a mixed log into per-analysis segments (Section 3.3).

    Delegates to :func:`repro.logs.sessions.segment_asts` — one
    implementation serves both the log-level helpers and this stage.
    Pipelines that embed this stage fan the downstream stages out over
    ``state.segments``.
    """

    name = "segment"

    def __init__(
        self, jump_threshold: float = 0.3, cluster_threshold: float = 0.3
    ) -> None:
        # validate eagerly so a bad composition fails at build time
        validate_threshold(jump_threshold)
        validate_threshold(cluster_threshold)
        self.jump_threshold = jump_threshold
        self.cluster_threshold = cluster_threshold

    def run(self, state: PipelineState) -> PipelineState:
        """Fill ``state.segments`` with per-analysis query lists."""
        if not state.queries:
            raise LogError("cannot segment an empty query log")
        state.segments = segment_asts(
            state.queries, self.jump_threshold, self.cluster_threshold
        )
        state.record(self.name, n_segments=len(state.segments))
        return state


class CacheStage(Stage):
    """Look up the run's interaction graph — and widget set — in a
    persistent store.

    Fingerprints the parsed log and the options, then consults the
    :class:`~repro.cache.store.GraphStore` under ``options.cache_dir``.
    On a graph hit the cached graph becomes ``state.graph`` and the
    downstream :class:`MineStage` has nothing to do; on a *full* hit the
    key's widget-set entry decodes against the loaded graph into
    ``state.widgets`` and :class:`MapStage`/:class:`MergeStage` skip too —
    the warm path performs no pairwise diffing and no widget solving at
    all.  On a miss the store and key are left on the state so
    :class:`MineStage` (and :class:`MergeStage`) persist what they
    compute.  With no ``cache_dir`` configured the stage records
    ``enabled=False`` and passes the state through untouched.
    """

    name = "cache"

    def run(self, state: PipelineState) -> PipelineState:
        """Fill ``state.graph`` (and ``state.widgets``) from the store on
        a hit; otherwise arm ``state.cache_store``/``state.cache_key``."""
        if state.options.cache_dir is None:
            state.record(self.name, enabled=False, hit=False)
            return state
        if not state.queries:
            raise LogError("cache lookup needs a parsed query log")
        store = GraphStore(
            state.options.cache_dir, remote=state.options.daemon_socket
        )
        try:
            log_fp = log_fingerprint(state.queries)
            opts_fp = options_fingerprint(state.options)
        except CacheError as exc:
            # a cache must fail open: a log that cannot be fingerprinted
            # (e.g. exotic non-JSON attribute values) mines normally, it
            # just cannot be cached
            state.record(self.name, enabled=True, hit=False, error=str(exc))
            return state
        state.cache_store = store
        state.cache_key = (log_fp, opts_fp)
        key = store.key(log_fp, opts_fp)
        cached = store.load(log_fp, opts_fp)
        if cached is None:
            state.record(self.name, enabled=True, hit=False, key=key)
            return state
        graph, mined_stats = cached
        state.graph = graph
        widgets = store.load_widget_set(
            log_fp, opts_fp, graph, state.options.library, state.options.annotations
        )
        if widgets is not None:
            state.widgets = widgets
            state.widgets_from_cache = True
        # persist the hits' batched LRU recency (packed stores buffer
        # touches in memory; a pure-hit run performs no save to carry them)
        store.flush_recency()
        state.record(
            self.name,
            enabled=True,
            hit=True,
            widgets_hit=widgets is not None,
            key=key,
            n_pairs_compared_original=mined_stats.n_pairs_compared,
        )
        return state


class MineStage(Stage):
    """Mine the interaction graph (Section 4.2 with the Section 6
    sliding-window and LCA-pruning optimisations, plus skeleton-level
    diff memoisation).

    Mining runs through a :class:`~repro.treediff.memo.DiffMemo` —
    ``state.diff_memo`` when a long-lived caller (the session) provided
    one, else a fresh run-local memo — so repeated query shapes replay
    their alignment plan instead of re-running the alignment DP.  The
    stage reports the split as ``n_alignments_memoised`` /
    ``n_alignments_full``.

    When the state already carries a graph — a :class:`CacheStage` hit, or
    a caller that mined out-of-band — the stage skips the alignment work
    and records ``skipped=True`` with zero pairs compared.  After a fresh
    mine it persists the graph (and, when the store was armed by a
    :class:`CacheStage`, the memo's representative pairs) through
    ``state.cache_store``.
    """

    name = "mine"

    def run(self, state: PipelineState) -> PipelineState:
        """Fill ``state.graph`` by mining (or skip if already present)."""
        if state.graph is not None:
            state.record(
                self.name,
                skipped=True,
                n_pairs_compared=0,
                n_edges=state.graph.n_edges,
                n_diffs=state.graph.n_diffs,
            )
            return state
        if not state.queries:
            raise LogError("cannot mine an empty query log")
        options = state.options
        stats = BuildStats()
        if state.diff_memo is None:
            state.diff_memo = DiffMemo(
                max_plans_per_shape=options.max_plans_per_shape
            )
        state.graph = build_interaction_graph(
            state.queries,
            window=options.window,
            prune=options.lca_pruning,
            annotations=options.annotations,
            stats=stats,
            memo=state.diff_memo,
        )
        state.record(
            self.name,
            n_pairs_compared=stats.n_pairs_compared,
            n_alignments_memoised=stats.n_alignments_memoised,
            n_alignments_full=stats.n_alignments_full,
            n_edges=state.graph.n_edges,
            n_diffs=state.graph.n_diffs,
        )
        if state.cache_store is not None and state.cache_key is not None:
            try:
                state.cache_store.save(*state.cache_key, state.graph, stats)
                state.cache_store.save_diff_memo(*state.cache_key, state.diff_memo)
            except (CacheError, OSError) as exc:
                # the mine already succeeded; a failed persist must not
                # destroy the run — surface it in the stage stats instead
                state.record(self.name, cache_save_error=str(exc))
        return state


class MapStage(Stage):
    """Initialize (Algorithm 1): one cheapest widget per diff partition.

    When the state carries a :class:`~repro.core.mapper.MapCache` (the
    incremental session's memo), the stage feeds the graph's new diffs to
    the cache's partition index and re-solves only the partitions whose
    revision moved; untouched partitions reuse their widget.  When
    :class:`CacheStage` already restored a cached widget set, the stage
    skips entirely (``skipped=True``).
    """

    name = "map"

    def run(self, state: PipelineState) -> PipelineState:
        """Fill ``state.widgets`` with one widget per diff partition."""
        if state.graph is None:
            raise LogError("map stage needs a mined interaction graph")
        options = state.options
        diffs = state.graph.diffs
        if state.widgets_from_cache and state.widgets is not None:
            state.record(
                self.name,
                skipped=True,
                n_partitions=len({d.path for d in diffs}),
                n_initial_widgets=len(state.widgets),
                initial_cost=sum(w.cost for w in state.widgets),
            )
            return state
        if state.map_cache is not None:
            cache = state.map_cache
            cache.index.update(diffs)
            state.widgets, n_reused, n_rebuilt = initialize_indexed(
                cache, options.library, options.annotations
            )
            state.record(
                self.name,
                n_partitions_reused=n_reused,
                n_partitions_rebuilt=n_rebuilt,
                n_partitions=len(cache.index.by_path),
            )
        else:
            state.widgets = initialize(diffs, options.library, options.annotations)
            state.record(self.name, n_partitions=len({d.path for d in diffs}))
        state.record(
            self.name,
            n_initial_widgets=len(state.widgets),
            initial_cost=sum(w.cost for w in state.widgets),
        )
        return state


class MergeStage(Stage):
    """Merge (Algorithm 3) to a fixed point; identity when merging is
    disabled in the options (the ablation configuration).

    With a :class:`~repro.core.mapper.MapCache` on the state, the fixed
    point runs partition-scoped: only merge components whose partitions
    changed since the previous run re-merge, the rest replay their
    memoised result (result-equivalent to the global fixed point).
    Inside a dirty component, per-ancestor merge steps whose interval
    window stayed clean replay through the cache's
    :class:`~repro.core.mapper.WindowMemo` — reported as
    ``n_windows_reused`` / ``n_windows_merged``.  When
    :class:`CacheStage` restored a cached widget set, the stage skips.
    After a fresh merge the widget set is persisted through
    ``state.cache_store`` when a :class:`CacheStage` armed one, making the
    next run over this key a full hit.
    """

    name = "merge"

    def run(self, state: PipelineState) -> PipelineState:
        """Contract ``state.widgets`` to the merged fixed point."""
        if state.widgets is None or state.graph is None:
            raise LogError("merge stage needs mapped widgets")
        options = state.options
        if state.widgets_from_cache:
            state.record(
                self.name,
                skipped=True,
                merged=options.merge,
                n_merge_rounds=0,
                n_widgets=len(state.widgets),
                final_cost=sum(w.cost for w in state.widgets),
            )
            return state
        rounds = 0
        if options.merge and state.widgets:
            stats = MapperStats()
            if state.map_cache is not None:
                state.widgets, n_reused, n_merged = merge_widgets_incremental(
                    state.widgets,
                    options.library,
                    options.annotations,
                    state.map_cache,
                    stats=stats,
                )
                state.record(
                    self.name,
                    n_components=stats.extra.get("n_components", 0),
                    n_components_reused=n_reused,
                    n_components_merged=n_merged,
                    n_windows_reused=stats.extra.get("n_windows_reused", 0),
                    n_windows_merged=stats.extra.get("n_windows_merged", 0),
                )
            else:
                leaf_diffs = [d for d in state.graph.diffs if d.is_leaf]
                state.widgets = merge_widgets(
                    state.widgets,
                    options.library,
                    options.annotations,
                    stats=stats,
                    leaf_diffs=leaf_diffs,
                )
            rounds = stats.n_merge_rounds
        state.record(
            self.name,
            merged=options.merge,
            n_merge_rounds=rounds,
            n_widgets=len(state.widgets),
            final_cost=sum(w.cost for w in state.widgets),
        )
        if state.cache_store is not None and state.cache_key is not None:
            try:
                state.cache_store.save_widget_set(
                    *state.cache_key, state.widgets, state.graph
                )
            except (CacheError, OSError) as exc:
                # the merge already succeeded; a failed persist must not
                # destroy the run — surface it in the stage stats instead
                state.record(self.name, cache_save_error=str(exc))
        return state
