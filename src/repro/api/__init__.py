"""Public staged-pipeline API.

The generation pipeline (Figure 2a) as first-class, composable pieces:

* :class:`~repro.api.stages.Stage` and the five concrete stages
  (``ParseStage``, ``SegmentStage``, ``MineStage``, ``MapStage``,
  ``MergeStage``) with the uniform ``run(state) -> state`` contract;
* :class:`~repro.api.pipeline.Pipeline` — an observable stage composition
  with per-stage timings and :class:`~repro.api.pipeline.PipelineObserver`
  hooks;
* :func:`~repro.api.pipeline.generate` /
  :func:`~repro.api.pipeline.generate_many` /
  :func:`~repro.api.pipeline.generate_segmented` — one-shot, batch, and
  mixed-log entry points returning immutable
  :class:`~repro.api.result.GenerationResult` values;
* :class:`~repro.api.session.InterfaceSession` — incremental consumption
  that reuses the already-built interaction graph across appends, with
  ``save``/``resume`` persistence across processes.

Scale features layer on without changing the contracts:
``generate_many(..., workers=N)`` shards a batch across a process pool,
and ``PipelineOptions(cache_dir=...)`` inserts a
:class:`~repro.api.stages.CacheStage` so re-runs over an already-mined
log skip the Mine stage (see :mod:`repro.cache`).
"""

from repro.api.pipeline import (
    Pipeline,
    PipelineObserver,
    generate,
    generate_many,
    generate_segmented,
)
from repro.api.result import GenerationResult, PipelineRun, StageReport
from repro.api.session import InterfaceSession
from repro.api.stages import (
    CacheStage,
    MapStage,
    MergeStage,
    MineStage,
    ParseStage,
    PipelineState,
    SegmentStage,
    Stage,
)

__all__ = [
    "Pipeline",
    "PipelineObserver",
    "generate",
    "generate_many",
    "generate_segmented",
    "GenerationResult",
    "PipelineRun",
    "StageReport",
    "InterfaceSession",
    "PipelineState",
    "Stage",
    "ParseStage",
    "SegmentStage",
    "CacheStage",
    "MineStage",
    "MapStage",
    "MergeStage",
]
