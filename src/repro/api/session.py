"""Incremental generation sessions.

Production logs grow; re-mining the whole log on every arrival is
``O(|Q| * window)`` tree alignments *per append*.  An
:class:`InterfaceSession` keeps the interaction graph built so far and, on
each append, aligns only the pairs that involve a new query — the already
compared pairs (and their diff records) are reused as-is.  Mapping is then
re-run over the accumulated diffs table, which is cheap next to mining.

The session is result-equivalent to batch generation: after any sequence of
appends, the widget set matches a one-shot
:func:`repro.api.generate` over the concatenated log, because the pair set
is identical and the diffs table is normalised to the full build's
``(q1, q2)``-lexicographic order before mapping.

Usage::

    session = InterfaceSession()
    session.append_sql(morning_statements)
    result = session.append_sql(afternoon_statements)
    result.run.n_pairs_compared     # pairs aligned by THIS append only
    session.interface.expresses(q)
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.api.pipeline import (
    PipelineObserver,
    Pipeline,
    _assemble_result,
)
from repro.api.result import GenerationResult, StageReport
from repro.api.stages import MapStage, MergeStage, MineStage, PipelineState
from repro.core.options import PipelineOptions
from repro.errors import LogError
from repro.graph.build import BuildStats, extend_interaction_graph
from repro.graph.interaction import InteractionGraph
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql

__all__ = ["InterfaceSession"]


class InterfaceSession:
    """A generation session that consumes a query log incrementally.

    Args:
        options: pipeline configuration (defaults to the paper's
            recommended configuration).
        observers: hooks notified by the mapping pipeline of every append.
    """

    def __init__(
        self,
        options: PipelineOptions | None = None,
        observers: Iterable[PipelineObserver] = (),
    ):
        self.options = options or PipelineOptions()
        self._observers = tuple(observers)
        self._graph = InteractionGraph(queries=[])
        self._stats = BuildStats()
        self._n_appends = 0
        self._last: GenerationResult | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graph.queries)

    @property
    def queries(self) -> list[Node]:
        """The queries consumed so far (a copy, in log order)."""
        return list(self._graph.queries)

    @property
    def n_pairs_compared(self) -> int:
        """Total tree alignments across all appends — equal to what one
        full build over the same log would perform."""
        return self._stats.n_pairs_compared

    @property
    def result(self) -> GenerationResult | None:
        """The result of the latest append, if any."""
        return self._last

    @property
    def interface(self):
        """The latest interface, if any append happened yet."""
        return self._last.interface if self._last else None

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def append_sql(self, statements: Iterable[str]) -> GenerationResult:
        """Parse raw SQL statements and append them.

        Raises:
            LogError: for an empty batch.
            SQLSyntaxError: if any statement fails to parse.
        """
        statements = list(statements)
        if not statements:
            raise LogError("cannot append an empty batch of queries")
        return self.append([parse_sql(sql) for sql in statements])

    def append(self, queries: Iterable[Node]) -> GenerationResult:
        """Append parsed queries, mine only the new pairs, and remap.

        Returns the refreshed :class:`GenerationResult`; its run's
        ``n_pairs_compared`` counts only the alignments this append
        performed (the incremental saving the ROADMAP asks for).
        """
        queries = list(queries)
        if not queries:
            raise LogError("cannot append an empty batch of queries")
        append_stats = BuildStats()
        extend_interaction_graph(
            self._graph,
            queries,
            window=self.options.window,
            prune=self.options.lca_pruning,
            annotations=self.options.annotations,
            stats=append_stats,
        )
        self._stats.n_pairs_compared += append_stats.n_pairs_compared
        self._stats.mining_seconds += append_stats.mining_seconds
        self._n_appends += 1
        self._last = self._remap(append_stats)
        return self._last

    # ------------------------------------------------------------------
    # mapping over the accumulated graph
    # ------------------------------------------------------------------
    def _normalised_graph(self) -> InteractionGraph:
        """The accumulated graph with edges/diffs in full-build order.

        ``extend_interaction_graph`` appends in arrival order; the mapper's
        greedy merge is order-sensitive, so we normalise to the
        ``(q1, q2)``-lexicographic order :func:`build_interaction_graph`
        produces — this is what makes the session result-equivalent to a
        one-shot generation.
        """
        return InteractionGraph(
            queries=list(self._graph.queries),
            edges=sorted(self._graph.edges, key=lambda e: (e.q1, e.q2)),
            diffs=sorted(self._graph.diffs, key=lambda d: (d.q1, d.q2)),
        )

    def _remap(self, append_stats: BuildStats) -> GenerationResult:
        graph = self._normalised_graph()
        state = PipelineState(
            options=self.options,
            queries=list(graph.queries),
            graph=graph,
            source=f"session#{self._n_appends}",
        )
        mine_stats: dict[str, Any] = {
            "n_pairs_compared": append_stats.n_pairs_compared,
            "n_pairs_compared_total": self._stats.n_pairs_compared,
            "n_edges": graph.n_edges,
            "n_diffs": graph.n_diffs,
            "incremental": True,
        }
        state.record(MineStage.name, **mine_stats)
        mine_report = StageReport(
            name=MineStage.name,
            seconds=append_stats.mining_seconds,
            stats=mine_stats,
        )
        # the mine report rides along as a prior report so observers'
        # on_pipeline_end sees a run with the real mining stats
        pipeline = Pipeline([MapStage(), MergeStage()], self.options)
        state, reports, run = pipeline.run(
            state, observers=self._observers, prior_reports=(mine_report,)
        )
        return _assemble_result(
            state,
            reports,
            run=run,
            provenance_extra={
                "incremental": True,
                "n_appends": self._n_appends,
                "n_pairs_compared_total": self._stats.n_pairs_compared,
            },
        )
