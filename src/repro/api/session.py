"""Incremental generation sessions, including a streaming surface.

Production logs grow; re-mining the whole log on every arrival is
``O(|Q| * window)`` tree alignments *per append*.  An
:class:`InterfaceSession` keeps the interaction graph built so far and, on
each append, aligns only the pairs that involve a new query — the already
compared pairs (and their diff records) are reused as-is.  Mapping is
incremental end to end: the session's :class:`~repro.core.mapper.MapCache`
maintains a partition index (with interval annotations — pre/post-order
windows over partition paths) over the growing diffs table, Initialize
(Algorithm 1) re-solves only the diff partitions an append actually
touched, and the Merge fixed point (Algorithm 3) runs partition-scoped —
only the merge components incident to the new pairs re-merge, the rest
replay their memoised result — and window-scoped inside dirty
components: clean sibling subtrees replay memoised merge steps, so a
skewed append pays for its dirty subtree window, not the enclosing
component.  Steady-state append cost is therefore O(dirty subtree), not
O(accumulated log).

The session is result-equivalent to batch generation: after any sequence
of appends, the widget set matches a one-shot :func:`repro.api.generate`
over the concatenated log, because the pair set is identical and the
partition index maintains the full build's ``(q1, q2)``-lexicographic
diff order.

Sessions are also durable.  :meth:`InterfaceSession.save` snapshots the
accumulated graph (via :mod:`repro.cache.serialize`) and
:meth:`InterfaceSession.resume` restores it in another process without
re-mining a single pair; when ``options.cache_dir`` is set the session
additionally reads and writes the shared
:class:`~repro.cache.store.GraphStore`, so a session can adopt a graph a
previous ``generate()`` run already mined, and
:meth:`InterfaceSession.flush_to_store` publishes both the accumulated
graph and the current widget set for later runs to full-hit on.

Usage::

    session = InterfaceSession()
    session.append_sql(morning_statements)
    result = session.append_sql(afternoon_statements)
    result.run.n_pairs_compared     # pairs aligned by THIS append only
    session.expresses("SELECT ...")  # memoised closure membership

    for snapshot in session.stream(batches_of_statements):
        print(snapshot.run.stage("merge").stats["n_components_reused"])

    session.save("session.jsonl")
    # ... later, in a different process ...
    session = InterfaceSession.resume("session.jsonl")
    session.append_sql(evening_statements)
"""

from __future__ import annotations

import asyncio
from pathlib import Path as FilePath
from typing import TYPE_CHECKING, Any, AsyncIterator, Iterable, Iterator

from repro.api.pipeline import (
    PipelineObserver,
    Pipeline,
    _assemble_result,
)
from repro.api.result import GenerationResult, StageReport
from repro.api.stages import (
    MapStage,
    MergeStage,
    MineStage,
    PipelineState,
    parse_deduplicated,
)
from repro.cache.fingerprint import LogFingerprinter, options_fingerprint
from repro.cache.serialize import load_graph, save_graph
from repro.cache.store import GraphStore
from repro.compiler.incremental import IncrementalCompiler
from repro.core.closure import ClosureCache
from repro.core.mapper import MapCache
from repro.core.options import PipelineOptions
from repro.errors import CacheError, CompileError, LogError
from repro.graph.build import BuildStats, extend_interaction_graph
from repro.graph.interaction import InteractionGraph
from repro.sqlparser.astnodes import Node
from repro.sqlparser.parser import parse_sql
from repro.treediff.memo import DiffMemo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.runtime import Database
    from repro.core.interface import Interface

__all__ = ["InterfaceSession"]


class InterfaceSession:
    """A generation session that consumes a query log incrementally.

    Args:
        options: pipeline configuration (defaults to the paper's
            recommended configuration).  With ``options.cache_dir`` set,
            the session shares the :class:`~repro.cache.store.GraphStore`
            with one-shot ``generate()`` runs: the first append adopts a
            cached graph of the same batch if one exists, and
            :meth:`flush_to_store` publishes the accumulated graph and
            widget set for later runs to reuse (explicit, because
            serialising the whole graph on *every* append would cost
            O(accumulated log) — the very thing the incremental session
            avoids).
        observers: hooks notified by the mapping pipeline of every append.
    """

    def __init__(
        self,
        options: PipelineOptions | None = None,
        observers: Iterable[PipelineObserver] = (),
    ) -> None:
        self.options = options or PipelineOptions()
        self._observers = tuple(observers)
        self._graph = InteractionGraph(queries=[])
        self._stats = BuildStats()
        self._n_appends = 0
        self._last: GenerationResult | None = None
        # partition index (with its interval annotations over partition
        # paths) + per-path, per-component, and per-window memos threaded
        # into MapStage/MergeStage on every append (see
        # repro.core.mapper.MapCache): the interval index lives exactly
        # as long as the session, so window-revision signatures recorded
        # by one append stay comparable at every later append
        self._map_cache = MapCache()
        # skeleton-level alignment plans shared by every append: once a
        # template shape has been aligned, later appends of that shape
        # replay the plan and do zero alignment-DP work (optionally
        # LRU-capped per shape for high-cardinality traffic)
        self._diff_memo = DiffMemo(
            max_plans_per_shape=self.options.max_plans_per_shape
        )
        # accumulated-log fingerprint, maintained per append so store
        # adoption/publication never re-hashes the whole log
        self._fingerprinter = LogFingerprinter()
        # positive closure proofs reused across expresses() calls while
        # the widget set is unchanged
        self._closure_cache = ClosureCache()
        # accumulated-log fingerprint for which persisted proofs were
        # already probed in the store (probe once per interface revision)
        self._proofs_probed: str | None = None
        self._proofs_adopted = 0
        # incremental page compiler, created lazily on the first
        # compile()/compile_patch() and kept across appends so per-widget
        # artifacts and closure slices carry over (see
        # repro.compiler.incremental)
        self._compiler: IncrementalCompiler | None = None
        # accumulated-log fingerprint for which a persisted compiled page
        # was already probed in the store
        self._compiled_probed: str | None = None
        self._store = (
            GraphStore(
                self.options.cache_dir, remote=self.options.daemon_socket
            )
            if self.options.cache_dir is not None
            else None
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._graph.queries)

    @property
    def queries(self) -> list[Node]:
        """The queries consumed so far (a copy, in log order)."""
        return list(self._graph.queries)

    @property
    def n_pairs_compared(self) -> int:
        """Total tree alignments across all appends — equal to what one
        full build over the same log would perform."""
        return self._stats.n_pairs_compared

    @property
    def n_alignments_memoised(self) -> int:
        """Pairs answered by diff-memo plan replay across all appends
        (no alignment DP was run for them)."""
        return self._stats.n_alignments_memoised

    @property
    def n_alignments_full(self) -> int:
        """Pairs that ran the full alignment across all appends."""
        return self._stats.n_alignments_full

    @property
    def n_windows_reused(self) -> int:
        """Merge steps answered by the interval-window memo across all
        appends — clean sibling subtrees inside dirty components whose
        recorded outcome replayed instead of re-merging (see
        :class:`~repro.core.mapper.WindowMemo`)."""
        windows = self._map_cache.windows
        return windows.n_reused if windows is not None else 0

    @property
    def n_windows_merged(self) -> int:
        """Merge steps that actually recomputed across all appends (the
        dirty-subtree work the interval index could not skip)."""
        windows = self._map_cache.windows
        return windows.n_merged if windows is not None else 0

    @property
    def result(self) -> GenerationResult | None:
        """The result of the latest append, if any."""
        return self._last

    @property
    def interface(self) -> Interface | None:
        """The latest interface, if any append happened yet."""
        return self._last.interface if self._last else None

    def expresses(self, query: Node | str) -> bool:
        """Closure membership of ``query`` in the current interface.

        Reuses positive cover proofs across calls (and across appends
        whose merge components were all clean), so repeated membership
        checks against a steady interface are much cheaper than
        ``session.interface.expresses(...)`` from cold.  With a shared
        store configured, the first check against each interface revision
        additionally adopts any proofs a previous session (or pool
        worker) published for the same accumulated log — memos survive
        session death.

        Raises:
            LogError: when nothing has been appended yet.
        """
        if self._last is None:
            raise LogError("cannot test expressibility before the first append")
        if isinstance(query, str):
            query = parse_sql(query)
        self._adopt_cached_proofs()
        return self._last.interface.expresses(query, cache=self._closure_cache)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(
        self,
        title: str = "Precision Interface",
        database: "Database | None" = None,
        limit: int = 2048,
        columns: int = 2,
    ) -> str:
        """The current interface compiled to its HTML page, incrementally.

        Byte-identical to ``compile_html(session.interface, ...)``, but
        steady-state cost is proportional to the *dirty* part of the
        page: the session's :class:`IncrementalCompiler` consumes the
        merge layer's per-path partition revisions, so only widgets whose
        partition moved since the last compile re-render, and only
        closure combinations involving a dirty widget re-render (and,
        with a database, re-execute — gated on the session's closure
        proofs).  The compiler survives appends; call this after each
        append for the incremental saving.

        Raises:
            LogError: when nothing has been appended yet.
            CompileError: when the interface has no widgets.
        """
        compiler = self._compiler_for(title, database, limit, columns)
        self._adopt_cached_proofs()
        page = compiler.compile(
            self._last.interface,
            index=self._map_cache.index,
            closure_cache=self._closure_cache,
        )
        return page.html()

    def compile_patch(
        self,
        title: str = "Precision Interface",
        database: "Database | None" = None,
        limit: int = 2048,
        columns: int = 2,
    ) -> dict[str, Any]:
        """Compile incrementally and return the *structural patch* since
        the previous compile: replaced widget blocks plus the closure
        delta (wire format of :func:`repro.compiler.incremental.make_patch`).

        The first call (or a title/layout change) returns a full
        ``kind="page"`` patch; :func:`repro.compiler.incremental.apply_patch`
        folds the stream into a page state whose
        :func:`~repro.compiler.incremental.page_html` is byte-identical
        to a full recompile at every step.

        Raises:
            LogError: when nothing has been appended yet.
            CompileError: when the interface has no widgets.
        """
        compiler = self._compiler_for(title, database, limit, columns)
        self._adopt_cached_proofs()
        return compiler.compile_patch(
            self._last.interface,
            index=self._map_cache.index,
            closure_cache=self._closure_cache,
        )

    def _compiler_for(
        self,
        title: str,
        database: "Database | None",
        limit: int,
        columns: int,
    ) -> IncrementalCompiler:
        """The session's compiler, recreated when the compile options
        change (artifacts and slices are only sound for one configuration)."""
        if self._last is None:
            raise LogError("cannot compile before the first append")
        compiler = self._compiler
        if (
            compiler is None
            or compiler.title != title
            or compiler.database is not database
            or compiler.limit != limit
            or compiler.columns != columns
        ):
            compiler = IncrementalCompiler(
                title=title, database=database, limit=limit, columns=columns
            )
            self._compiler = compiler
            self._compiled_probed = None
        self._adopt_cached_compiled(compiler)
        return compiler

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | FilePath) -> None:
        """Snapshot the session to ``path`` (versioned JSON lines).

        The snapshot holds the accumulated graph, the cumulative build
        stats, the append counter, and a fingerprint of the options, so
        :meth:`resume` can refuse a snapshot mined under different options.

        Raises:
            LogError: when nothing has been appended yet.
        """
        if not self._graph.queries:
            raise LogError("cannot save a session before the first append")
        # snapshot in full-build order so the file also loads cleanly as a
        # bare graph (load_graph + map_interactions) outside a session
        save_graph(
            path,
            self._normalised_graph(),
            self._stats,
            extra={
                "session": {
                    "n_appends": self._n_appends,
                    "options_fingerprint": options_fingerprint(self.options),
                }
            },
        )

    @classmethod
    def resume(
        cls,
        path: str | FilePath,
        options: PipelineOptions | None = None,
        observers: Iterable[PipelineObserver] = (),
    ) -> "InterfaceSession":
        """Restore a :meth:`save` snapshot — typically in a new process.

        No pair is re-aligned: the graph comes back from disk and one
        mapping pass rebuilds the current interface, so ``session.result``
        is immediately available and later appends continue incrementally.

        Args:
            path: a file written by :meth:`save`.
            options: must describe the same mining configuration the
                snapshot was built under (fingerprints are compared).
            observers: hooks for the resumed session's future appends
                (they also see the resume's mapping pass).

        Raises:
            CacheError: for a snapshot of a different format version, a
                file that is not a session snapshot, or an options
                mismatch.
        """
        graph, stats, extra = load_graph(path)
        session_meta = extra.get("session")
        if not session_meta:
            raise CacheError(
                f"{path} is a bare graph file, not a session snapshot"
            )
        session = cls(options=options, observers=observers)
        expected = session_meta.get("options_fingerprint")
        actual = options_fingerprint(session.options)
        if expected != actual:
            raise CacheError(
                "session snapshot was mined under different options "
                f"(snapshot {str(expected)[:16]}…, resume {actual[:16]}…); "
                "pass the original options to resume()"
            )
        session._graph = graph
        session._stats = stats
        session._n_appends = int(session_meta.get("n_appends", 1))
        session._fingerprinter.update(graph.queries)
        if session._store is not None and graph.queries:
            # inherit the accumulated log's persisted alignment plans, if
            # a previous incarnation flushed them: future appends of
            # known template shapes then do zero alignment-DP work
            session._adopt_cached_diff_memo(
                session._fingerprinter.hexdigest(), actual
            )
        if graph.queries:
            session._last = session._remap(BuildStats(), resumed=True)
        return session

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def append_sql(self, statements: Iterable[str]) -> GenerationResult:
        """Parse raw SQL statements and append them.

        Byte-identical statements within the batch are parsed once and
        share their (immutable) AST, mirroring the pipeline's
        :class:`~repro.api.stages.ParseStage` de-duplication.

        Raises:
            LogError: for an empty batch.
            SQLSyntaxError: if any statement fails to parse.
        """
        statements = list(statements)
        if not statements:
            raise LogError("cannot append an empty batch of queries")
        queries, _hits = parse_deduplicated(statements)
        return self.append(queries)

    def append(self, queries: Iterable[Node]) -> GenerationResult:
        """Append parsed queries, mine only the new pairs, and remap.

        Returns the refreshed :class:`GenerationResult`; its run's
        ``n_pairs_compared`` counts only the alignments this append
        performed (the incremental saving the ROADMAP asks for).
        """
        queries = list(queries)
        if not queries:
            raise LogError("cannot append an empty batch of queries")
        append_stats = BuildStats()
        cache_hit = self._adopt_cached_graph(queries)
        if not cache_hit:
            extend_interaction_graph(
                self._graph,
                queries,
                window=self.options.window,
                prune=self.options.lca_pruning,
                annotations=self.options.annotations,
                stats=append_stats,
                memo=self._diff_memo,
            )
            self._fingerprinter.update(queries)
        self._stats.n_pairs_compared += append_stats.n_pairs_compared
        self._stats.mining_seconds += append_stats.mining_seconds
        self._stats.n_alignments_memoised += append_stats.n_alignments_memoised
        self._stats.n_alignments_full += append_stats.n_alignments_full
        self._n_appends += 1
        self._last = self._remap(append_stats, cache_hit=cache_hit)
        return self._last

    def append_batch(self, batch: Any) -> GenerationResult:
        """Append one polymorphic batch: a statement, an AST, or an
        iterable of either (mixing strings and ASTs within one batch is
        allowed).  This is the element contract of :meth:`stream` /
        :meth:`astream` — and of one :class:`~repro.service.SessionPool`
        ``submit()`` — exposed directly.

        Raises:
            LogError: for an empty batch.
            SQLSyntaxError: if any raw statement fails to parse.
        """
        if isinstance(batch, str):
            return self.append_sql([batch])
        if isinstance(batch, Node):
            return self.append([batch])
        items = list(batch)
        if not items:
            raise LogError("cannot append an empty batch of queries")
        return self.append(
            [parse_sql(item) if isinstance(item, str) else item for item in items]
        )

    def stream(self, batches: Iterable[Any]) -> Iterator[GenerationResult]:
        """Consume an iterable of batches, yielding a result per batch.

        Each element of ``batches`` may be a raw SQL string, a parsed
        :class:`~repro.sqlparser.astnodes.Node`, or an iterable of either
        (one append per element).  Yields the refreshed
        :class:`GenerationResult` snapshot after every append — the same
        object :meth:`append` would return, per-append stage reports
        included — so a consumer can watch recall, cost, and incremental
        counters evolve while the log is still arriving.  Lazy: batches
        are pulled one at a time, making it safe to pass an unbounded
        generator (e.g. a tailed log file).

        Raises:
            LogError: for an empty batch (an empty *iterable* of batches
                yields nothing).
            SQLSyntaxError: if any raw statement fails to parse.
        """
        for batch in batches:
            yield self.append_batch(batch)

    async def astream(self, batches: Any) -> AsyncIterator[GenerationResult]:
        """Async :meth:`stream`: consume a sync or async iterable of
        batches, yielding a result snapshot per batch.

        Each append runs in a worker thread (``asyncio.to_thread``), so an
        event loop serving other traffic is not blocked by the mining and
        mapping work.  Appends are sequential — the session is not
        re-entrant — but the loop stays responsive between and during
        them.

        Usage::

            async for snapshot in session.astream(queue_reader()):
                publish(snapshot.to_dict())
        """
        if hasattr(batches, "__aiter__"):
            async for batch in batches:
                yield await asyncio.to_thread(self.append_batch, batch)
        else:
            for batch in batches:
                yield await asyncio.to_thread(self.append_batch, batch)

    # ------------------------------------------------------------------
    # shared graph store
    # ------------------------------------------------------------------
    def _adopt_cached_graph(self, queries: list[Node]) -> bool:
        """On the session's first batch, try the shared store.

        A previous ``generate()`` (or session) over exactly this batch
        under these options left its graph in the store; adopting it makes
        the first append mine nothing.  The key's persisted diff memo —
        the alignment plans that mine produced — is adopted alongside, so
        *later* appends of known template shapes replay instead of
        aligning.  Later appends never hit the graph table — their
        accumulated log is session-specific — so the lookup is skipped.
        """
        if self._store is None or self._graph.queries:
            return False
        probe = LogFingerprinter().update(queries)
        opts_fp = options_fingerprint(self.options)
        self._adopt_cached_diff_memo(probe.hexdigest(), opts_fp)
        cached = self._store.load(probe.hexdigest(), opts_fp)
        if cached is None:
            return False
        graph, mined_stats = cached
        self._graph = graph
        self._fingerprinter = probe
        # the alignments were paid for by whoever populated the store;
        # count them into the session totals to keep the "equal to one
        # full build" invariant of n_pairs_compared
        self._stats.n_pairs_compared += mined_stats.n_pairs_compared
        return True

    def _adopt_cached_diff_memo(self, log_fp: str, opts_fp: str) -> int:
        """Warm the session's diff memo from the store's fourth table.

        Each persisted representative pair is re-aligned once by the
        current algorithm (see
        :meth:`~repro.treediff.memo.DiffMemo.import_pairs`), so adoption
        costs O(unique shapes) and can never change results.  Returns the
        number of plans imported.
        """
        if self._store is None:
            return 0
        pairs = self._store.load_diff_memo_pairs(log_fp, opts_fp)
        if not pairs:
            return 0
        return self._diff_memo.import_pairs(pairs)

    def _adopt_cached_proofs(self) -> None:
        """Arm the closure cache with persisted proofs for the current
        accumulated log, once per interface revision.

        Proofs live in the store's third table under the same
        content-addressed key as the graph and widget set; they were
        proved against the key's deterministic widget set, which the
        session's current widgets match whenever the accumulated
        fingerprints match.  Negative results are never persisted (see
        :class:`~repro.core.closure.ClosureCache`), so adopting can only
        skip work, not change answers.
        """
        if self._store is None or self._last is None:
            return
        log_fp = self._fingerprinter.hexdigest()
        if self._proofs_probed == log_fp:
            return
        self._proofs_probed = log_fp
        triples = self._store.load_proof_triples(
            log_fp, options_fingerprint(self.options)
        )
        if triples is None:
            return
        self._proofs_adopted += self._closure_cache.import_proofs(
            self._last.interface.widgets, triples
        )

    def _adopt_cached_compiled(self, compiler: IncrementalCompiler) -> int:
        """Warm the compiler's closure-slice cache from the store's fifth
        table, once per accumulated-log fingerprint.

        The persisted page's slices are keyed by content-addressed widget
        fingerprints (see
        :meth:`~repro.compiler.incremental.IncrementalCompiler.import_state`),
        so a stale or foreign record can cost time but never correctness.
        Returns the number of slices adopted.
        """
        if self._store is None or not self._graph.queries:
            return 0
        log_fp = self._fingerprinter.hexdigest()
        if self._compiled_probed == log_fp:
            return 0
        self._compiled_probed = log_fp
        state = self._store.load_compiled_page(
            log_fp, options_fingerprint(self.options)
        )
        if state is None:
            return 0
        try:
            return compiler.import_state(state)
        except CompileError:
            # foreign patch version: the record is unusable, not an error
            return 0

    def flush_to_store(self) -> None:
        """Publish the accumulated graph and widget set to the store.

        Keyed by the *accumulated* log's fingerprint, so both a one-shot
        ``generate()`` over the concatenated log and a future session fed
        the same batches will hit — and, with the widget set alongside,
        full-hit (Mine, Map, and Merge all skipped).  The *normalised*
        graph is what gets written: store consumers map straight off the
        stored diff order, and the greedy merge is order-sensitive, so
        entries must always be in full-build ``(q1, q2)``-lexicographic
        order.

        Explicit rather than automatic: serialising the whole graph costs
        O(accumulated log), so the caller decides when that is worth
        paying (typically once, after the last append of a batch window).
        A no-op when no ``cache_dir`` is configured.

        Raises:
            LogError: when nothing has been appended yet.
        """
        if self._store is None:
            return
        if not self._graph.queries:
            raise LogError("cannot flush a session before the first append")
        log_fp = self._fingerprinter.hexdigest()
        opts_fp = options_fingerprint(self.options)
        normalised = self._normalised_graph()
        self._store.save(log_fp, opts_fp, normalised, self._stats)
        # the alignment plans ride along so the next session (or pool
        # worker) over this log mines known templates by replay only
        self._store.save_diff_memo(log_fp, opts_fp, self._diff_memo)
        if self._last is not None:
            self._store.save_widget_set(
                log_fp, opts_fp, self._last.interface.widgets, normalised
            )
            # proofs accumulated by expresses() ride along so the next
            # session over this log starts with a warm closure cache
            self._store.save_closure_proofs(
                log_fp, opts_fp, self._closure_cache, self._last.interface.widgets
            )
        if self._compiler is not None and self._compiler.page is not None:
            # the compiled page rides along so the next session over this
            # log serves its first page from replayed closure slices
            self._store.save_compiled_page(
                log_fp, opts_fp, self._compiler.page.to_state()
            )

    # ------------------------------------------------------------------
    # mapping over the accumulated graph
    # ------------------------------------------------------------------
    def _normalised_graph(self) -> InteractionGraph:
        """The accumulated graph with edges/diffs in full-build order.

        ``extend_interaction_graph`` appends in arrival order; the mapper's
        greedy merge is order-sensitive, so persistence normalises to the
        ``(q1, q2)``-lexicographic order :func:`build_interaction_graph`
        produces — the in-memory remap gets the same order from the
        :class:`~repro.core.mapper.PartitionIndex` without sorting.
        """
        return InteractionGraph(
            queries=list(self._graph.queries),
            edges=sorted(self._graph.edges, key=lambda e: (e.q1, e.q2)),
            diffs=sorted(self._graph.diffs, key=lambda d: (d.q1, d.q2)),
        )

    def _remap(
        self,
        append_stats: BuildStats,
        cache_hit: bool = False,
        resumed: bool = False,
    ) -> GenerationResult:
        # the raw (arrival-order) graph is enough here: MapStage/MergeStage
        # consume the diffs through the MapCache's partition index, which
        # maintains full-build order incrementally
        state = PipelineState(
            options=self.options,
            queries=list(self._graph.queries),
            graph=self._graph,
            source=f"session#{self._n_appends}",
            map_cache=self._map_cache,
        )
        mine_stats: dict[str, Any] = {
            "n_pairs_compared": append_stats.n_pairs_compared,
            "n_pairs_compared_total": self._stats.n_pairs_compared,
            "n_alignments_memoised": append_stats.n_alignments_memoised,
            "n_alignments_full": append_stats.n_alignments_full,
            "n_edges": self._graph.n_edges,
            "n_diffs": self._graph.n_diffs,
            "incremental": True,
        }
        if cache_hit:
            mine_stats["cache_hit"] = True
        if resumed:
            mine_stats["resumed"] = True
        state.record(MineStage.name, **mine_stats)
        mine_report = StageReport(
            name=MineStage.name,
            seconds=append_stats.mining_seconds,
            stats=mine_stats,
        )
        # the mine report rides along as a prior report so observers'
        # on_pipeline_end sees a run with the real mining stats
        pipeline = Pipeline([MapStage(), MergeStage()], self.options)
        state, reports, run = pipeline.run(
            state, observers=self._observers, prior_reports=(mine_report,)
        )
        provenance_extra: dict[str, Any] = {
            "incremental": True,
            "n_appends": self._n_appends,
            "n_pairs_compared_total": self._stats.n_pairs_compared,
        }
        if resumed:
            provenance_extra["resumed"] = True
        return _assemble_result(
            state,
            reports,
            run=run,
            provenance_extra=provenance_extra,
        )
