"""Immutable generation results.

The staged pipeline reports everything it did through value objects instead
of mutable side-channels: each stage produces a :class:`StageReport`, the
reports aggregate into a :class:`PipelineRun`, and :func:`repro.api.generate`
wraps the mined interface, its provenance, and the run record into one
frozen :class:`GenerationResult`.

All three types are frozen dataclasses; their mapping-valued fields are
wrapped in :class:`types.MappingProxyType`.  The run record, provenance,
and the result's field bindings therefore cannot be mutated behind a
caller's back — the property the old ``PrecisionInterfaces.last_run``
attribute could not offer.  Note the scope: the wrapped
:class:`~repro.core.interface.Interface` is a live object (its widget
list and metadata stay mutable, as the compiler and layout code rely on);
callers caching results should treat it as read-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # import at runtime would be circular via repro.core
    from repro.core.interface import Interface

__all__ = ["StageReport", "PipelineRun", "GenerationResult"]


def _frozen_mapping(value: Mapping[str, Any] | None) -> Mapping[str, Any]:
    return MappingProxyType(dict(value or {}))


@dataclass(frozen=True)
class StageReport:
    """What one stage did during one pipeline run.

    Attributes:
        name: the stage's name (``"parse"``, ``"mine"``, ...).
        seconds: wall-clock time spent inside the stage.
        stats: stage-specific counters (pairs compared, widgets built, ...).
    """

    name: str
    seconds: float
    stats: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "stats", _frozen_mapping(self.stats))

    # mappingproxy does not pickle; ship a plain dict across process
    # boundaries (the sharded generate_many) and re-freeze on arrival
    def __getstate__(self) -> dict[str, Any]:
        return {"name": self.name, "seconds": self.seconds, "stats": dict(self.stats)}

    def __setstate__(self, state: dict[str, Any]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "stats", _frozen_mapping(state["stats"]))

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable copy of the report."""
        return {"name": self.name, "seconds": self.seconds, "stats": dict(self.stats)}


@dataclass(frozen=True)
class PipelineRun:
    """Record of one generation run (timings and graph sizes), used by the
    runtime experiments of Appendix B.

    Field names are unchanged from the seed's mutable ``PipelineRun`` so the
    runtime harness and benchmarks read the same counters; the record is now
    frozen and additionally carries the per-stage :class:`StageReport` list.
    """

    n_queries: int = 0
    n_edges: int = 0
    n_diffs: int = 0
    n_pairs_compared: int = 0
    mining_seconds: float = 0.0
    mapping_seconds: float = 0.0
    n_widgets: int = 0
    interface_cost: float = 0.0
    stages: tuple[StageReport, ...] = ()

    @property
    def total_seconds(self) -> float:
        """Mining plus mapping wall-clock time for the run."""
        return self.mining_seconds + self.mapping_seconds

    def stage(self, name: str) -> StageReport | None:
        """The report of the named stage, if the pipeline ran it."""
        for report in self.stages:
            if report.name == name:
                return report
        return None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable copy of the run record (stages included)."""
        return {
            "n_queries": self.n_queries,
            "n_edges": self.n_edges,
            "n_diffs": self.n_diffs,
            "n_pairs_compared": self.n_pairs_compared,
            "mining_seconds": self.mining_seconds,
            "mapping_seconds": self.mapping_seconds,
            "total_seconds": self.total_seconds,
            "n_widgets": self.n_widgets,
            "interface_cost": self.interface_cost,
            "stages": [report.to_dict() for report in self.stages],
        }


@dataclass(frozen=True)
class GenerationResult:
    """One generated interface plus everything needed to audit it.

    The record itself is frozen (fields cannot be rebound, ``run`` and
    ``provenance`` are deeply read-only); the ``interface`` is a live
    object — treat it as read-only when caching results, or its widget
    list can drift from the frozen run counters.

    Attributes:
        interface: the mined :class:`~repro.core.interface.Interface`.
        run: the frozen :class:`PipelineRun` with per-stage reports.
        provenance: where the log came from and which options mined it.
    """

    interface: Interface
    run: PipelineRun
    provenance: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "provenance", _frozen_mapping(self.provenance))

    def __getstate__(self) -> dict[str, Any]:
        return {
            "interface": self.interface,
            "run": self.run,
            "provenance": dict(self.provenance),
        }

    def __setstate__(self, state: dict[str, Any]) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "provenance", _frozen_mapping(state["provenance"]))

    # convenience pass-throughs (keep one-liners like
    # ``generate(log).describe()`` working without unwrapping)
    @property
    def n_widgets(self) -> int:
        """Widget count of the mined interface."""
        return self.interface.n_widgets

    @property
    def cost(self) -> float:
        """Total cost of the mined interface."""
        return self.interface.cost

    def describe(self) -> str:
        """Human-readable summary of the mined interface."""
        return self.interface.describe()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable statistics (consumed by ``--json`` and the
        benchmark dashboards).  ASTs and widget domains are summarised, not
        embedded."""
        return {
            "provenance": dict(self.provenance),
            "run": self.run.to_dict(),
            "interface": {
                "n_widgets": self.interface.n_widgets,
                "cost": self.interface.cost,
                "widgets": [
                    {"type": kind, "path": path, "domain_size": size}
                    for kind, path, size in self.interface.widget_summary()
                ],
            },
        }
