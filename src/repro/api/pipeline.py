"""The staged pipeline and the public generation entry points.

A :class:`Pipeline` is an ordered list of :class:`~repro.api.stages.Stage`
objects with the uniform ``run(state) -> state`` contract.  The pipeline
wraps every stage with wall-clock timing, notifies registered
:class:`PipelineObserver` hooks, and assembles the stage records into the
frozen :class:`~repro.api.result.PipelineRun`.

Entry points::

    from repro.api import generate, generate_many, generate_segmented

    result = generate(["SELECT a FROM t WHERE x = 1",
                       "SELECT a FROM t WHERE x = 2"])
    result.interface.describe()
    result.run.stage("mine").stats["n_pairs_compared"]

``generate`` accepts raw SQL strings, parsed ASTs, or a
:class:`~repro.logs.model.QueryLog`; ``generate_many`` maps it over a batch
of logs (the multi-client workloads); ``generate_segmented`` first runs the
:class:`~repro.api.stages.SegmentStage` to split a mixed log into analyses
and mines one interface per analysis.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable, Sequence

from repro.api.result import GenerationResult, PipelineRun, StageReport
from repro.api.stages import (
    CacheStage,
    MapStage,
    MergeStage,
    MineStage,
    ParseStage,
    PipelineState,
    SegmentStage,
    Stage,
)
from repro.core.interface import Interface
from repro.core.options import PipelineOptions
from repro.errors import LogError
from repro.sqlparser.astnodes import Node

__all__ = [
    "PipelineObserver",
    "Pipeline",
    "generate",
    "generate_many",
    "generate_segmented",
]


class PipelineObserver:
    """Instrumentation hooks; subclass and override what you need.

    Observers see the live state (metrics exporters, progress bars, stage
    tracers).  Hook exceptions propagate — an observer is part of the run.
    """

    def on_pipeline_start(self, pipeline: "Pipeline", state: PipelineState) -> None:
        """Called once before the first stage."""

    def on_stage_start(self, stage: Stage, state: PipelineState) -> None:
        """Called immediately before ``stage.run``."""

    def on_stage_end(
        self, stage: Stage, state: PipelineState, report: StageReport
    ) -> None:
        """Called after ``stage.run`` with the stage's frozen report."""

    def on_pipeline_end(
        self, pipeline: "Pipeline", state: PipelineState, run: PipelineRun
    ) -> None:
        """Called once after the last stage with the aggregated run."""


class Pipeline:
    """An ordered, observable composition of stages.

    Args:
        stages: the stage sequence; composition order is execution order.
        options: pipeline configuration shared by all runs (defaults to the
            paper's recommended configuration).
    """

    def __init__(
        self,
        stages: Sequence[Stage],
        options: PipelineOptions | None = None,
    ) -> None:
        if not stages:
            # a composition mistake, not a log problem — keep it out of
            # the LogError/ReproError family the CLI reports as log errors
            raise ValueError("a pipeline needs at least one stage")
        self.stages: tuple[Stage, ...] = tuple(stages)
        self.options = options or PipelineOptions()

    @classmethod
    def default(cls, options: PipelineOptions | None = None) -> "Pipeline":
        """The paper's Figure 2a pipeline: parse → mine → map → merge.

        When ``options.cache_dir`` is set, a
        :class:`~repro.api.stages.CacheStage` is inserted before the Mine
        stage: a second run over the same log restores the interaction
        graph from disk and the Mine stage reports ``skipped=True``; when
        the store also holds the key's widget set (a *full* hit), Map and
        Merge report ``skipped=True`` too and the warm run does no
        pairwise diffing or widget solving at all.
        """
        options = options or PipelineOptions()
        stages: list[Stage] = [ParseStage()]
        if options.cache_dir is not None:
            stages.append(CacheStage())
        stages.extend([MineStage(), MapStage(), MergeStage()])
        return cls(stages, options)

    @property
    def stage_names(self) -> tuple[str, ...]:
        """The composed stages' names, in execution order."""
        return tuple(stage.name for stage in self.stages)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        state: PipelineState,
        observers: Iterable[PipelineObserver] = (),
        prior_reports: Iterable[StageReport] = (),
    ) -> tuple[PipelineState, tuple[StageReport, ...], PipelineRun]:
        """Run every stage in order, timing each one.

        Args:
            state: the run's state (mutated and returned).
            observers: instrumentation hooks.
            prior_reports: reports of work already done outside this
                pipeline (the incremental session's mine step); they are
                included in the returned reports and in the run handed to
                ``on_pipeline_end``, so observers see the whole picture.

        Returns the advanced state, the per-stage reports, and the
        aggregated :class:`PipelineRun` (the same object observers see).
        """
        observers = tuple(observers)
        for observer in observers:
            observer.on_pipeline_start(self, state)
        reports: list[StageReport] = list(prior_reports)
        for stage in self.stages:
            for observer in observers:
                observer.on_stage_start(stage, state)
            started = time.perf_counter()
            state = stage.run(state)
            elapsed = time.perf_counter() - started
            report = StageReport(
                name=stage.name,
                seconds=elapsed,
                stats=state.records.get(stage.name, {}),
            )
            reports.append(report)
            for observer in observers:
                observer.on_stage_end(stage, state, report)
        run = _run_from(state, tuple(reports))
        for observer in observers:
            observer.on_pipeline_end(self, state, run)
        return state, tuple(reports), run

    def generate(
        self,
        log: Any,
        observers: Iterable[PipelineObserver] = (),
        source: str | None = None,
    ) -> GenerationResult:
        """Run the pipeline over one log and assemble a result.

        Args:
            log: a :class:`~repro.logs.model.QueryLog`, a list of raw SQL
                strings, or a list of parsed ASTs (log order preserved).
            observers: instrumentation hooks.
            source: provenance label override.

        Raises:
            LogError: for an empty log.
            SQLSyntaxError: if any raw statement fails to parse.
        """
        state = _state_for(log, self.options, source=source)
        state, reports, run = self.run(state, observers=observers)
        return _assemble_result(state, reports, run=run)


# ----------------------------------------------------------------------
# state construction / result assembly (shared with InterfaceSession)
# ----------------------------------------------------------------------
def _state_for(
    log: Any, options: PipelineOptions, source: str | None = None
) -> PipelineState:
    """Build the initial state for a log given as QueryLog, SQL, or ASTs."""
    if hasattr(log, "statements") and hasattr(log, "asts"):  # QueryLog duck-type
        return PipelineState(
            options=options,
            statements=list(log.statements()),
            source=source or getattr(log, "name", "log"),
        )
    if isinstance(log, str):
        raise LogError(
            "pass a list of SQL statements (or a QueryLog), not a single "
            "string — a bare string would be iterated character by character"
        )
    items = list(log)
    if not items:
        raise LogError("cannot generate an interface from an empty log")
    if isinstance(items[0], str):
        return PipelineState(options=options, statements=items, source=source or "sql")
    return PipelineState(options=options, queries=items, source=source or "log")


def _run_from(
    state: PipelineState, reports: tuple[StageReport, ...]
) -> PipelineRun:
    """Aggregate stage reports into the frozen run record."""
    by_name = {report.name: report for report in reports}
    mine = by_name.get(MineStage.name)
    mining_seconds = mine.seconds if mine else 0.0
    mapping_seconds = sum(
        report.seconds
        for name in (MapStage.name, MergeStage.name)
        if (report := by_name.get(name)) is not None
    )
    widgets = state.widgets or []
    return PipelineRun(
        n_queries=len(state.queries or []),
        n_edges=state.graph.n_edges if state.graph else 0,
        n_diffs=state.graph.n_diffs if state.graph else 0,
        n_pairs_compared=int(mine.stats.get("n_pairs_compared", 0)) if mine else 0,
        mining_seconds=mining_seconds,
        mapping_seconds=mapping_seconds,
        n_widgets=len(widgets),
        interface_cost=sum(w.cost for w in widgets),
        stages=reports,
    )


def _assemble_result(
    state: PipelineState,
    reports: tuple[StageReport, ...],
    run: PipelineRun | None = None,
    provenance_extra: dict[str, Any] | None = None,
) -> GenerationResult:
    """Wrap the final state into an immutable GenerationResult.

    ``run`` is the record :meth:`Pipeline.run` already aggregated; it is
    rebuilt from the reports only when not supplied.
    """
    if not state.queries or state.graph is None or state.widgets is None:
        raise LogError("pipeline did not produce an interface (missing stages?)")
    options = state.options
    interface = Interface(
        widgets=state.widgets,
        initial_query=state.queries[0],
        annotations=options.annotations,
        metadata={
            "n_queries": len(state.queries),
            "n_edges": state.graph.n_edges,
            "n_diffs": state.graph.n_diffs,
            "window": options.window,
            "lca_pruning": options.lca_pruning,
        },
    )
    if run is None:
        run = _run_from(state, reports)
    provenance: dict[str, Any] = {
        "source": state.source,
        "n_queries": len(state.queries),
        "window": options.window,
        "lca_pruning": options.lca_pruning,
        "merge": options.merge,
        "stages": [report.name for report in reports],
    }
    provenance.update(provenance_extra or {})
    return GenerationResult(interface=interface, run=run, provenance=provenance)


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def generate(
    log: Any,
    options: PipelineOptions | None = None,
    observers: Iterable[PipelineObserver] = (),
    source: str | None = None,
) -> GenerationResult:
    """Mine one precision interface from one log.

    See :meth:`Pipeline.generate`; this runs the default staged pipeline.
    """
    return Pipeline.default(options).generate(log, observers=observers, source=source)


def _generate_in_worker(payload: tuple[Any, PipelineOptions, str | None]) -> GenerationResult:
    """Process-pool entry point: mine one log in a worker process.

    Must stay a module-level function so it pickles by reference under
    every multiprocessing start method (spawn included).
    """
    log, options, source = payload
    return Pipeline.default(options).generate(log, source=source)


def _validate_sharding(
    workers: int | None, observers: Iterable[PipelineObserver]
) -> int:
    """Validate the sharding arguments shared by the batch entry points.

    Returns the requested worker count (``1`` for ``None``).  Raises
    ``ValueError`` for a non-positive count, or for observers combined
    with a parallel request — observers hold process-local state and
    cannot follow a run into another process.
    """
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    requested = workers or 1
    if requested > 1 and tuple(observers):
        raise ValueError(
            "observers hold process-local state and are not supported with "
            "workers > 1; drop the observers or run with workers=1"
        )
    return requested


def _shard(
    payloads: list[tuple[Any, PipelineOptions, str | None]], workers: int
) -> list[GenerationResult]:
    """Run the payloads through worker processes, preserving input order."""
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_generate_in_worker, payloads))


def generate_many(
    logs: Iterable[Any],
    options: PipelineOptions | None = None,
    observers: Iterable[PipelineObserver] = (),
    workers: int | None = None,
    pool: Any | None = None,
) -> list[GenerationResult]:
    """Mine one interface per log, in input order (batch/multi-client).

    Per-client logs are independent until any cross-client analysis, so
    with ``workers > 1`` the batch is sharded across a
    :class:`concurrent.futures.ProcessPoolExecutor` — one log per task,
    results in input order.  Logs, options, and results cross process
    boundaries by pickling; a shared ``options.cache_dir`` is safe (the
    store's writes are atomic).  Observers hold live local state and
    cannot follow a run into another process, so they are only supported
    serially.

    Alternatively, pass a live :class:`~repro.service.SessionPool` as
    ``pool``: each log is submitted as its own pool client and the batch
    rides the pool's existing worker processes — repeated
    ``generate_many`` calls amortise worker start-up, and the pool's
    bounded queues apply backpressure while the batch is fed in.  The
    pool's own options govern the mining (it hosts the sessions), and it
    stays open afterwards.  ``pool`` and ``workers > 1`` are mutually
    exclusive.

    The serial path is unchanged: the stage objects are stateless, so one
    pipeline serves the whole batch; each log still gets its own state,
    reports, and result.  An empty batch yields an empty list (unlike an
    empty *log*, which raises).

    Args:
        logs: the batch; each element is anything :func:`generate` accepts.
        options: shared pipeline configuration (ignored with ``pool`` —
            the pool already carries its sessions' options).
        observers: instrumentation hooks (``workers`` must be left serial,
            ``pool`` unset).
        workers: process count; ``None`` or ``1`` runs in-process.
        pool: an open :class:`~repro.service.SessionPool` to serve the
            batch through instead of a one-shot executor.

    Raises:
        ValueError: for ``workers < 1``, observers combined with
            ``workers > 1`` or ``pool``, or ``pool`` combined with
            ``workers > 1`` (raised up front, even for batches too small
            to actually shard).
    """
    logs = list(logs)
    if pool is not None:
        if workers is not None and workers > 1:
            raise ValueError(
                "pass either a pool or workers > 1, not both — the pool "
                "already owns its worker processes"
            )
        if tuple(observers):
            raise ValueError(
                "observers hold process-local state and are not supported "
                "with a pool; drop the observers or run serially"
            )
        return _generate_many_pooled(logs, pool)
    n_workers = min(_validate_sharding(workers, observers), len(logs))
    if n_workers <= 1:
        pipeline = Pipeline.default(options)
        return [pipeline.generate(log, observers=observers) for log in logs]
    resolved = options or PipelineOptions()
    return _shard([(log, resolved, None) for log in logs], n_workers)


def _generate_many_pooled(logs: list[Any], pool: Any) -> list[GenerationResult]:
    """Serve a ``generate_many`` batch through a live SessionPool.

    Each log becomes a fresh, pool-unique client (so repeated calls never
    append onto a previous batch's sessions), is submitted as one batch,
    and is released after the drain.
    """
    client_ids = [pool.unique_client_id("generate-many") for _ in logs]
    for client_id, log in zip(client_ids, logs):
        # QueryLog duck-type: feed the statements; sessions parse in-worker
        if hasattr(log, "statements") and hasattr(log, "asts"):
            batch: Any = list(log.statements())
        else:
            batch = log
        pool.submit(client_id, batch)
    try:
        # scope failure reporting to this batch's clients: an unrelated
        # client's earlier bad batch must neither fail this call nor be
        # consumed away from its owner's own drain()
        drained = pool.drain(clients=client_ids)
        missing = [cid for cid in client_ids if cid not in drained]
        if missing:  # pragma: no cover - drain(strict=True) raises first
            raise LogError(
                f"pool returned no result for {len(missing)} of "
                f"{len(client_ids)} submitted logs"
            )
        return [drained[cid] for cid in client_ids]
    finally:
        pool.release(client_ids)


def generate_segmented(
    log: Any,
    options: PipelineOptions | None = None,
    observers: Iterable[PipelineObserver] = (),
    jump_threshold: float = 0.3,
    cluster_threshold: float = 0.3,
    workers: int | None = None,
) -> list[GenerationResult]:
    """Segment a mixed log into analyses, then mine one interface each.

    Runs parse → segment once, then the default pipeline per segment.  Each
    result's provenance carries its ``segment`` index and a derived
    ``source`` label (``<log>/analysis-<i>``).  Segments are independent
    logs, so ``workers > 1`` shards the per-segment mining across a
    process pool exactly like :func:`generate_many` (same validation,
    same observer restriction, raised before any work happens).
    """
    n_requested = _validate_sharding(workers, observers)
    resolved = options or PipelineOptions()
    state = _state_for(log, resolved)
    front = Pipeline(
        [ParseStage(), SegmentStage(jump_threshold, cluster_threshold)], resolved
    )
    state, _reports, _run = front.run(state, observers=observers)
    segments = state.segments or []
    n_workers = min(n_requested, len(segments))
    results: list[GenerationResult] = []
    if n_workers > 1:
        payloads = [
            (segment, resolved, f"{state.source}/analysis-{index}")
            for index, segment in enumerate(segments)
        ]
        mined = _shard(payloads, n_workers)
    else:
        pipeline = Pipeline.default(resolved)
        mined = [
            pipeline.generate(
                segment,
                observers=observers,
                source=f"{state.source}/analysis-{index}",
            )
            for index, segment in enumerate(segments)
        ]
    for index, result in enumerate(mined):
        results.append(
            GenerationResult(
                interface=result.interface,
                run=result.run,
                provenance={**result.provenance, "segment": index},
            )
        )
    return results
