"""Widget domains.

A widget's domain ``w.d`` is the set of subtrees the widget can swap into
the query at its path (Section 4.3).  Domains are initialised from a subset
``w.D`` of the diffs table; some widget types *extrapolate* beyond the
initialising subtrees — the paper's example is a slider initialised with
``{1, 5, 100}`` whose domain becomes the range ``[1, 100]``.

A domain may also contain ``None``, meaning "the element is absent": this
is how presence toggles (Figure 5d's *Toggle TOP* button) are modelled.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS, GrammarAnnotations

__all__ = ["WidgetDomain"]


class WidgetDomain:
    """A deduplicated set of optional subtrees, with numeric metadata.

    Args:
        entries: subtrees (and/or ``None``) that initialise the domain.
        annotations: grammar annotations used to classify entries.
    """

    def __init__(
        self,
        entries: Iterable[Node | None],
        annotations: GrammarAnnotations = SQL_ANNOTATIONS,
    ):
        self._annotations = annotations
        self._by_print: dict[int | None, Node | None] = {}
        for entry in entries:
            key = None if entry is None else entry.fingerprint
            if key not in self._by_print:
                self._by_print[key] = entry
        self._numeric_values = self._collect_numeric()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _collect_numeric(self) -> list[float] | None:
        """Numeric values of all non-null entries, or None when any entry is
        not a numeric literal."""
        values: list[float] = []
        for entry in self.subtrees():
            if self._annotations.kind_of(entry) != "num":
                return None
            values.append(self._annotations.numeric_value(entry))
        return sorted(values)

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|w.d|`` — the number of distinct entries (None counts as one)."""
        return len(self._by_print)

    @property
    def includes_none(self) -> bool:
        """True when "absent" is one of the choices."""
        return None in self._by_print

    def subtrees(self) -> Iterator[Node]:
        """Iterate the non-null entries."""
        for entry in self._by_print.values():
            if entry is not None:
                yield entry

    def entries(self) -> Iterator[Node | None]:
        """Iterate all entries, including None when present."""
        return iter(self._by_print.values())

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Node | None]:
        return self.entries()

    # ------------------------------------------------------------------
    # kinds
    # ------------------------------------------------------------------
    @property
    def is_numeric(self) -> bool:
        """All non-null entries are numeric literals."""
        return self._numeric_values is not None and bool(self._numeric_values)

    @property
    def is_literal(self) -> bool:
        """All non-null entries are literals (numeric or string)."""
        return all(
            self._annotations.kind_of(entry) != "tree" for entry in self.subtrees()
        )

    @property
    def node_types(self) -> frozenset[str]:
        """Node types present among the non-null entries."""
        return frozenset(entry.node_type for entry in self.subtrees())

    @property
    def numeric_range(self) -> tuple[float, float] | None:
        """``(min, max)`` of the numeric values, or None for non-numeric
        domains."""
        if not self.is_numeric:
            return None
        return self._numeric_values[0], self._numeric_values[-1]

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def contains(self, subtree: Node | None, extrapolate: bool = False) -> bool:
        """Is ``subtree`` one of this domain's choices?

        Args:
            subtree: candidate subtree, or ``None`` for "absent".
            extrapolate: when True and the domain is numeric, any value
                within ``[min, max]`` counts (the slider semantics of
                Example 4.3).
        """
        if subtree is None:
            return self.includes_none
        if subtree.fingerprint in self._by_print:
            stored = self._by_print[subtree.fingerprint]
            if stored is not None and stored.equals(subtree):
                return True
        if extrapolate and self.is_numeric:
            if self._annotations.kind_of(subtree) == "num":
                low, high = self.numeric_range  # type: ignore[misc]
                return low <= self._annotations.numeric_value(subtree) <= high
        return False

    def between_range(self) -> tuple[Node, float, float] | None:
        """Range-slider metadata: when every non-null entry is a
        ``BetweenExpr`` over the same target expression with numeric
        bounds, return ``(target_expr, overall_min, overall_max)`` — the
        track the two slider handles move on.  Otherwise ``None``."""
        subtrees = list(self.subtrees())
        if not subtrees or self.includes_none:
            return None
        reference: Node | None = None
        low = float("inf")
        high = float("-inf")
        for node in subtrees:
            if node.node_type != "BetweenExpr" or len(node.children) != 3:
                return None
            target, low_node, high_node = node.children
            if reference is None:
                reference = target
            elif not reference.equals(target):
                return None
            if self._annotations.kind_of(low_node) != "num":
                return None
            if self._annotations.kind_of(high_node) != "num":
                return None
            low = min(low, self._annotations.numeric_value(low_node))
            high = max(high, self._annotations.numeric_value(high_node))
        assert reference is not None
        return reference, low, high

    def contains_between(self, subtree: Node) -> bool:
        """Is ``subtree`` a BETWEEN expression the extrapolated range
        slider can produce (same target, both bounds on the track)?"""
        metadata = self.between_range()
        if metadata is None:
            return False
        reference, low, high = metadata
        if subtree.node_type != "BetweenExpr" or len(subtree.children) != 3:
            return False
        target, low_node, high_node = subtree.children
        if not reference.equals(target):
            return False
        if self._annotations.kind_of(low_node) != "num":
            return False
        if self._annotations.kind_of(high_node) != "num":
            return False
        low_value = self._annotations.numeric_value(low_node)
        high_value = self._annotations.numeric_value(high_node)
        return low <= low_value <= high and low <= high_value <= high

    def merged_with(self, other: "WidgetDomain") -> "WidgetDomain":
        """Union of two domains (used when widgets are combined)."""
        return WidgetDomain(
            list(self.entries()) + list(other.entries()), self._annotations
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = []
        for entry in list(self.entries())[:4]:
            labels.append("∅" if entry is None else entry.label())
        suffix = ", ..." if self.size > 4 else ""
        return f"WidgetDomain({', '.join(labels)}{suffix})"
