"""Widget cost model.

Section 4.3: each widget type has a cost function of the form

    c(w.d) = a0 + a1 * |w.d| + a2 * |w.d|^2,   a_i >= 0

estimating the time (milliseconds) for a user to express a choice with the
widget, as a function of the domain size.  The paper fits these from human
timing traces; Example 4.4 reports the fitted drop-down and textbox models::

    c_dropdown(n) = 276 + 125 n + 0.07 n^2
    c_textbox(n)  = 4790

We ship those constants as defaults (plus plausible constants for the other
seven widget types, ordered so that cheap/precise widgets win for the
domains they suit) and provide :func:`fit_cost_model` to re-derive
coefficients from (possibly simulated) timing traces via non-negative
least squares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

__all__ = ["QuadraticCost", "DEFAULT_COEFFICIENTS", "fit_cost_model"]


@dataclass(frozen=True)
class QuadraticCost:
    """A monotone quadratic cost ``a0 + a1*n + a2*n^2`` with ``a_i >= 0``."""

    a0: float
    a1: float = 0.0
    a2: float = 0.0

    def __post_init__(self) -> None:
        if self.a0 < 0 or self.a1 < 0 or self.a2 < 0:
            raise ValueError("cost coefficients must be non-negative")

    def __call__(self, domain_size: int) -> float:
        n = float(domain_size)
        return self.a0 + self.a1 * n + self.a2 * n * n

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.a0, self.a1, self.a2)


#: Default per-widget-type coefficients (milliseconds).  The drop-down and
#: textbox rows are the paper's fitted values (Example 4.4); the others were
#: chosen to respect the orderings the paper's examples imply:
#:   * a slider beats a drop-down on numeric domains of any size (§7.1.1);
#:   * a toggle is the cheapest two-option widget (Figure 5d);
#:   * a radio button beats splitting into several drop-downs only for a
#:     handful of options (Figure 5b vs 5c);
#:   * a textbox's flat cost wins for very large domains.
DEFAULT_COEFFICIENTS: dict[str, QuadraticCost] = {
    "textbox": QuadraticCost(4790.0, 0.0, 0.0),
    "toggle_button": QuadraticCost(230.0, 40.0, 0.0),
    "checkbox": QuadraticCost(230.0, 35.0, 0.0),
    "radio_button": QuadraticCost(290.0, 110.0, 10.0),
    "dropdown": QuadraticCost(276.0, 125.0, 0.07),
    "slider": QuadraticCost(280.0, 10.0, 0.0),
    "range_slider": QuadraticCost(520.0, 15.0, 0.0),
    "checkbox_list": QuadraticCost(310.0, 140.0, 0.25),
    "drag_and_drop": QuadraticCost(900.0, 260.0, 0.90),
}


def fit_cost_model(domain_sizes: list[int], times_ms: list[float]) -> QuadraticCost:
    """Fit ``a0 + a1*n + a2*n^2`` to timing traces with non-negative
    coefficients (Section 4.3's procedure).

    Args:
        domain_sizes: the |w.d| of each interaction trial.
        times_ms: measured interaction times in milliseconds.

    Returns:
        The fitted :class:`QuadraticCost`.

    Raises:
        ValueError: on empty or mismatched inputs.
    """
    if not domain_sizes or len(domain_sizes) != len(times_ms):
        raise ValueError("need equal-length, non-empty trace vectors")
    n = np.asarray(domain_sizes, dtype=float)
    design = np.column_stack([np.ones_like(n), n, n * n])
    target = np.asarray(times_ms, dtype=float)
    coefficients, _residual = nnls(design, target)
    return QuadraticCost(*[float(c) for c in coefficients])
