"""Synthetic human timing traces for cost-function fitting.

The paper collected real interaction timing traces ("we collected timing
traces (in milliseconds) by interacting with different widget types
instantiated with different domain sizes, and fit the cost function to the
traces").  We have no humans available offline, so this module simulates
traces with standard HCI latency models and lognormal noise:

* selection widgets (drop-down, radio, checkbox list) follow a
  Hick–Hyman-flavoured cost that grows with the number of options, plus a
  linear visual-scan term and a small quadratic term for scrolling long
  lists;
* pointing widgets (slider, range slider) pay a Fitts-style acquisition
  cost that is nearly independent of the domain size;
* the textbox pays a large flat typing cost;
* toggles and single checkboxes are a single click.

Fitting the paper's quadratic form to these traces (see
:func:`repro.widgets.cost.fit_cost_model`) recovers coefficients with the
same ordering — and for the drop-down/textbox pair, the same order of
magnitude — as Example 4.4, which is all the interaction mapper consumes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.widgets.cost import QuadraticCost, fit_cost_model

__all__ = ["TraceSimulator", "TimingTrace", "simulate_and_fit"]

#: Baseline per-widget latency parameters, milliseconds.
#: (base click/acquire cost, per-option scan cost, quadratic scroll cost)
_LATENCY_PROFILES: dict[str, tuple[float, float, float]] = {
    "textbox": (4800.0, 0.0, 0.0),
    "toggle_button": (240.0, 35.0, 0.0),
    "checkbox": (260.0, 40.0, 0.0),
    "radio_button": (300.0, 105.0, 0.3),
    "dropdown": (280.0, 124.0, 0.07),
    "slider": (470.0, 15.0, 0.0),
    "range_slider": (830.0, 22.0, 0.0),
    "checkbox_list": (320.0, 135.0, 0.25),
    "drag_and_drop": (920.0, 250.0, 0.9),
}


@dataclass
class TimingTrace:
    """Raw simulated trials for one widget type."""

    widget_name: str
    domain_sizes: list[int] = field(default_factory=list)
    times_ms: list[float] = field(default_factory=list)

    def append(self, domain_size: int, time_ms: float) -> None:
        self.domain_sizes.append(domain_size)
        self.times_ms.append(time_ms)

    def __len__(self) -> int:
        return len(self.domain_sizes)


class TraceSimulator:
    """Generates interaction timing traces for each widget type.

    Args:
        seed: RNG seed, for reproducible fits.
        noise_sigma: sigma of the multiplicative lognormal noise.
    """

    def __init__(self, seed: int = 7, noise_sigma: float = 0.08):
        self._rng = random.Random(seed)
        self._noise_sigma = noise_sigma

    def trial(self, widget_name: str, domain_size: int) -> float:
        """One simulated interaction, in milliseconds.

        Raises:
            KeyError: for an unknown widget type name.
        """
        base, linear, quadratic = _LATENCY_PROFILES[widget_name]
        n = float(max(1, domain_size))
        mean = base + linear * n + quadratic * n * n
        # Hick's law flavour: decision time also grows with log2(n + 1).
        mean += 40.0 * math.log2(n + 1.0)
        noise = self._rng.lognormvariate(0.0, self._noise_sigma)
        return mean * noise

    def trace(
        self,
        widget_name: str,
        domain_sizes: list[int] | None = None,
        trials_per_size: int = 20,
    ) -> TimingTrace:
        """Simulate a full trace for one widget type."""
        sizes = domain_sizes or [1, 2, 3, 5, 8, 12, 20, 35, 60, 100]
        trace = TimingTrace(widget_name=widget_name)
        for size in sizes:
            for _ in range(trials_per_size):
                trace.append(size, self.trial(widget_name, size))
        return trace


def simulate_and_fit(seed: int = 7) -> dict[str, QuadraticCost]:
    """Simulate traces for all widget types and fit cost functions.

    Returns:
        widget type name -> fitted :class:`QuadraticCost`.
    """
    simulator = TraceSimulator(seed=seed)
    fitted: dict[str, QuadraticCost] = {}
    for name in _LATENCY_PROFILES:
        trace = simulator.trace(name)
        fitted[name] = fit_cost_model(trace.domain_sizes, trace.times_ms)
    return fitted
