"""Widget types and widget instances (Section 4.3).

A widget type ``WT = (r_WT, c_WT)`` couples a *rule* — a predicate deciding
whether a domain is acceptable for this kind of widget — with a *cost
function* estimating interaction time as a function of domain size.

A widget ``w`` instantiates a widget type at a specific AST path with a
specific domain.  A widget *expresses* a diff ``d`` when their paths match
and the target subtree is in the widget's domain; widget types that
extrapolate (sliders) or are unbounded (textboxes) express more than the
subtrees they were initialised with — that is the source of interface
generalisation measured in Section 7.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import WidgetError
from repro.paths import Path
from repro.sqlparser.astnodes import Node
from repro.sqlparser.grammar import SQL_ANNOTATIONS
from repro.treediff.diff import Diff
from repro.widgets.cost import QuadraticCost
from repro.widgets.domain import WidgetDomain

__all__ = ["WidgetType", "Widget"]


@dataclass(frozen=True)
class WidgetType:
    """A kind of interactive widget.

    Attributes:
        name: identifier, e.g. ``"dropdown"``.
        rule: the constraint rule ``r_WT(w.d)``; True when the domain can be
            handled by this widget type.
        cost: the cost function ``c_WT(w.d)`` over domain size.
        extrapolates: True when the widget can express values beyond its
            initialising subtrees by interpolation (numeric sliders).
        unbounded: True when the widget can express *any* value of its
            accepted kinds regardless of the domain (textboxes).
        accepts_kinds: value kinds this widget accepts when unbounded
            membership is tested ("num"/"str").
        html_tag: hint for the HTML compiler.
    """

    name: str
    rule: Callable[[WidgetDomain], bool]
    cost: QuadraticCost
    extrapolates: bool = False
    unbounded: bool = False
    accepts_kinds: frozenset[str] = frozenset({"num", "str"})
    html_tag: str = "select"

    def accepts(self, domain: WidgetDomain) -> bool:
        """Evaluate the rule on a candidate domain."""
        return self.rule(domain)

    def cost_for(self, domain: WidgetDomain) -> float:
        return self.cost(domain.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WidgetType({self.name})"


@dataclass
class Widget:
    """An instantiated widget: a type bound to a path and a domain.

    Attributes:
        widget_type: the instantiated :class:`WidgetType`.
        path: the AST path this widget modifies (``w.p``).
        domain: the allowable subtrees (``w.d``).
        D: the subset of the diffs table that initialised the widget
           (``w.D``); retained because the merge step (Algorithm 3) reasons
           about the queries incident to these diffs.
        label: optional human-readable label set by the interface editor.
    """

    widget_type: WidgetType
    path: Path
    domain: WidgetDomain
    D: list[Diff] = field(default_factory=list)
    label: str | None = None

    def __post_init__(self) -> None:
        if not self.widget_type.accepts(self.domain):
            raise WidgetError(
                f"domain violates rule of widget type {self.widget_type.name}"
            )
        for diff in self.D:
            if diff.path != self.path:
                raise WidgetError(
                    "all diffs initialising a widget must share its path "
                    f"({diff.path} != {self.path})"
                )

    # ------------------------------------------------------------------
    # cost & expressiveness
    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """``c_WT(w.d)`` for this widget's domain."""
        return self.widget_type.cost_for(self.domain)

    def can_express_subtree(self, subtree: Node | None) -> bool:
        """Can this widget produce ``subtree`` at its path?

        ``None`` means "remove the element", allowed when the domain
        includes None.  Unbounded widgets accept any literal of their
        kinds; extrapolating widgets accept any numeric value within the
        domain's range.
        """
        if subtree is None:
            return self.domain.includes_none
        if self.widget_type.unbounded:
            kind = SQL_ANNOTATIONS.kind_of(subtree)
            if kind in self.widget_type.accepts_kinds:
                return True
            # numerics can be cast to strings (Section 4.3)
            if kind == "num" and "str" in self.widget_type.accepts_kinds:
                return True
        if self.domain.contains(subtree, extrapolate=self.widget_type.extrapolates):
            return True
        # extrapolated range slider over BETWEEN expressions
        if self.widget_type.extrapolates and self.domain.contains_between(subtree):
            return True
        return False

    def expresses(self, diff: Diff) -> bool:
        """Paper's definition: ``w`` expresses ``d`` iff ``w.p = d.p`` and
        the target subtree is within the widget's domain."""
        if diff.path != self.path:
            return False
        return self.can_express_subtree(diff.t2)

    def describe(self) -> str:
        """One-line summary used in reports and generated interfaces."""
        label = self.label or f"{self.widget_type.name}@{self.path}"
        options = []
        for entry in list(self.domain.entries())[:5]:
            options.append("(none)" if entry is None else entry.label())
        extra = ", ..." if self.domain.size > 5 else ""
        return f"{label}: [{', '.join(options)}{extra}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Widget({self.widget_type.name}@{self.path}, "
            f"|d|={self.domain.size}, cost={self.cost:.0f})"
        )
