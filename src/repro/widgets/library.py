"""The widget type library.

Nine widget types, mirroring the paper's implementation ("We defined 9 HTML
widget types natively supported in modern browsers: text-box, toggle-button,
single checkbox, radio button, drop-down list, slider, range slider,
checkbox list, drag-and-drop").

Each type pairs a constraint rule with a cost function; ``pickWidget``
(Algorithm 2) instantiates the *lowest-cost* type whose rule accepts the
domain.  The rules below are ordered so every well-formed domain is
accepted by at least one type (the radio button is the catch-all for
enumerations of arbitrary subtrees; the checkbox list is the catch-all for
domains that include "absent").
"""

from __future__ import annotations

from repro.errors import WidgetError
from repro.widgets.base import WidgetType
from repro.widgets.cost import DEFAULT_COEFFICIENTS, QuadraticCost
from repro.widgets.domain import WidgetDomain

__all__ = [
    "default_library",
    "make_widget_type",
    "TEXTBOX",
    "TOGGLE_BUTTON",
    "CHECKBOX",
    "RADIO_BUTTON",
    "DROPDOWN",
    "SLIDER",
    "RANGE_SLIDER",
    "CHECKBOX_LIST",
    "DRAG_AND_DROP",
]


# ----------------------------------------------------------------------
# rules
# ----------------------------------------------------------------------
def _rule_textbox(domain: WidgetDomain) -> bool:
    """Free-text entry: any all-literal domain without an "absent" option."""
    return domain.size >= 1 and domain.is_literal and not domain.includes_none


def _rule_toggle(domain: WidgetDomain) -> bool:
    """Exactly two states, of any kind ("a toggle button may directly
    replace the entire query's AST")."""
    return domain.size == 2


def _rule_checkbox(domain: WidgetDomain) -> bool:
    """A single presence checkbox: a *literal* element on / off.  Presence
    toggles for whole clauses or subqueries (tree-valued) fall through to
    the toggle button, matching the paper's "Toggle TOP" widget."""
    return domain.size == 2 and domain.includes_none and domain.is_literal


#: Enumeration widgets stop being usable beyond a few dozen options — the
#: paper's own argument against "one button for every query" (§4.4).  Tree
#: domains larger than this have no widget type and their partitions are
#: skipped by the mapper (literal domains fall through to the textbox).
MAX_ENUM_OPTIONS = 32


def _rule_radio(domain: WidgetDomain) -> bool:
    """Mutually-exclusive option list over arbitrary subtrees; the
    catch-all for tree-valued enumerations (Figure 5b)."""
    return 2 <= domain.size <= MAX_ENUM_OPTIONS and not domain.includes_none


def _rule_dropdown(domain: WidgetDomain) -> bool:
    """Select one literal from a list."""
    return domain.size >= 2 and domain.is_literal and not domain.includes_none


def _rule_slider(domain: WidgetDomain) -> bool:
    """Numeric selection over an extrapolated range (Example 4.3)."""
    return domain.size >= 2 and domain.is_numeric and not domain.includes_none


def _rule_range_slider(domain: WidgetDomain) -> bool:
    """Numeric low/high selection: all entries are BETWEEN expressions over
    the same attribute with numeric bounds."""
    subtrees = list(domain.subtrees())
    if domain.includes_none or len(subtrees) < 2:
        return False
    if any(node.node_type != "BetweenExpr" for node in subtrees):
        return False
    first_target = subtrees[0].children[0]
    for node in subtrees:
        if len(node.children) != 3 or not node.children[0].equals(first_target):
            return False
        low, high = node.children[1], node.children[2]
        if low.node_type not in ("NumExpr", "HexExpr"):
            return False
        if high.node_type not in ("NumExpr", "HexExpr"):
            return False
    return True


def _rule_checkbox_list(domain: WidgetDomain) -> bool:
    """Optional-element selection: "absent" plus two or more alternatives;
    the catch-all for domains that include None."""
    return domain.includes_none and 3 <= domain.size <= MAX_ENUM_OPTIONS


def _rule_drag_and_drop(domain: WidgetDomain) -> bool:
    """Reordering of a collection: all entries are collection nodes of the
    same type containing the same multiset of children."""
    subtrees = list(domain.subtrees())
    if domain.includes_none or len(subtrees) < 2:
        return False
    first = subtrees[0]
    reference = sorted(child.fingerprint for child in first.children)
    for node in subtrees:
        if node.node_type != first.node_type or len(node.children) < 2:
            return False
        if sorted(child.fingerprint for child in node.children) != reference:
            return False
    return True


# ----------------------------------------------------------------------
# the library
# ----------------------------------------------------------------------
TEXTBOX = WidgetType(
    name="textbox",
    rule=_rule_textbox,
    cost=DEFAULT_COEFFICIENTS["textbox"],
    unbounded=True,
    html_tag="input",
)
TOGGLE_BUTTON = WidgetType(
    name="toggle_button",
    rule=_rule_toggle,
    cost=DEFAULT_COEFFICIENTS["toggle_button"],
    html_tag="button",
)
CHECKBOX = WidgetType(
    name="checkbox",
    rule=_rule_checkbox,
    cost=DEFAULT_COEFFICIENTS["checkbox"],
    html_tag="input",
)
RADIO_BUTTON = WidgetType(
    name="radio_button",
    rule=_rule_radio,
    cost=DEFAULT_COEFFICIENTS["radio_button"],
    html_tag="input",
)
DROPDOWN = WidgetType(
    name="dropdown",
    rule=_rule_dropdown,
    cost=DEFAULT_COEFFICIENTS["dropdown"],
    html_tag="select",
)
SLIDER = WidgetType(
    name="slider",
    rule=_rule_slider,
    cost=DEFAULT_COEFFICIENTS["slider"],
    extrapolates=True,
    html_tag="input",
)
RANGE_SLIDER = WidgetType(
    name="range_slider",
    rule=_rule_range_slider,
    cost=DEFAULT_COEFFICIENTS["range_slider"],
    extrapolates=True,
    html_tag="input",
)
CHECKBOX_LIST = WidgetType(
    name="checkbox_list",
    rule=_rule_checkbox_list,
    cost=DEFAULT_COEFFICIENTS["checkbox_list"],
    html_tag="fieldset",
)
DRAG_AND_DROP = WidgetType(
    name="drag_and_drop",
    rule=_rule_drag_and_drop,
    cost=DEFAULT_COEFFICIENTS["drag_and_drop"],
    html_tag="div",
)

_ALL = (
    TEXTBOX,
    TOGGLE_BUTTON,
    CHECKBOX,
    RADIO_BUTTON,
    DROPDOWN,
    SLIDER,
    RANGE_SLIDER,
    CHECKBOX_LIST,
    DRAG_AND_DROP,
)


def default_library() -> list[WidgetType]:
    """The full 9-type widget library, fresh list each call."""
    return list(_ALL)


def make_widget_type(
    name: str,
    base: WidgetType,
    cost: QuadraticCost | None = None,
) -> WidgetType:
    """Derive a customised widget type (e.g. with personalised cost
    coefficients, Section 4.3 footnote) from a library type.

    Raises:
        WidgetError: for a blank name.
    """
    if not name:
        raise WidgetError("widget type needs a name")
    return WidgetType(
        name=name,
        rule=base.rule,
        cost=cost or base.cost,
        extrapolates=base.extrapolates,
        unbounded=base.unbounded,
        accepts_kinds=base.accepts_kinds,
        html_tag=base.html_tag,
    )
