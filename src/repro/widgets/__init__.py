"""Widget substrate: domains, widget types, cost model, trace fitting."""

from repro.widgets.base import Widget, WidgetType
from repro.widgets.cost import DEFAULT_COEFFICIENTS, QuadraticCost, fit_cost_model
from repro.widgets.domain import WidgetDomain
from repro.widgets.library import (
    CHECKBOX,
    CHECKBOX_LIST,
    DRAG_AND_DROP,
    DROPDOWN,
    RADIO_BUTTON,
    RANGE_SLIDER,
    SLIDER,
    TEXTBOX,
    TOGGLE_BUTTON,
    default_library,
    make_widget_type,
)
from repro.widgets.traces import TimingTrace, TraceSimulator, simulate_and_fit

__all__ = [
    "Widget",
    "WidgetType",
    "WidgetDomain",
    "QuadraticCost",
    "DEFAULT_COEFFICIENTS",
    "fit_cost_model",
    "default_library",
    "make_widget_type",
    "TEXTBOX",
    "TOGGLE_BUTTON",
    "CHECKBOX",
    "RADIO_BUTTON",
    "DROPDOWN",
    "SLIDER",
    "RANGE_SLIDER",
    "CHECKBOX_LIST",
    "DRAG_AND_DROP",
    "TraceSimulator",
    "TimingTrace",
    "simulate_and_fit",
]
