"""Plain-text report formatting for the benchmark harness.

The benches print each figure/table as an aligned ASCII table so the
series the paper plots can be eyeballed (and diffed) in CI output.
"""

from __future__ import annotations

__all__ = ["format_table", "format_series", "sparkline"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: list[str], rows: list[list[object]], title: str | None = None
) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_series(label: str, xs: list[object], ys: list[float]) -> str:
    """One labelled series with a sparkline, e.g. for recall curves."""
    pairs = " ".join(f"{x}:{_fmt(y)}" for x, y in zip(xs, ys))
    return f"{label:<24} {sparkline(ys)}  {pairs}"


def sparkline(values: list[float]) -> str:
    """Unicode sparkline of a series (empty string for no data)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int((v - low) / span * (len(_BLOCKS) - 1)))]
        for v in values
    )
