"""Evaluation harnesses: recall/generalisability, runtime, reporting."""

from repro.evaluation.recall import (
    RecallCurve,
    RecallPoint,
    cross_client_matrix,
    multi_client_recall,
    recall_curve,
    recall_histogram,
)
from repro.evaluation.report import format_series, format_table, sparkline
from repro.evaluation.runtime import (
    RuntimeMeasurement,
    measure_pipeline,
    scalability_sweep,
    window_lca_sweep,
)

__all__ = [
    "RecallCurve",
    "RecallPoint",
    "recall_curve",
    "multi_client_recall",
    "cross_client_matrix",
    "recall_histogram",
    "RuntimeMeasurement",
    "measure_pipeline",
    "window_lca_sweep",
    "scalability_sweep",
    "format_table",
    "format_series",
    "sparkline",
]
