"""Runtime harness — Section 7.3 and Appendix B.

Measures end-to-end latency (interaction mining time + interface mapping
time) and interaction-graph size while sweeping:

* sliding-window size × LCA pruning (Figure 11), and
* total log size at the recommended configuration (Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import generate
from repro.core.options import PipelineOptions
from repro.sqlparser.astnodes import Node

__all__ = ["RuntimeMeasurement", "measure_pipeline", "window_lca_sweep", "scalability_sweep"]


@dataclass(frozen=True)
class RuntimeMeasurement:
    """One timed pipeline run."""

    n_queries: int
    window: int | None
    lca_pruning: bool
    n_edges: int
    n_diffs: int
    mining_seconds: float
    mapping_seconds: float
    n_widgets: int

    @property
    def total_seconds(self) -> float:
        return self.mining_seconds + self.mapping_seconds


def measure_pipeline(
    queries: list[Node],
    window: int | None = 2,
    lca_pruning: bool = True,
) -> RuntimeMeasurement:
    """Run the pipeline once and report timings and graph sizes."""
    options = PipelineOptions(window=window, lca_pruning=lca_pruning)
    run = generate(queries, options=options).run
    return RuntimeMeasurement(
        n_queries=run.n_queries,
        window=window,
        lca_pruning=lca_pruning,
        n_edges=run.n_edges,
        n_diffs=run.n_diffs,
        mining_seconds=run.mining_seconds,
        mapping_seconds=run.mapping_seconds,
        n_widgets=run.n_widgets,
    )


def window_lca_sweep(
    queries: list[Node],
    windows: list[int],
    include_full_window: bool = False,
) -> list[RuntimeMeasurement]:
    """Figure 11: vary window size, with and without LCA pruning."""
    out = []
    sweep: list[int | None] = list(windows)
    if include_full_window:
        sweep.append(None)
    for window in sweep:
        for lca in (True, False):
            out.append(measure_pipeline(queries, window=window, lca_pruning=lca))
    return out


def scalability_sweep(
    logs_by_size: dict[int, list[Node]],
    window: int = 2,
    lca_pruning: bool = True,
) -> list[RuntimeMeasurement]:
    """Figure 12: vary total log size at the recommended configuration."""
    out = []
    for size in sorted(logs_by_size):
        out.append(
            measure_pipeline(logs_by_size[size], window=window, lca_pruning=lca_pruning)
        )
    return out
