"""Recall (generalisability) harness — Section 7.2.

"For an input log of size n, we split it into hold-out queries and training
queries.  We run Precision Interfaces over a subset of the training
queries, and compute the fraction of the hold-outs that the generated
interface can express.  This is called recall."

The experiments:

* :func:`recall_curve` — single-log recall vs training size, averaged over
  200-query windows (Figures 6a, 6c);
* :func:`multi_client_recall` — recall on interleaved heterogeneous logs,
  training budget counted either in total or per client (Figures 7a, 7b);
* :func:`cross_client_matrix` — train on client i, evaluate on client j
  (Figures 7c, 9, 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import generate, generate_many
from repro.core.options import PipelineOptions
from repro.errors import LogError
from repro.logs.model import QueryLog
from repro.sqlparser.astnodes import Node

__all__ = [
    "RecallPoint",
    "RecallCurve",
    "recall_curve",
    "multi_client_recall",
    "cross_client_matrix",
    "recall_histogram",
]


@dataclass(frozen=True)
class RecallPoint:
    """Recall measured at one training size."""

    n_training: int
    recall: float


@dataclass
class RecallCurve:
    """A labelled recall-vs-training-size series."""

    label: str
    points: list[RecallPoint] = field(default_factory=list)

    def as_rows(self) -> list[tuple[int, float]]:
        return [(p.n_training, p.recall) for p in self.points]

    def final_recall(self) -> float:
        return self.points[-1].recall if self.points else 0.0

    def first_full_recall(self) -> int | None:
        """Smallest training size reaching recall 1.0, if any."""
        for point in self.points:
            if point.recall >= 1.0:
                return point.n_training
        return None


def _recall_of(
    training: list[Node],
    holdout: list[Node],
    options: PipelineOptions | None,
) -> float:
    interface = generate(training, options=options).interface
    return interface.expressiveness(holdout)


def recall_curve(
    log: QueryLog,
    training_sizes: list[int],
    holdout_size: int = 100,
    window_size: int = 200,
    options: PipelineOptions | None = None,
    label: str | None = None,
) -> RecallCurve:
    """Single-log recall vs training size, averaged over windows.

    Mirrors Section 7.2.1: the log is cut into ``window_size``-query
    windows; in each window the first ``n`` queries train an interface and
    the last ``holdout_size`` are the hold-out.

    Raises:
        LogError: when the log is shorter than one window.
    """
    windows = log.windows(window_size)
    if not windows:
        raise LogError(
            f"log {log.name} has {len(log)} queries; need >= {window_size}"
        )
    parsed_windows = [w.asts() for w in windows]
    curve = RecallCurve(label=label or log.name)
    for n_training in training_sizes:
        if n_training + holdout_size > window_size:
            raise LogError(
                f"training {n_training} + holdout {holdout_size} exceeds "
                f"window {window_size}"
            )
        total = 0.0
        for asts in parsed_windows:
            training = asts[:n_training]
            holdout = asts[window_size - holdout_size:]
            total += _recall_of(training, holdout, options)
        curve.points.append(
            RecallPoint(n_training=n_training, recall=total / len(parsed_windows))
        )
    return curve


def multi_client_recall(
    client_logs: list[QueryLog],
    training_sizes: list[int],
    holdout_size: int = 50,
    per_client: bool = False,
    options: PipelineOptions | None = None,
    label: str | None = None,
) -> RecallCurve:
    """Heterogeneous-log recall (Section 7.2.3).

    The client logs are interleaved; the hold-out is the last
    ``holdout_size`` queries of the interleaved log.  With
    ``per_client=False`` each training size is the *total* number of
    training queries (Figure 7a); with ``per_client=True`` it is the count
    *per client*, so the total is ``n * len(client_logs)`` (Figure 7b).
    """
    mixed = QueryLog.interleave(client_logs)
    asts = mixed.asts()
    if holdout_size >= len(asts):
        raise LogError("holdout larger than the interleaved log")
    holdout = asts[-holdout_size:]
    available = len(asts) - holdout_size
    curve = RecallCurve(label=label or f"mixed-{len(client_logs)}")
    trainings = []
    for size in training_sizes:
        n_training = size * len(client_logs) if per_client else size
        trainings.append(asts[: min(n_training, available)])
    # one batched call over the training-size sweep (generate_many)
    results = generate_many(trainings, options=options)
    for size, result in zip(training_sizes, results):
        curve.points.append(
            RecallPoint(
                n_training=size, recall=result.interface.expressiveness(holdout)
            )
        )
    return curve


def cross_client_matrix(
    client_logs: dict[str, QueryLog],
    n_queries: int = 100,
    options: PipelineOptions | None = None,
) -> dict[str, dict[str, float]]:
    """Pairwise recall matrix (Appendix A, Figure 9).

    Trains an interface on each client's first ``n_queries`` queries and
    evaluates it on every *other* client's ``n_queries`` queries.

    Returns:
        ``matrix[train_client][holdout_client] = recall``.
    """
    parsed = {
        client: log.truncate(n_queries).asts() for client, log in client_logs.items()
    }
    results = generate_many(parsed.values(), options=options)
    interfaces = {
        client: result.interface for client, result in zip(parsed, results)
    }
    matrix: dict[str, dict[str, float]] = {}
    for train_client, interface in interfaces.items():
        row: dict[str, float] = {}
        for holdout_client, asts in parsed.items():
            if holdout_client == train_client:
                continue
            row[holdout_client] = interface.expressiveness(asts)
        matrix[train_client] = row
    return matrix


def recall_histogram(
    matrix: dict[str, dict[str, float]], bins: int = 10
) -> list[tuple[float, int]]:
    """Histogram of off-diagonal recalls (Figure 10).

    Returns ``(bin_left_edge, count)`` pairs over [0, 1].
    """
    counts = [0] * bins
    for row in matrix.values():
        for recall in row.values():
            index = min(bins - 1, int(recall * bins))
            counts[index] += 1
    return [(i / bins, counts[i]) for i in range(bins)]
