"""Quickstart: mine an interface from a handful of queries.

Run with::

    python examples/quickstart.py

This walks the paper's core loop on Listing 6 (an SDSS analysis that first
adds a TOP clause, then tunes its limit) through the staged pipeline API:

    parse → mine interaction graph → map to widgets → merge

Each stage is a first-class object; `generate()` runs the default
composition and returns an immutable `GenerationResult` bundling the
interface, per-stage timings/stats, and provenance.  An observer hook
watches the stages go by, and an `InterfaceSession` shows the incremental
path: appending queries re-mines only the new pairs.
"""

from repro import InterfaceSession, Pipeline, PipelineObserver, generate, parse_sql

LOG = [
    "SELECT g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
    "SELECT TOP 1 g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
    "SELECT TOP 10 g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
]


class StageTracer(PipelineObserver):
    """Print one line per stage as the pipeline runs."""

    def on_stage_end(self, stage, state, report):
        stats = ", ".join(f"{k}={v}" for k, v in report.stats.items())
        print(f"  [{report.name:7s}] {report.seconds * 1000:6.1f} ms  {stats}")


def main() -> None:
    print("Staged pipeline:", " -> ".join(Pipeline.default().stage_names))
    print()

    result = generate(LOG, observers=[StageTracer()], source="quickstart")
    interface = result.interface

    print()
    print("Generated interface")
    print("-------------------")
    print(interface.describe())
    print()

    run = result.run
    print(
        f"mined {run.n_diffs} diffs across {run.n_edges} edges "
        f"({run.n_pairs_compared} pairs aligned) "
        f"in {run.total_seconds * 1000:.1f} ms"
    )
    print()

    probes = [
        # unseen limit, within the slider's extrapolated range
        LOG[1].replace("TOP 1 ", "TOP 7 "),
        # beyond the slider's range
        LOG[1].replace("TOP 1 ", "TOP 9999 "),
        # a different analysis entirely
        "SELECT name FROM Stars WHERE magnitude < 6",
    ]
    print("Closure membership")
    print("------------------")
    for sql in probes:
        verdict = interface.expresses(parse_sql(sql))
        print(f"[{'yes' if verdict else 'no '}] {sql[:70]}")
    print()

    # the incremental path: same widgets, but the second append only
    # aligns the pairs the new queries introduce
    session = InterfaceSession()
    session.append_sql(LOG[:2])
    incremental = session.append_sql(LOG[2:])
    print(
        f"incremental session: append #2 aligned "
        f"{incremental.run.n_pairs_compared} new pair(s) "
        f"({session.n_pairs_compared} total) and produced "
        f"{incremental.interface.n_widgets} widgets — "
        f"{'identical to' if incremental.interface.widget_summary() == interface.widget_summary() else 'DIFFERENT from'} "
        f"the one-shot interface"
    )


if __name__ == "__main__":
    main()
