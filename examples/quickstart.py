"""Quickstart: mine an interface from a handful of queries.

Run with::

    python examples/quickstart.py

This walks the paper's core loop on Listing 6 (an SDSS analysis that first
adds a TOP clause, then tunes its limit): parse the log, mine the
interaction graph, map the interactions to widgets, and use the interface's
closure to check which new queries it can express.
"""

from repro import PrecisionInterfaces, parse_sql

LOG = [
    "SELECT g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
    "SELECT TOP 1 g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
    "SELECT TOP 10 g.objID FROM Galaxy AS g, "
    "dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) AS d WHERE d.objID = g.objID",
]


def main() -> None:
    system = PrecisionInterfaces()
    interface = system.generate_from_sql(LOG)

    print("Generated interface")
    print("-------------------")
    print(interface.describe())
    print()

    run = system.last_run
    print(
        f"mined {run.n_diffs} diffs across {run.n_edges} edges "
        f"in {run.total_seconds * 1000:.1f} ms"
    )
    print()

    probes = [
        # unseen limit, within the slider's extrapolated range
        LOG[1].replace("TOP 1 ", "TOP 7 "),
        # beyond the slider's range
        LOG[1].replace("TOP 1 ", "TOP 9999 "),
        # a different analysis entirely
        "SELECT name FROM Stars WHERE magnitude < 6",
    ]
    print("Closure membership")
    print("------------------")
    for sql in probes:
        verdict = interface.expresses(parse_sql(sql))
        print(f"[{'yes' if verdict else 'no '}] {sql[:70]}")


if __name__ == "__main__":
    main()
