"""Replay the Section 7.4 user study.

Run with::

    python examples/user_study_replay.py

Synthesises the study log, mines the per-task interfaces, simulates the 40
participants on both the generated interface and the SDSS search form, and
prints the Figure 8c summary plus the ANOVA table.
"""

from repro.evaluation import format_table
from repro.study import (
    TASKS,
    UserStudySimulator,
    anova,
    study_interfaces,
    user_study_log,
)


def main() -> None:
    log = user_study_log(1000)
    interfaces = study_interfaces(log)

    print("Per-task generated widget groups")
    print("--------------------------------")
    for task in TASKS:
        interface = interfaces[task.number]
        widgets = ", ".join(
            f"{w.widget_type.name}@{w.path}" for w in interface.widgets
        )
        print(f"task {task.number} ({task.description}): {widgets}")
    print()

    results = UserStudySimulator(interfaces, n_users=40, seed=7).run()

    rows = []
    for task in TASKS:
        rows.append(
            [
                f"task {task.number}",
                f"{results.mean_time(task=task.number, interface='precision'):.1f}",
                f"{results.mean_time(task=task.number, interface='sdss'):.1f}",
                f"{results.accuracy(task=task.number, interface='precision'):.2f}",
                f"{results.accuracy(task=task.number, interface='sdss'):.2f}",
            ]
        )
    print(
        format_table(
            ["task", "PI time s", "SDSS time s", "PI acc", "SDSS acc"],
            rows,
            title="Figure 8c summary (simulated study)",
        )
    )
    print()

    response, factors = results.as_columns()
    table = anova(response, factors, interactions=[("task", "interface")])
    print(
        format_table(
            ["term", "df", "F", "p"],
            [
                [row.term, row.df, f"{row.f_value:.1f}", f"{row.p_value:.2e}"]
                for row in table
                if row.term != "Residual"
            ],
            title="Three-factor ANOVA (+ task x interface)",
        )
    )


if __name__ == "__main__":
    main()
