"""OLAP exploration → dashboard with live query execution.

Run with::

    python examples/olap_dashboard.py

The motivating use case of the paper's introduction (Figure 1): an analyst
explores the OnTime flight-delays dataset with OLAP queries; Precision
Interfaces turns the session into a dashboard whose widgets pick the
aggregate, grouping, and filters.  Here we also wire the interface to the
in-memory executor so every widget state produces actual results, and
compile the whole thing to ``olap_dashboard.html``.
"""

import random
from pathlib import Path

from repro import generate
from repro.compiler import Database, Table, compile_html, execute, render_text
from repro.logs import OLAPLogGenerator

_STATES = ["CA", "NY", "TX", "IL", "GA", "WA"]
_CARRIERS = ["AA", "UA", "DL", "WN"]


def build_ontime_database(n_rows: int = 500, seed: int = 9) -> Database:
    """A small synthetic OnTime table for exec()/render()."""
    rng = random.Random(seed)
    rows = []
    for _ in range(n_rows):
        rows.append(
            (
                rng.randint(1, 12),            # Month
                rng.choice([1, 3, 5, 10]),     # Day
                rng.randint(1, 7),             # DayOfWeek
                rng.randint(0, 180),           # Delay
                rng.randint(-10, 120),         # ArrDelay
                rng.randint(-5, 90),           # DepDelay
                rng.choice(_STATES),           # DestState
                rng.choice(_STATES),           # OriginState
                rng.choice(_CARRIERS),         # UniqueCarrier
                1,                             # flights
            )
        )
    database = Database()
    database.add(
        Table(
            "ontime",
            [
                "Month", "Day", "DayOfWeek", "Delay", "ArrDelay", "DepDelay",
                "DestState", "OriginState", "UniqueCarrier", "flights",
            ],
            rows,
        )
    )
    return database


def main() -> None:
    log = OLAPLogGenerator(seed=1).generate(150)
    print("Sample of the exploration walk:")
    for sql in log.statements()[:3]:
        print("  ", sql)
    print()

    interface = generate(log).interface
    print(interface.describe())
    print()

    database = build_ontime_database()
    print("Executing the interface's initial query:")
    print(render_text(execute(interface.initial_query, database), max_rows=8))
    print()

    output = Path(__file__).parent / "olap_dashboard.html"
    output.write_text(
        compile_html(
            interface,
            title="OnTime delays dashboard",
            database=database,
            limit=512,
        )
    )
    print(f"dashboard with embedded results written to {output}")


if __name__ == "__main__":
    main()
