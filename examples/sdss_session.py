"""SDSS analysis session → precision interface → compiled HTML app.

Run with::

    python examples/sdss_session.py

Mirrors the paper's headline scenario: a SkyServer client's session of
object lookups (Listing 1) is mined into a small task-specific interface,
the interface is checked for generalisation against the rest of the
session, its closure is validated against the SDSS schema subset, and the
result is compiled into a standalone HTML application
(``sdss_interface.html`` next to this script).
"""

from pathlib import Path

from repro import generate
from repro.compiler import compile_html, describe_layout
from repro.logs import SDSSLogGenerator
from repro.schema import SDSS_CATALOG, closure_precision


def main() -> None:
    generator = SDSSLogGenerator(seed=0)
    log = generator.client_log(client="C1", profile="object_lookup", n=200)
    queries = log.asts()

    print("Sample of the session:")
    for sql in log.statements()[:4]:
        print("  ", sql)
    print(f"   ... ({len(log)} queries total)\n")

    # train on a prefix, like Section 7.2.1
    training, holdout = queries[:25], queries[100:]
    interface = generate(training, source=log.name).interface

    print("Generated interface (editor view)")
    print("---------------------------------")
    print(describe_layout(interface))
    print()

    recall = interface.expressiveness(holdout)
    print(f"recall on the {len(holdout)} hold-out queries: {recall:.2f}")

    precision, closure_size = closure_precision(
        interface, SDSS_CATALOG, limit=2000
    )
    print(
        f"closure precision against the SDSS schema: {precision:.2f} "
        f"over {closure_size} enumerated queries"
    )

    output = Path(__file__).parent / "sdss_interface.html"
    output.write_text(compile_html(interface, title="SDSS C1 lookups"))
    print(f"\ncompiled web app written to {output}")


if __name__ == "__main__":
    main()
