"""Mining report across heterogeneous logs — the "interface simplification"
use case.

Run with::

    python examples/log_mining_report.py

Plays the role of the SDSS operator from Section 3.1: given a mixed query
log (several clients interleaved, as DBMS logs arrive), split it by client,
mine a precision interface per client, and report which analyses are
simple enough to deserve a generated "fast-path" interface and which are
too ad-hoc (high widget cost relative to log coverage).
"""

from repro import generate
from repro.evaluation import format_table
from repro.logs import QueryLog, SDSSLogGenerator
from repro.schema import SDSS_CATALOG, closure_precision


def main() -> None:
    generator = SDSSLogGenerator(seed=3)
    mixed = generator.interleaved(6, n_queries=100)
    print(f"mixed log: {len(mixed)} queries from {len(mixed.clients)} clients\n")

    rows = []
    for client, sublog in sorted(mixed.by_client().items()):
        queries = sublog.asts()
        training, holdout = queries[: len(queries) // 2], queries[len(queries) // 2:]
        result = generate(training, source=client)
        interface = result.interface
        recall = interface.expressiveness(holdout)
        precision, _ = closure_precision(interface, SDSS_CATALOG, limit=1000)
        verdict = "fast-path" if recall >= 0.9 and interface.n_widgets <= 6 else "review"
        rows.append(
            [
                client,
                interface.n_widgets,
                f"{interface.cost:.0f}",
                f"{recall:.2f}",
                f"{precision:.2f}",
                f"{result.run.total_seconds * 1000:.0f}",
                verdict,
            ]
        )

    print(
        format_table(
            ["client", "widgets", "cost ms", "recall", "precision",
             "mine+map ms", "verdict"],
            rows,
            title="Per-client interface mining report",
        )
    )
    print(
        "\n'fast-path' clients get a generated interface; 'review' clients "
        "stay on the generic form (Section 3.1's interface simplification)."
    )


if __name__ == "__main__":
    main()
