#!/usr/bin/env python
"""Run the strict mypy gate configured in pyproject.toml.

CI installs mypy and this script fails the build on any error.  The
development container deliberately ships without mypy (the runtime has
zero third-party dependencies); there the script reports a skip and
exits 0 so local workflows never hard-require the tool.

Usage::

    python scripts/check_types.py            # gate the configured packages
    python scripts/check_types.py --strict-presence  # fail if mypy missing
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--strict-presence",
        action="store_true",
        help="exit non-zero when mypy is not installed (CI mode)",
    )
    args = parser.parse_args(argv)

    if importlib.util.find_spec("mypy") is None:
        message = "check_types: mypy is not installed; skipping the type gate"
        if args.strict_presence:
            print(message.replace("skipping", "FAILING"), file=sys.stderr)
            return 1
        print(message)
        return 0

    # configuration (files, strictness, overrides) lives in pyproject.toml
    completed = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
    )
    return completed.returncode


if __name__ == "__main__":
    sys.exit(main())
