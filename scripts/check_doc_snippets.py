#!/usr/bin/env python
"""Execute every Python code snippet in README.md and docs/*.md.

Documentation that does not run rots; this keeps the docs site honest.
Each fenced ```python block is executed in its own namespace with the
working directory set to a scratch temp dir (snippets may create files).
Blocks fenced as ```python no-run are syntax-checked but not executed —
for illustrative fragments (e.g. deprecated-API examples) that reference
undefined names on purpose.

Usage:
    python scripts/check_doc_snippets.py [file-or-dir ...]

With no arguments, checks README.md and docs/ relative to the repo root
(the script's parent's parent).  Exits non-zero on the first failing
snippet, printing the file, block number, and traceback.
"""

from __future__ import annotations

import re
import sys
import tempfile
import traceback
from contextlib import contextmanager
from pathlib import Path

FENCE = re.compile(
    r"^```python[ \t]*(?P<tag>no-run)?[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def iter_markdown(targets: list[str]) -> list[Path]:
    """Resolve CLI arguments (or the defaults) to markdown files."""
    if not targets:
        paths = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
        return [p for p in paths if p.exists()]
    out: list[Path] = []
    for target in targets:
        path = Path(target).resolve()
        if path.is_dir():
            out.extend(sorted(path.glob("*.md")))
        else:
            out.append(path)
    return out


def display(path: Path) -> str:
    """Repo-relative label when possible, absolute otherwise."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


@contextmanager
def scratch_cwd():
    """Run a snippet inside a throwaway working directory."""
    import os

    previous = os.getcwd()
    with tempfile.TemporaryDirectory() as scratch:
        os.chdir(scratch)
        try:
            yield
        finally:
            os.chdir(previous)


def check_file(path: Path) -> tuple[int, int]:
    """Run every snippet in one file; returns (n_executed, n_failed)."""
    executed = failed = 0
    text = path.read_text(encoding="utf-8")
    for index, match in enumerate(FENCE.finditer(text), start=1):
        body = match.group("body")
        label = f"{display(path)} block {index}"
        if match.group("tag") == "no-run":
            try:
                compile(body, str(path), "exec")
                print(f"  SYNTAX {label}")
            except SyntaxError:
                failed += 1
                print(f"  FAIL   {label} (syntax error in no-run block)")
                traceback.print_exc()
            continue
        executed += 1
        try:
            with scratch_cwd():
                exec(compile(body, str(path), "exec"), {"__name__": "__main__"})
            print(f"  OK     {label}")
        except Exception:
            failed += 1
            print(f"  FAIL   {label}")
            traceback.print_exc()
    return executed, failed


def main(argv: list[str]) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    total = failures = 0
    for path in iter_markdown(argv):
        print(f"{display(path)}:")
        executed, failed = check_file(path)
        total += executed
        failures += failed
    print(f"\n{total} snippet(s) executed, {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
