#!/usr/bin/env python
"""Gate the incremental-append benchmark against its committed baseline.

Compares the *dimensionless* ``speedup_*`` metrics of a fresh
``benchmarks/results/BENCH_incremental.json`` run against
``benchmarks/baselines/bench_incremental_baseline.json`` and exits
non-zero when any metric regressed by more than the tolerance factor
(default 2x, per the perf-trajectory policy).  Absolute seconds are
reported but never gated — they differ across hardware; speedup ratios
do not.

Usage:
    python scripts/check_bench_regression.py \
        [current.json] [baseline.json] [--tolerance 2.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_CURRENT = REPO_ROOT / "benchmarks" / "results" / "BENCH_incremental.json"
DEFAULT_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "bench_incremental_baseline.json"
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="?", default=str(DEFAULT_CURRENT))
    parser.add_argument("baseline", nargs="?", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when current speedup < baseline / tolerance (default 2)",
    )
    args = parser.parse_args(argv)

    try:
        current = json.loads(Path(args.current).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read current results {args.current}: {exc}")
        return 1
    try:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read baseline {args.baseline}: {exc}")
        return 1

    gated = sorted(
        key
        for key in baseline
        if key.startswith("speedup_") and key in current
    )
    if not gated:
        print("no shared speedup_* metrics between baseline and current run")
        return 1

    failures = 0
    for key in gated:
        base = float(baseline[key])
        now = float(current[key])
        floor = base / args.tolerance
        verdict = "OK  " if now >= floor else "FAIL"
        if now < floor:
            failures += 1
        print(
            f"  {verdict} {key}: current x{now:.2f} vs baseline x{base:.2f} "
            f"(floor x{floor:.2f})"
        )
    for key in ("steady_append_seconds", "full_regenerate_seconds"):
        if key in current:
            print(f"  info {key}: {float(current[key]) * 1000:.1f} ms (not gated)")
    if failures:
        print(f"\n{failures} metric(s) regressed by more than "
              f"{args.tolerance}x vs the committed baseline")
        return 1
    print("\nbenchmark within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
