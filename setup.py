"""Legacy setup shim: enables `pip install -e .` on environments without the
wheel package (metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
