"""Shared helpers for the test suite."""

from repro import generate


def generate_iface(log, options=None):
    """One-shot mine, unwrapped to the bare Interface."""
    return generate(log, options=options).interface
