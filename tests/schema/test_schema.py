"""Schema catalog and precision-filter tests (Appendix D)."""

import pytest

from tests.helpers import generate_iface
from repro import parse_sql
from repro.errors import SchemaError
from repro.schema import (
    ONTIME_CATALOG,
    SDSS_CATALOG,
    SchemaCatalog,
    closure_precision,
    validate_query,
)



class TestCatalog:
    def test_case_insensitive_lookup(self):
        assert SDSS_CATALOG.has_table("photoobj")
        assert SDSS_CATALOG.has_column("PHOTOOBJ", "RA")

    def test_columns_of_unknown_raises(self):
        with pytest.raises(SchemaError):
            SDSS_CATALOG.columns_of("nope")

    def test_tables_with_column(self):
        tables = SDSS_CATALOG.tables_with_column("specObjId")
        assert "speclineindex" in tables
        assert "photoobj" not in tables

    def test_duplicate_table_rejected(self):
        catalog = SchemaCatalog()
        catalog.add_table("t", ["a"])
        with pytest.raises(SchemaError):
            catalog.add_table("T", ["b"])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            SchemaCatalog().add_table("t", [])

    def test_table_function_registry(self):
        assert SDSS_CATALOG.has_table_function("dbo.fGetNearbyObjEq")
        assert not SDSS_CATALOG.has_table_function("dbo.fMystery")


class TestValidation:
    def test_valid_query(self):
        ast = parse_sql("SELECT ra, dec FROM PhotoObj WHERE objID = 0x10")
        assert validate_query(ast, SDSS_CATALOG).valid

    def test_qualified_columns_resolved_through_alias(self):
        ast = parse_sql("SELECT g.objID FROM Galaxy AS g WHERE g.ra > 1")
        assert validate_query(ast, SDSS_CATALOG).valid

    def test_wrong_column_for_table(self):
        """The Appendix D failure mode: a column from one table combined
        with another table."""
        ast = parse_sql("SELECT specObjId FROM PhotoObj")
        result = validate_query(ast, SDSS_CATALOG)
        assert not result.valid
        assert any("specObjId" in e for e in result.errors)

    def test_unknown_table(self):
        ast = parse_sql("SELECT a FROM Nowhere")
        result = validate_query(ast, SDSS_CATALOG)
        assert not result.valid

    def test_wrong_qualified_column(self):
        ast = parse_sql("SELECT g.wave FROM Galaxy AS g")
        assert not validate_query(ast, SDSS_CATALOG).valid

    def test_udf_from_is_permissive(self):
        ast = parse_sql(
            "SELECT g.objID FROM Galaxy AS g, "
            "dbo.fGetNearbyObjEq(1.0, 2.0, 3.0) AS d WHERE d.objID = g.objID"
        )
        assert validate_query(ast, SDSS_CATALOG).valid

    def test_subquery_scopes_validated_independently(self):
        ast = parse_sql("SELECT * FROM (SELECT wave FROM Galaxy)")
        assert not validate_query(ast, SDSS_CATALOG).valid

    def test_star_is_always_fine(self):
        assert validate_query(parse_sql("SELECT * FROM Star"), SDSS_CATALOG).valid

    def test_ontime_catalog(self):
        ast = parse_sql("SELECT DestState FROM ontime WHERE Month = 1")
        assert validate_query(ast, ONTIME_CATALOG).valid


class TestClosurePrecision:
    def _mixed_interface(self):
        """A session whose table widget and column widget were mined from
        different sub-analyses: every log query is valid, but the widget
        cross product contains `ra FROM SpecLineIndex`, which is not."""
        log = [
            "SELECT specObjId FROM SpecLineIndex WHERE z > 1",
            "SELECT specObjId FROM SpecLineIndex WHERE z > 2",
            "SELECT specObjId FROM XCRedshift WHERE z > 2",
            "SELECT specObjId FROM XCRedshift WHERE z > 3",
            "SELECT specObjId FROM SpecObj WHERE z > 3",
            "SELECT ra FROM SpecObj WHERE z > 3",
            "SELECT ra FROM SpecObj WHERE z > 4",
        ]
        return generate_iface(log)

    def test_unfiltered_precision_below_one(self):
        interface = self._mixed_interface()
        precision, count = closure_precision(interface, SDSS_CATALOG, limit=5000)
        assert count > 0
        assert precision < 1.0

    def test_filtered_precision_is_one(self):
        interface = self._mixed_interface()
        precision, count = closure_precision(
            interface, SDSS_CATALOG, limit=5000, filtered=True
        )
        assert precision == 1.0
        assert count > 0

    def test_single_client_precision_high(self):
        log = [
            f"SELECT ra FROM PhotoObj WHERE objID = {hex(16 + i)}" for i in range(6)
        ]
        interface = generate_iface(log)
        precision, _count = closure_precision(interface, SDSS_CATALOG, limit=5000)
        assert precision == 1.0
